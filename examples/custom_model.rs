//! Evaluate your own model against the benchmark.
//!
//! [`LanguageModel`] is the only integration point: anything that turns a
//! prompt into text can be scored. This example implements two trivial
//! baselines — a majority-class model that always answers "no" and a
//! parser-oracle that answers from `squ`'s own parser/binder — and ranks
//! them against the five simulated paper models on `syntax_error`.
//!
//! The parser-oracle is the interesting one: it shows the headroom between
//! today's LLMs and a classical analysis (it scores ~1.0 because the task's
//! labels are binder-verified).
//!
//! ```text
//! cargo run --release --example custom_model
//! ```

use squ::pipeline::{dataset_id, run_syntax};
use squ::{Suite, PAPER_SEED};
use squ_eval::BinaryCounts;
use squ_llm::{LanguageModel, ModelId, Request, SimulatedModel};
use squ_workload::Workload;

/// Always answers "no error" — the majority-class baseline.
struct AlwaysNo;

impl LanguageModel for AlwaysNo {
    fn name(&self) -> &'static str {
        "always-no"
    }
    fn respond(&self, _req: &Request) -> String {
        "No, the query does not contain any syntax errors.".to_string()
    }
}

/// Answers from the benchmark's own parser + binder (an upper bound — the
/// labels are produced by this very analysis).
struct ParserOracle;

impl LanguageModel for ParserOracle {
    fn name(&self) -> &'static str {
        "parser-oracle"
    }
    fn respond(&self, req: &Request) -> String {
        // the prompt's last line is the SQL payload
        let sql = req.prompt.lines().last().unwrap_or("");
        let schema = squ_schema::schemas::sdss();
        match squ_parser::parse(sql) {
            Err(e) => format!("Yes, the query contains a syntax error: {e}."),
            Ok(stmt) => {
                let diags = squ_schema::analyze(&stmt, &schema);
                match diags.first() {
                    Some(d) => format!(
                        "Yes, the query contains a syntax error. {} (error type: {}).",
                        d.message,
                        d.kind.paper_label().unwrap_or("other")
                    ),
                    None => "No, the query does not contain any syntax errors.".to_string(),
                }
            }
        }
    }
}

fn main() {
    let suite = Suite::new(PAPER_SEED);
    let examples = suite.syntax_for(Workload::Sdss);
    let ds = dataset_id(Workload::Sdss);

    let mut rows: Vec<(String, BinaryCounts)> = Vec::new();
    for id in ModelId::ALL {
        let outcomes = run_syntax(&SimulatedModel::new(id), ds, examples);
        rows.push((
            id.name().to_string(),
            BinaryCounts::from_pairs(outcomes.iter().map(|o| (o.example.has_error, o.said_error))),
        ));
    }
    for model in [&AlwaysNo as &dyn LanguageModel, &ParserOracle] {
        let outcomes = run_syntax(model, ds, examples);
        rows.push((
            model.name().to_string(),
            BinaryCounts::from_pairs(outcomes.iter().map(|o| (o.example.has_error, o.said_error))),
        ));
    }

    rows.sort_by(|a, b| b.1.f1().partial_cmp(&a.1.f1()).expect("finite"));

    println!("syntax_error on SDSS ({} examples):\n", examples.len());
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6}",
        "model", "P", "R", "F1", "acc"
    );
    for (name, c) in rows {
        println!(
            "{:<14} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            name,
            c.precision(),
            c.recall(),
            c.f1(),
            c.accuracy()
        );
    }
    println!("\nThe parser-oracle's score is the ceiling: the benchmark's labels");
    println!("are produced (and verified) by the same analysis it answers with.");
}
