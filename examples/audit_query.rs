//! Audit a SQL query the way the benchmark's substrates do: parse it,
//! run semantic analysis against the SDSS schema, extract its syntactic
//! properties, print its EXPLAIN-style plan, and estimate its runtime — the
//! building blocks a query-recommendation tool (the paper's motivating
//! application) would use.
//!
//! ```text
//! cargo run --release --example audit_query
//! cargo run --release --example audit_query -- "SELECT plate FROM SpecObj WHERE z = 'high'"
//! ```

use squ_engine::CostModel;
use squ_parser::parse;
use squ_schema::{analyze, schemas::sdss};
use squ_workload::query_props;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries: Vec<String> = if args.is_empty() {
        vec![
            // clean and cheap
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5".to_string(),
            // clean but expensive (big photometric join)
            "SELECT s.plate, p.ra, p.dec FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.modelmag_r < 17".to_string(),
            // the paper's Listing-1 errors
            "SELECT plate, mjd, COUNT(*), AVG(z) FROM SpecObj WHERE z > 0.5".to_string(),
            "SELECT plate, mjd, fiberid FROM SpecObj WHERE z = 'high'".to_string(),
            "SELECT plate, fiberid FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.bestobjid WHERE bestobjid > 1000".to_string(),
        ]
    } else {
        args
    };

    let schema = sdss();
    let cost = CostModel::default();

    for sql in queries {
        println!("query: {sql}");
        let stmt = match parse(&sql) {
            Ok(s) => s,
            Err(e) => {
                println!("  ✗ parse error: {e}\n");
                continue;
            }
        };

        let props = query_props(&sql, &stmt);
        println!(
            "  shape: {} | {} words, {} tables, {} joins, {} predicates, nestedness {}",
            props.query_type,
            props.word_count,
            props.table_count,
            props.join_count,
            props.predicate_count,
            props.nestedness
        );

        let diags = analyze(&stmt, &schema);
        if diags.is_empty() {
            println!("  ✓ semantically clean");
        } else {
            for d in &diags {
                let label = d
                    .kind
                    .paper_label()
                    .map(|l| format!(" [{l}]"))
                    .unwrap_or_default();
                println!("  ✗ {}{label}", d.message);
            }
        }

        let ms = cost.estimate_ms(&stmt, &schema);
        let verdict = if ms > squ_tasks::COST_THRESHOLD_MS {
            "costly"
        } else {
            "cheap"
        };
        println!("  cost: ~{ms:.1} ms → {verdict}");
        let plan = squ_engine::explain(&stmt, &schema);
        for line in plan.lines().skip(1) {
            println!("    {line}");
        }
        println!();
    }
}
