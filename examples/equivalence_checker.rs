//! Differential equivalence checking of two SQL queries — the machinery
//! behind the benchmark's `query_equiv` labels, usable standalone.
//!
//! Executes both queries on a batch of adversarial witness databases for
//! the SDSS schema and reports whether any witness distinguishes them.
//! Agreement on all witnesses is strong evidence of (but not a proof of)
//! equivalence; any disagreement is a *proof* of non-equivalence, and the
//! first differing witness is summarized.
//!
//! ```text
//! cargo run --release --example equivalence_checker
//! cargo run --release --example equivalence_checker -- \
//!   "SELECT plate FROM SpecObj WHERE z > 0.5 AND ra > 180" \
//!   "SELECT plate FROM SpecObj WHERE ra > 180 AND z > 0.5"
//! ```

use squ_engine::{execute_query, witness_batch};
use squ_parser::parse_query;
use squ_schema::schemas::sdss;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pairs: Vec<(String, String)> = if args.len() == 2 {
        vec![(args[0].clone(), args[1].clone())]
    } else {
        vec![
            // the paper's Q10 (reorder-conditions, equivalent)
            (
                "SELECT * FROM SpecObj WHERE plate = 1000 AND mjd > 55000".into(),
                "SELECT * FROM SpecObj WHERE mjd > 55000 AND plate = 1000".into(),
            ),
            // the paper's Q13 (logical-conditions, NOT equivalent)
            (
                "SELECT plate, mjd, fiberid FROM SpecObj WHERE z > 0.5 AND ra > 180".into(),
                "SELECT plate, mjd, fiberid FROM SpecObj WHERE z > 0.5 OR ra > 180".into(),
            ),
            // the paper's Q9 (cte, equivalent)
            (
                "SELECT plate, mjd FROM SpecObj WHERE z > 0.5".into(),
                "WITH HighRedshift AS (SELECT plate, mjd FROM SpecObj WHERE z > 0.5) SELECT plate, mjd FROM HighRedshift".into(),
            ),
            // the paper's Q12 (change-join-condition, NOT equivalent)
            (
                "SELECT s.plate, s.mjd FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid".into(),
                "SELECT s.plate, s.mjd FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid".into(),
            ),
        ]
    };

    let schema = sdss();
    let witnesses = witness_batch(&schema, 0xD1FF);

    for (sql1, sql2) in pairs {
        println!("Q1: {sql1}");
        println!("Q2: {sql2}");
        let (q1, q2) = match (parse_query(&sql1), parse_query(&sql2)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                println!("  ✗ parse error: {e}\n");
                continue;
            }
        };
        let mut verdict = "EQUIVALENT on all witnesses (no counterexample found)";
        let mut detail = String::new();
        for (i, db) in witnesses.iter().enumerate() {
            let r1 = match execute_query(&q1, db) {
                Ok((r, _)) => r,
                Err(e) => {
                    verdict = "UNDECIDED (execution failed)";
                    detail = format!("  witness {i}: {e}");
                    break;
                }
            };
            let r2 = match execute_query(&q2, db) {
                Ok((r, _)) => r,
                Err(e) => {
                    verdict = "UNDECIDED (execution failed)";
                    detail = format!("  witness {i}: {e}");
                    break;
                }
            };
            if !r1.result_equal(&r2) {
                verdict = "NOT EQUIVALENT";
                detail = format!(
                    "  counterexample: witness {i} gives {} vs {} rows\n  Q1 first rows: {}\n  Q2 first rows: {}",
                    r1.len(),
                    r2.len(),
                    preview(&r1),
                    preview(&r2),
                );
                break;
            }
        }
        println!("  → {verdict}");
        if !detail.is_empty() {
            println!("{detail}");
        }
        println!();
    }
}

fn preview(rel: &squ_engine::Relation) -> String {
    let rows: Vec<String> = rel
        .sorted_rows()
        .into_iter()
        .take(3)
        .map(|r| {
            let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
            format!("({})", cells.join(", "))
        })
        .collect();
    if rows.is_empty() {
        "∅".to_string()
    } else {
        rows.join(" ")
    }
}
