//! Quickstart: build the benchmark suite and reproduce one paper table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use squ::{run_experiment, ExperimentId, Suite, PAPER_SEED};

fn main() {
    println!("Building the benchmark suite (seed {PAPER_SEED})…");
    let suite = Suite::new(PAPER_SEED);

    println!(
        "Sampled workloads: SDSS {} / SQLShare {} / Join-Order {} / Spider {}\n",
        suite.sdss.len(),
        suite.sqlshare.len(),
        suite.joborder.len(),
        suite.spider.len()
    );

    // a taste of the data
    let q = &suite.sdss.queries[0];
    println!("example SDSS query ({}):\n  {}", q.id, q.sql);
    println!(
        "  word_count={} tables={} predicates={} elapsed={:.1} ms\n",
        q.props.word_count,
        q.props.table_count,
        q.props.predicate_count,
        q.elapsed_ms.unwrap_or(0.0)
    );

    // reproduce the paper's performance-prediction table
    let artifact = run_experiment(&suite, ExperimentId::Table6);
    println!("{}\n{}", artifact.title, artifact.body);

    // and the qualitative case study
    let cs = run_experiment(&suite, ExperimentId::CaseStudy);
    println!("{}\n{}", cs.title, cs.body);
}
