//! Offline, dependency-free subset of the `criterion` API.
//!
//! The registry is unreachable in this build environment, so the bench
//! harness is vendored as a minimal-but-real measurement loop: each
//! benchmark runs a short warm-up, then timed iterations, and prints the
//! mean wall-clock time per iteration with throughput when configured.
//! There is no statistical analysis, HTML report, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter display value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("parse", 1024)` → `parse/1024`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its result live via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(full_id: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // warm-up: run until ~50ms elapsed to pick an iteration count
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup = Instant::now();
    let mut total_iters = 0u64;
    while warmup.elapsed() < Duration::from_millis(50) {
        f(&mut probe);
        total_iters += probe.iters;
        probe.iters = (probe.iters * 2).min(1 << 20);
    }
    let per_iter = warmup.elapsed().as_nanos() as u64 / total_iters.max(1);
    // measurement: aim for ~200ms of work
    let iters = (200_000_000u64 / per_iter.max(1)).clamp(1, 1 << 22);
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let nanos = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    let time = if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else {
        format!("{:.3} ms", nanos / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (nanos / 1e9) / (1024.0 * 1024.0);
            println!("{full_id:<48} {time:>12}/iter  {mib_s:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (nanos / 1e9);
            println!("{full_id:<48} {time:>12}/iter  {elem_s:>10.0} elem/s");
        }
        None => println!("{full_id:<48} {time:>12}/iter"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark `routine` with an explicit input value.
    pub fn bench_with_input<I, R>(&mut self, id: BenchmarkId, input: &I, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, &mut |b| routine(b, input));
        self
    }

    /// Benchmark a closure under this group's name.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut routine);
        self
    }

    /// Finish the group (no-op; parity with upstream).
    pub fn finish(self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a single named closure.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut routine: R) -> &mut Self {
        run_one(id, None, &mut routine);
        self
    }
}

/// Group benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(100));
        g.bench_with_input(BenchmarkId::new("len", 100), &100usize, |b, n| {
            b.iter(|| "x".repeat(*n).len())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        tiny(&mut c);
    }

    criterion_group!(benches, tiny);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
