//! Offline, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its property tests use (see `vendor/README.md`):
//! the `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`
//! macros, `Strategy` with `prop_map`, `Just`, numeric-range strategies,
//! regex-string strategies, tuple strategies, and `collection::vec`.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! the case index and message. Case generation is fully deterministic, so
//! a failure reproduces on every run.

use std::ops::Range;
use std::rc::Rc;

// ---------------- runner ----------------

/// A failed property assertion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type a property-test body produces.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Execute `cases` deterministic cases of a property. Panics (failing the
/// enclosing `#[test]`) on the first case whose body returns an error.
pub fn run_cases(cases: u32, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    for case in 0..cases {
        let mut rng = TestRng::new(0x5EED_0000_0000_0000u64 ^ (case as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        if let Err(e) = body(&mut rng) {
            panic!("proptest case {case}/{cases} failed: {e}");
        }
    }
}

// ---------------- strategies ----------------

/// A generator of values of one type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Rc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from pre-wrapped arms (used by `prop_oneof!`).
    pub fn from_arms(arms: Vec<Rc<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Wrap a strategy for use as a `prop_oneof!` arm.
pub fn __rc_strategy<S: Strategy + 'static>(s: S) -> Rc<dyn Strategy<Value = S::Value>> {
    Rc::new(s)
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — lengths are sampled from the half-open
    /// range, matching proptest's `SizeRange` semantics for `a..b`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------- regex string strategies ----------------

/// `&str` strategies are interpreted as a small regex dialect, like
/// upstream proptest: literals, `.`, `[a-z ]` classes, `(a|bc|d)` groups,
/// escapes, and `{m,n}` / `*` / `+` / `?` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let nodes = regex::parse_alternatives(&mut self.chars().peekable());
        regex::sample_alternatives(&nodes, rng)
    }
}

mod regex {
    use super::TestRng;
    use std::iter::Peekable;
    use std::str::Chars;

    pub(super) enum Node {
        Lit(char),
        Dot,
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Repeated>>),
    }

    pub(super) struct Repeated {
        node: Node,
        min: u32,
        max: u32,
    }

    type Alternatives = Vec<Vec<Repeated>>;

    pub(super) fn parse_alternatives(chars: &mut Peekable<Chars<'_>>) -> Alternatives {
        let mut alts = vec![Vec::new()];
        while let Some(&c) = chars.peek() {
            match c {
                ')' => break,
                '|' => {
                    chars.next();
                    alts.push(Vec::new());
                }
                _ => {
                    let node = parse_atom(chars);
                    let (min, max) = parse_repetition(chars);
                    alts.last_mut()
                        .expect("non-empty")
                        .push(Repeated { node, min, max });
                }
            }
        }
        alts
    }

    fn parse_atom(chars: &mut Peekable<Chars<'_>>) -> Node {
        match chars.next().expect("atom") {
            '(' => {
                let alts = parse_alternatives(chars);
                chars.next(); // closing ')'
                Node::Group(alts)
            }
            '[' => {
                let mut ranges = Vec::new();
                while let Some(&c) = chars.peek() {
                    if c == ']' {
                        chars.next();
                        break;
                    }
                    let lo = if c == '\\' {
                        chars.next();
                        chars.next().expect("escaped class char")
                    } else {
                        chars.next();
                        c
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars.next().expect("class range end");
                        if hi == ']' {
                            ranges.push((lo, lo));
                            ranges.push(('-', '-'));
                            break;
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Node::Class(ranges)
            }
            '.' => Node::Dot,
            '\\' => Node::Lit(chars.next().expect("escaped char")),
            c => Node::Lit(c),
        }
    }

    fn parse_repetition(chars: &mut Peekable<Chars<'_>>) -> (u32, u32) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut min = String::new();
                let mut max = String::new();
                let mut in_max = false;
                for c in chars.by_ref() {
                    match c {
                        '}' => break,
                        ',' => in_max = true,
                        d => {
                            if in_max {
                                max.push(d);
                            } else {
                                min.push(d);
                            }
                        }
                    }
                }
                let lo: u32 = min.parse().unwrap_or(0);
                let hi: u32 = if in_max {
                    max.parse().unwrap_or(lo)
                } else {
                    lo
                };
                (lo, hi)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    pub(super) fn sample_alternatives(alts: &Alternatives, rng: &mut TestRng) -> String {
        let mut out = String::new();
        sample_into(alts, rng, &mut out);
        out
    }

    fn sample_into(alts: &Alternatives, rng: &mut TestRng, out: &mut String) {
        let seq = &alts[rng.below(alts.len() as u64) as usize];
        for rep in seq {
            let span = (rep.max - rep.min + 1) as u64;
            let n = rep.min + rng.below(span) as u32;
            for _ in 0..n {
                sample_node(&rep.node, rng, out);
            }
        }
    }

    fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Dot => {
                // mostly printable ASCII, occasionally multi-byte chars, so
                // totality tests see non-trivial encodings (never newline,
                // matching regex `.`)
                if rng.below(10) == 0 {
                    const WIDE: &[char] = &['é', 'λ', '中', '🙂', '\u{7f}', '\u{a0}'];
                    out.push(WIDE[rng.below(WIDE.len() as u64) as usize]);
                } else {
                    out.push((0x20 + rng.below(0x5f) as u8) as char);
                }
            }
            Node::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = (hi as u32).saturating_sub(lo as u32) + 1;
                let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo);
                out.push(c);
            }
            Node::Group(alts) => sample_into(alts, rng, out),
        }
    }
}

// ---------------- macros ----------------

/// Define deterministic property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg).cases ; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default().cases ; $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cases:expr ; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = $cases;
                $crate::run_cases(__cases, |__rng| {
                    $( let $arg = $crate::Strategy::sample(&($strat), __rng); )+
                    let __body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    __body()
                });
            }
        )*
    };
}

/// Assert inside a property body; failure aborts only this case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} != {:?}",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::from_arms(vec![ $( $crate::__rc_strategy($arm) ),+ ])
    };
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// Namespace mirror of upstream's `prop::…` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = crate::TestRng::new(1);
        let s = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn regex_class_and_group() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..50 {
            let s = "[ -~]{0,20}".sample(&mut rng);
            assert!(s.len() <= 20 && s.chars().all(|c| (' '..='~').contains(&c)));
            let t = "(ab|cd){1,3}".sample(&mut rng);
            assert!(!t.is_empty() && t.len() % 2 == 0);
            let u = "[0-9]{1,4}".sample(&mut rng);
            assert!((1..=4).contains(&u.len()) && u.chars().all(|c| c.is_ascii_digit()));
            let w = "(\\(|\\)|x){1,2}".sample(&mut rng);
            assert!(w.chars().all(|c| "()x".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(a in 0u32..100, s in "x{1,5}", v in prop::collection::vec(0i32..3, 1..4)) {
            prop_assert!(a < 100);
            prop_assert!((1..=5).contains(&s.len()));
            prop_assert!((1..=3).contains(&v.len()));
            prop_assert_eq!(s.chars().filter(|c| *c == 'x').count(), s.len());
        }
    }

    proptest! {
        #[test]
        fn oneof_and_tuples(pair in (prop_oneof![Just(1u8), Just(2u8)], 0u8..3)) {
            prop_assert!(pair.0 == 1 || pair.0 == 2);
            prop_assert!(pair.1 < 3);
        }
    }
}
