//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stub. Implemented directly over `proc_macro::TokenStream` (no
//! syn/quote — the registry is unreachable in this build environment).
//!
//! Supported shapes — exactly what the workspace uses:
//! * structs with named fields,
//! * enums with unit, one-field tuple, and struct variants,
//! * an optional simple generic parameter list (`<T>`).
//!
//! JSON layout matches serde's externally-tagged default:
//! * struct           → `{"field": value, …}`
//! * unit variant     → `"Variant"`
//! * tuple variant    → `{"Variant": value}`
//! * struct variant   → `{"Variant": {"field": value, …}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct { fields: Vec<String> },
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Parsed {
    name: String,
    generics: Vec<String>,
    item: Item,
}

/// Skip attributes (`#[...]` / `#![...]`) and visibility (`pub`,
/// `pub(crate)`, …) at the current position.
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '!' {
                        i += 1;
                    }
                }
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Parse a simple generic parameter list `<A, B, 'a>` starting at `<`.
/// Returns (type-parameter names, index after the closing `>`).
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut params = Vec::new();
    if !is_punct(tokens.get(i), '<') {
        return (params, i);
    }
    i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    while i < tokens.len() && depth > 0 {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => expecting_param = false,
            TokenTree::Ident(id) if depth == 1 && expecting_param => {
                params.push(id.to_string());
                expecting_param = false;
            }
            _ => {}
        }
        i += 1;
    }
    (params, i)
}

/// Parse named fields inside a brace group: returns the field names.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(name) = ident_at(&tokens, i) else { break };
        fields.push(name);
        i += 1;
        // expect ':', then consume the type up to a top-level ','
        if is_punct(tokens.get(i), ':') {
            i += 1;
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parse enum variants inside a brace group.
fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_meta(&tokens, i);
        let Some(name) = ident_at(&tokens, i) else { break };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut count = if inner.is_empty() { 0 } else { 1 };
                let mut angle = 0i32;
                for t in &inner {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
                        _ => {}
                    }
                }
                i += 1;
                VariantKind::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // skip a possible discriminant and the trailing comma
        while i < tokens.len() && !is_punct(tokens.get(i), ',') {
            i += 1;
        }
        i += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let keyword = ident_at(&tokens, i).expect("derive input starts with struct/enum");
    i += 1;
    let name = ident_at(&tokens, i).expect("type name after struct/enum");
    i += 1;
    let (generics, after_generics) = parse_generics(&tokens, i);
    i = after_generics;
    // skip a possible `where` clause up to the body group
    while i < tokens.len()
        && !matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Brace)
        && !is_punct(tokens.get(i), ';')
    {
        i += 1;
    }
    let item = match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) => Item::Struct {
            fields: parse_named_fields(g.stream()),
        },
        ("struct", _) => Item::Struct { fields: Vec::new() },
        ("enum", Some(TokenTree::Group(g))) => Item::Enum {
            variants: parse_variants(g.stream()),
        },
        other => panic!("unsupported derive input: {other:?}"),
    };
    Parsed {
        name,
        generics,
        item,
    }
}

fn impl_header(p: &Parsed, trait_path: &str, bound: Option<&str>) -> String {
    if p.generics.is_empty() {
        format!("impl {} for {}", trait_path, p.name)
    } else {
        let params = p.generics.join(", ");
        let bounds = match bound {
            Some(b) => p
                .generics
                .iter()
                .map(|g| format!("{g}: {b}"))
                .collect::<Vec<_>>()
                .join(", "),
            None => params.clone(),
        };
        format!(
            "impl<{bounds}> {trait_path} for {}<{params}>",
            p.name
        )
    }
}

/// `#[derive(Serialize)]` — lowers the type to a `serde::Json` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    let body = match &p.item {
        Item::Struct { fields } => {
            let pushes = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f})));"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let mut __fields: Vec<(String, ::serde::Json)> = Vec::new();\n{pushes}\n::serde::Json::Object(__fields)"
            )
        }
        Item::Enum { variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let ty = &p.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{ty}::{vname} => ::serde::Json::Str({vname:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{ty}::{vname}(__v0) => ::serde::Json::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_json_value(__v0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|k| format!("__v{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_json_value(__v{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{ty}::{vname}({binds}) => ::serde::Json::Object(vec![({vname:?}.to_string(), ::serde::Json::Array(vec![{items}]))]),"
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pushes = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{ty}::{vname} {{ {binds} }} => ::serde::Json::Object(vec![({vname:?}.to_string(), ::serde::Json::Object(vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    let header = impl_header(&p, "::serde::Serialize", Some("::serde::Serialize"));
    let out = format!(
        "#[automatically_derived]\n{header} {{\n    fn to_json_value(&self) -> ::serde::Json {{\n{body}\n    }}\n}}"
    );
    out.parse().expect("derived Serialize impl parses")
}

/// `#[derive(Deserialize)]` — decodes the type from a `serde::Json` tree,
/// inverting the layout the `Serialize` derive writes (externally-tagged
/// enums, objects for structs). Absent struct fields defer to
/// `Deserialize::missing_field`, so `Option` fields tolerate omission.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_item(input);
    let name = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => {
            let gets = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(__v, {f:?})?,"))
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __v {{\n\
                 ::serde::Json::Object(_) => Ok(Self {{\n{gets}\n}}),\n\
                 __other => Err(::serde::DeError(format!(\"expected object for {name}, got {{__other}}\"))),\n\
                 }}"
            )
        }
        Item::Enum { variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok(Self::{}),", v.name, v.name))
                .collect::<Vec<_>>()
                .join("\n");
            let tagged_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{vname:?} => Ok(Self::{vname}(::serde::Deserialize::from_json_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items = (0..*n)
                                .map(|k| format!("::serde::de_index(__items, {k})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "{vname:?} => match __inner {{\n\
                                 ::serde::Json::Array(__items) if __items.len() == {n} => Ok(Self::{vname}({items})),\n\
                                 __other => Err(::serde::DeError(format!(\"expected {n}-element array for {name}::{vname}, got {{__other}}\"))),\n\
                                 }},"
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let gets = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(__inner, {f:?})?,"))
                                .collect::<Vec<_>>()
                                .join("\n");
                            Some(format!(
                                "{vname:?} => Ok(Self::{vname} {{\n{gets}\n}}),"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            let mut arms = Vec::new();
            if !unit_arms.is_empty() {
                arms.push(format!(
                    "::serde::Json::Str(__s) => match __s.as_str() {{\n{unit_arms}\n\
                     __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},"
                ));
            }
            if !tagged_arms.is_empty() {
                arms.push(format!(
                    "::serde::Json::Object(__fields) if __fields.len() == 1 => {{\n\
                     let (__tag, __inner) = &__fields[0];\n\
                     match __tag.as_str() {{\n{tagged_arms}\n\
                     __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }}\n\
                     }},"
                ));
            }
            arms.push(format!(
                "__other => Err(::serde::DeError(format!(\"unexpected value for {name}: {{__other}}\"))),"
            ));
            format!("match __v {{\n{}\n}}", arms.join("\n"))
        }
    };
    let header = impl_header(&p, "::serde::Deserialize", Some("::serde::Deserialize"));
    let out = format!(
        "#[automatically_derived]\n{header} {{\n    fn from_json_value(__v: &::serde::Json) -> Result<Self, ::serde::DeError> {{\n{body}\n    }}\n}}"
    );
    out.parse().expect("derived Deserialize impl parses")
}
