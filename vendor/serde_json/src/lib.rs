//! Offline, dependency-free subset of the `serde_json` API, over the
//! vendored `serde` stub's [`serde::Json`] data model.
//!
//! Provides `to_string`, `to_string_pretty`, `from_str`, and [`Value`]
//! (an alias of [`serde::Json`]) — the surface this workspace uses.

use serde::{Deserialize, Serialize};

/// JSON value type (alias of the vendored [`serde::Json`]).
pub type Value = serde::Json;

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_compact_string())
}

/// Serialize a value to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json_value().to_pretty_string())
}

/// Serialize a value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Parse a JSON document and decode it into `T` (use `T = Value` for an
/// untyped tree).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    from_value(&v)
}

/// Decode a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_json_value(v).map_err(|e| Error(e.to_string()))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("bad escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // advance one UTF-8 code point
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = s.chars().next().ok_or_else(|| Error("empty".into()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::I64(v))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number {text:?}")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let text = r#"{"seed": 2023, "ok": true, "files": [{"n": "a", "r": 1.5}], "none": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["seed"], 2023u64);
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["files"][0]["n"], "a");
        assert_eq!(v["files"][0]["r"].as_f64(), Some(1.5));
        assert!(v.get("none").is_some());
        // compact render re-parses to the same tree
        let rendered = v.to_compact_string();
        assert_eq!(from_str::<Value>(&rendered).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd".into());
        let s = v.to_compact_string();
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_parses() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {"c": "d"}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
