//! Offline, dependency-free subset of the `serde` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde it uses (see `vendor/README.md`): the `Serialize` /
//! `Deserialize` derives and JSON serialization through the sibling
//! `serde_json` stub.
//!
//! Instead of serde's visitor-based data model, [`Serialize`] lowers a
//! value directly to a [`Json`] tree; `serde_json` renders / parses that
//! tree. The derive macros in the vendored `serde_derive` crate target
//! this contract.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value tree — the serialization data model of the vendored stack.
///
/// `serde_json::Value` is an alias of this type.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Json>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload (also accepts exact non-negative I64/F64).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric payload widened to f64.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Render as pretty-printed JSON (two-space indent).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON number formatting: integral finite floats keep a `.0` suffix, the
/// convention `serde_json` follows, so floats stay distinguishable from
/// integers after a round-trip. Non-finite values serialize as `null`.
fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        static NULL: Json = Json::Null;
        match self {
            Json::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<u64> for Json {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Json {
    fn eq(&self, other: &i32) -> bool {
        match *self {
            Json::I64(v) => v == *other as i64,
            Json::U64(v) => *other >= 0 && v == *other as u64,
            Json::F64(v) => v == *other as f64,
            _ => false,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// Types that can lower themselves to a [`Json`] tree.
pub trait Serialize {
    /// Lower `self` to a JSON value.
    fn to_json_value(&self) -> Json;
}

/// Types that can be decoded from a [`Json`] tree.
///
/// This is the read half of the vendored stack: `serde_json::from_str`
/// parses text into a [`Json`] tree and this trait lifts the tree back
/// into a typed value. The derive in the vendored `serde_derive` crate
/// emits decoders matching the externally-tagged layout the `Serialize`
/// derive writes, so `to_string` → `from_str` round-trips by
/// construction.
pub trait Deserialize: Sized {
    /// Decode a value from a JSON tree.
    fn from_json_value(v: &Json) -> Result<Self, DeError>;

    /// Value to substitute when a struct field is absent from the
    /// document. Errors by default; `Option<T>` decodes to `None`, which
    /// is how `#[serde(default)]`-style optional fields behave.
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Decode one named field of an object (derive-internal helper).
pub fn de_field<T: Deserialize>(v: &Json, field: &str) -> Result<T, DeError> {
    match v.get(field) {
        Some(inner) => T::from_json_value(inner)
            .map_err(|e| DeError(format!("field `{field}`: {e}"))),
        None => T::missing_field(field),
    }
}

/// Decode one positional element of an array (derive-internal helper).
pub fn de_index<T: Deserialize>(items: &[Json], idx: usize) -> Result<T, DeError> {
    match items.get(idx) {
        Some(inner) => T::from_json_value(inner),
        None => Err(DeError(format!("missing tuple element {idx}"))),
    }
}

fn de_expected<T>(what: &str, got: &Json) -> Result<T, DeError> {
    Err(DeError(format!("expected {what}, got {got}")))
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Json) -> Result<Self, DeError> {
                match v.as_u64() {
                    Some(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    None => de_expected("unsigned integer", v),
                }
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Json) -> Result<Self, DeError> {
                let n = match *v {
                    Json::I64(n) => n,
                    Json::U64(n) if n <= i64::MAX as u64 => n as i64,
                    _ => return de_expected("signed integer", v),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        v.as_f64().map_or_else(|| de_expected("number", v), Ok)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        v.as_f64()
            .map_or_else(|| de_expected("number", v), |n| Ok(n as f32))
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        v.as_bool().map_or_else(|| de_expected("bool", v), Ok)
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        v.as_str()
            .map_or_else(|| de_expected("string", v), |s| Ok(s.to_string()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => de_expected("array", other),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Array(items) if items.len() == 2 => {
                Ok((de_index(items, 0)?, de_index(items, 1)?))
            }
            other => de_expected("2-element array", other),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Object(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
                .collect(),
            other => de_expected("object", other),
        }
    }
}

impl Deserialize for Json {
    fn from_json_value(v: &Json) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Json { Json::U64(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Json { Json::I64(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Json {
        Json::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Json {
        Json::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Json {
        match self {
            Some(v) => v.to_json_value(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Json {
        (**self).to_json_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Json {
        Json::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl Serialize for Json {
    fn to_json_value(&self) -> Json {
        self.clone()
    }
}

fn map_key(k: Json) -> String {
    match k {
        Json::Str(s) => s,
        other => other.to_compact_string(),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (map_key(k.to_json_value()), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json_value(&self) -> Json {
        // sorted by rendered key so output is deterministic
        let mut entries: Vec<(String, Json)> = self
            .iter()
            .map(|(k, v)| (map_key(k.to_json_value()), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(1u64.to_json_value().to_compact_string(), "1");
        assert_eq!((-3i64).to_json_value().to_compact_string(), "-3");
        assert_eq!(1.0f64.to_json_value().to_compact_string(), "1.0");
        assert_eq!(0.5f64.to_json_value().to_compact_string(), "0.5");
        assert_eq!(true.to_json_value().to_compact_string(), "true");
        assert_eq!(
            "a\"b".to_json_value().to_compact_string(),
            "\"a\\\"b\""
        );
    }

    #[test]
    fn containers_render() {
        let v = vec![Some(1u64), None];
        assert_eq!(v.to_json_value().to_compact_string(), "[1,null]");
        let obj = Json::Object(vec![("k".into(), Json::U64(2))]);
        assert_eq!(obj.to_compact_string(), "{\"k\":2}");
        assert_eq!(obj["k"], 2u64);
        assert!(obj.get("missing").is_none());
    }
}
