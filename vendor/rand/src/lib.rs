//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access (see `vendor/README.md`),
//! so this crate reimplements the slice of `rand` the workspace uses:
//! `Rng::gen_range` / `gen_bool` / `gen`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! **Bit-compatibility:** `StdRng` is ChaCha12 (as in upstream rand 0.8 +
//! rand_chacha 0.3), `seed_from_u64` uses the same PCG32 seed expansion,
//! and the sampling algorithms (widening-multiply uniform integers,
//! `[1, 2)`-mantissa uniform floats, fixed-point Bernoulli, `gen_index`
//! with the u32 fast path) follow rand 0.8.5 exactly. A given seed
//! therefore yields the same value stream as upstream, keeping
//! dataset-content tests written against the original crate valid.

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds (subset of `rand_core`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed via PCG32 seed expansion
    /// (bit-identical to `rand_core` 0.6's default implementation).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range, matching rand 0.8.5's
    /// `UniformSampler::sample_single{,_inclusive}` algorithms.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: fixed-point `p * 2^64` threshold on one `u64`,
    /// as in rand 0.8.5 (`p == 1.0` consumes no randomness).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "gen_bool: probability {p} not in [0, 1]");
            return true;
        }
        let p_int = (p * 2f64.powi(64)) as u64;
        self.next_u64() < p_int
    }

    /// Sample from the `Standard` distribution.
    fn gen<T: distributions::StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sampling algorithms (subset of `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// Types drawable from the `Standard` distribution.
    pub trait StandardSample {
        /// One uniform draw over the full domain.
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! standard_via_u32 {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u32() as $t
                }
            }
        )*};
    }
    standard_via_u32!(u8, i8, u16, i16, u32, i32);

    macro_rules! standard_via_u64 {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_via_u64!(u64, i64, usize, isize);

    impl StandardSample for f64 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for bool {
        fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    /// Range forms accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw one value (rand's `sample_single` path).
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    // Uniform integers, following rand 0.8.5 `uniform_int_impl!` exactly:
    // widening multiply with rejection zone; 8/16-bit types use the exact
    // modulus zone, wider types the leading-zeros approximation; 8/16/32-bit
    // types draw u32s, 64-bit types draw u64s.
    macro_rules! uniform_int {
        ($ty:ty, $unsigned:ty, $u_large:ty, $draw:ident, $wide:ty) => {
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "gen_range: empty range");
                    (self.start..=self.end - 1).sample_single(rng)
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (*self.start(), *self.end());
                    assert!(low <= high, "gen_range: empty range");
                    let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // full domain: any draw works
                        return $draw(rng) as $ty;
                    }
                    let zone = if (<$unsigned>::MAX as u32) <= u16::MAX as u32 {
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = $draw(rng) as $u_large;
                        let wide = (v as $wide) * (range as $wide);
                        let hi = (wide >> (<$u_large>::BITS)) as $u_large;
                        let lo = wide as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    fn draw_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
    fn draw_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }

    uniform_int!(i8, u8, u32, draw_u32, u64);
    uniform_int!(u8, u8, u32, draw_u32, u64);
    uniform_int!(i16, u16, u32, draw_u32, u64);
    uniform_int!(u16, u16, u32, draw_u32, u64);
    uniform_int!(i32, u32, u32, draw_u32, u64);
    uniform_int!(u32, u32, u32, draw_u32, u64);
    uniform_int!(i64, u64, u64, draw_u64, u128);
    uniform_int!(u64, u64, u64, draw_u64, u128);
    uniform_int!(isize, usize, usize, draw_u64, u128);
    uniform_int!(usize, usize, usize, draw_u64, u128);

    // Uniform floats, following rand 0.8.5 `uniform_float_impl!`
    // `sample_single`: mantissa bits give `value1_2 ∈ [1, 2)`, result is
    // `(value1_2 - 1) * scale + low`, rejecting the (rounding-only) case
    // `res >= high`.
    macro_rules! uniform_float {
        ($ty:ty, $uty:ty, $draw:ident, $bits_to_discard:expr, $exponent_bits:expr) => {
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (low, high) = (self.start, self.end);
                    assert!(low < high, "gen_range: empty range");
                    let scale = high - low;
                    loop {
                        let bits: $uty = $draw(rng) >> $bits_to_discard;
                        let value1_2 = <$ty>::from_bits(bits | $exponent_bits);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                    }
                }
            }
        };
    }

    uniform_float!(f64, u64, draw_u64, 11u32, 1023u64 << 52);
    uniform_float!(f32, u32, draw_u32, 9u32, 127u32 << 23);
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::distributions::SampleRange;
    use super::RngCore;

    /// rand 0.8.5's `gen_index`: u32 sampling for small bounds.
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            (0..ubound as u32).sample_single(rng) as usize
        } else {
            (0..ubound).sample_single(rng)
        }
    }

    /// Slice selection and shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle (high-to-low, as upstream).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: ChaCha12, bit-compatible with upstream
    /// rand 0.8 (`rand_chacha::ChaCha12Rng` behind `rand::rngs::StdRng`).
    ///
    /// Keystream blocks are produced four at a time into a 64-word buffer
    /// and consumed with `rand_core::BlockRng` index semantics, so the
    /// u32/u64 interleaving matches upstream draw-for-draw.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 64],
        index: usize,
    }

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    #[inline(always)]
    fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    impl StdRng {
        /// Construct from a raw 256-bit key (upstream `from_seed` layout:
        /// little-endian key words, block counter and stream both zero).
        pub fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 64],
                index: 64, // empty: first draw generates
            }
        }

        /// One ChaCha12 block at `counter` into `out`.
        fn block(&self, counter: u64, out: &mut [u32]) {
            let mut x = [0u32; 16];
            x[..4].copy_from_slice(&CHACHA_CONSTANTS);
            x[4..12].copy_from_slice(&self.key);
            x[12] = counter as u32;
            x[13] = (counter >> 32) as u32;
            // x[14], x[15]: stream id, zero for seed_from_u64 construction
            let input = x;
            for _ in 0..6 {
                // double round (12 rounds total)
                quarter_round(&mut x, 0, 4, 8, 12);
                quarter_round(&mut x, 1, 5, 9, 13);
                quarter_round(&mut x, 2, 6, 10, 14);
                quarter_round(&mut x, 3, 7, 11, 15);
                quarter_round(&mut x, 0, 5, 10, 15);
                quarter_round(&mut x, 1, 6, 11, 12);
                quarter_round(&mut x, 2, 7, 8, 13);
                quarter_round(&mut x, 3, 4, 9, 14);
            }
            for i in 0..16 {
                out[i] = x[i].wrapping_add(input[i]);
            }
        }

        /// Refill the 4-block buffer and reset the read index.
        fn generate_and_set(&mut self, index: usize) {
            let mut buf = [0u32; 64];
            for blk in 0..4u64 {
                let mut out = [0u32; 16];
                self.block(self.counter.wrapping_add(blk), &mut out);
                let at = blk as usize * 16;
                buf[at..at + 16].copy_from_slice(&out);
            }
            self.buf = buf;
            self.counter = self.counter.wrapping_add(4);
            self.index = index;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        // rand_core::BlockRng::next_u64 semantics, including the
        // split-read at the buffer boundary.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < 63 {
                self.index += 2;
                (self.buf[index] as u64) | ((self.buf[index + 1] as u64) << 32)
            } else if index >= 64 {
                self.generate_and_set(2);
                (self.buf[0] as u64) | ((self.buf[1] as u64) << 32)
            } else {
                let x = self.buf[63] as u64;
                self.generate_and_set(1);
                let y = self.buf[0] as u64;
                (y << 32) | x
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6 default: PCG32 expansion of the u64 seed
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            StdRng::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn chacha20_rounds_match_reference_structure() {
        // The all-zero key/counter block of our core must be stable, and
        // distinct blocks/keys must diverge — structural sanity for the
        // hand-written ChaCha core.
        let a = StdRng::from_seed([0u8; 32]).next_u64();
        let b = StdRng::from_seed([0u8; 32]).next_u64();
        let c = StdRng::from_seed([1u8; 32]).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut r1 = StdRng::seed_from_u64(2023);
        let mut r2 = StdRng::seed_from_u64(2023);
        let mut r3 = StdRng::seed_from_u64(2024);
        let s1: Vec<u64> = (0..100).map(|_| r1.next_u64()).collect();
        let s2: Vec<u64> = (0..100).map(|_| r2.next_u64()).collect();
        let s3: Vec<u64> = (0..100).map(|_| r3.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn mixed_width_draws_stay_deterministic() {
        // interleave u32/u64 draws across the 64-word buffer boundary
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let mut log1 = Vec::new();
        let mut log2 = Vec::new();
        for i in 0..200 {
            if i % 3 == 0 {
                log1.push(r1.next_u32() as u64);
                log2.push(r2.next_u32() as u64);
            } else {
                log1.push(r1.next_u64());
                log2.push(r2.next_u64());
            }
        }
        assert_eq!(log1, log2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..2000 {
            let a = rng.gen_range(0..10);
            assert!((0..10).contains(&a));
            let b = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&b));
            let c = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
            let d = rng.gen_range(0.0..3.5_f64);
            assert!((0.0..3.5).contains(&d));
            let e = rng.gen_range(0..7usize);
            assert!(e < 7);
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn slice_helpers() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<i32> = (0..50).collect();
        let mut w = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, w, "50 elements almost surely permute");
        w.sort_unstable();
        let mut v2 = v.clone();
        v2.sort_unstable();
        assert_eq!(v2, w);
    }
}
