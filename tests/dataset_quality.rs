//! Cross-crate dataset-quality checks: every benchmark example must be
//! well-formed, and labels must survive independent re-verification.

use squ::{Suite, PAPER_SEED};
use squ_engine::{execute_query, witness_batch};
use squ_parser::parse;
use squ_schema::analyze;
use squ_workload::{schema_for, Workload};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

/// Every sampled workload query parses, binds cleanly, and round-trips
/// through the printer.
#[test]
fn workload_queries_are_clean() {
    for w in [
        Workload::Sdss,
        Workload::SqlShare,
        Workload::JoinOrder,
        Workload::Spider,
    ] {
        for q in &suite().dataset(w).queries {
            let stmt = parse(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.id));
            let schema = schema_for(w, &q.schema_name);
            let diags = analyze(&stmt, &schema);
            assert!(diags.is_empty(), "{}: {:?}\n{}", q.id, diags, q.sql);
            let printed = squ_parser::print_statement(&stmt);
            let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{}: reparse: {e}", q.id));
            assert_eq!(stmt, reparsed, "{}: round-trip", q.id);
        }
    }
}

/// Error-injected examples trigger exactly the intended binder diagnostic;
/// error-free examples stay clean.
#[test]
fn syntax_labels_verified_by_binder() {
    for w in Workload::task_workloads() {
        for e in suite().syntax_for(w) {
            let stmt = parse(&e.sql).unwrap_or_else(|err| panic!("{}: {err}", e.query_id));
            let schema = schema_for(w, &e.schema_name);
            let diags = analyze(&stmt, &schema);
            match e.error_type {
                Some(ty) => assert!(
                    diags.iter().any(|d| d.kind == ty.expected_diagnostic()),
                    "{}: wanted {ty}, got {diags:?}\n{}",
                    e.query_id,
                    e.sql
                ),
                None => assert!(diags.is_empty(), "{}: {:?}", e.query_id, diags),
            }
        }
    }
}

/// Token-deleted examples: the removed text is truly absent at the
/// recorded position, and positive examples differ from their source.
#[test]
fn token_labels_are_consistent() {
    for w in Workload::task_workloads() {
        for e in suite().tokens_for(w) {
            if e.has_missing {
                let removed = e
                    .removed_text
                    .as_deref()
                    .expect("positive has removed text");
                let pos = e.position.expect("positive has position");
                assert!(!removed.is_empty());
                // the position is within the (shortened) query
                let wc = squ_lexer::word_count(&e.sql);
                assert!(pos <= wc, "{}: pos {pos} > {wc}", e.query_id);
            } else {
                assert!(e.removed_text.is_none() && e.position.is_none());
                // negatives still parse and bind cleanly
                let stmt = parse(&e.sql).expect("negatives parse");
                let schema = schema_for(w, &e.schema_name);
                assert!(analyze(&stmt, &schema).is_empty());
            }
        }
    }
}

/// Equivalence labels survive an independent differential re-check on a
/// *fresh* witness batch (different seeds than the builder used).
#[test]
fn equiv_labels_survive_fresh_witnesses() {
    use squ_tasks::{differential_verdict, Verdict};
    let mut checked = 0;
    let mut confirmed = 0;
    for w in Workload::task_workloads() {
        // sample every 7th pair to keep runtime modest
        for e in suite().equiv_for(w).iter().step_by(7) {
            let q1 = squ_parser::parse_query(&e.sql1).expect("pairs parse");
            let q2 = squ_parser::parse_query(&e.sql2).expect("pairs parse");
            let schema = schema_for(w, &e.schema_name);
            let witnesses = witness_batch(&schema, 0xF2E54 ^ checked as u64);
            match differential_verdict(&q1, &q2, &witnesses) {
                Verdict::AgreedEverywhere => {
                    // a non-equivalent pair may coincidentally agree on a
                    // fresh witness; an equivalent pair must always agree
                    if e.equivalent {
                        confirmed += 1;
                    }
                }
                Verdict::Differed => {
                    assert!(
                        !e.equivalent,
                        "{} labeled equivalent but differed: {} vs {}",
                        e.query_id, e.sql1, e.sql2
                    );
                    confirmed += 1;
                }
                Verdict::Failed => {} // resource limits on fresh witnesses are tolerated
            }
            checked += 1;
        }
    }
    assert!(checked > 50, "too few pairs sampled: {checked}");
    assert!(
        confirmed as f64 >= checked as f64 * 0.6,
        "only {confirmed}/{checked} labels confirmed on fresh witnesses"
    );
}

/// Equivalent pairs must execute successfully on the builder's witnesses
/// (no pair is labeled from failed executions).
#[test]
fn equiv_pairs_execute() {
    for w in Workload::task_workloads() {
        for e in suite().equiv_for(w).iter().step_by(11) {
            let q1 = squ_parser::parse_query(&e.sql1).unwrap();
            let schema = schema_for(w, &e.schema_name);
            let db = squ_engine::witness_database(&schema, 424242, 4, 8);
            // small witness: execution must at worst hit the row budget,
            // never crash
            match execute_query(&q1, &db) {
                Ok(_) | Err(squ_engine::ExecError::ResourceLimit) => {}
                Err(other) => panic!("{}: {other}", e.query_id),
            }
        }
    }
}

/// Perf labels follow the threshold; the class split is non-degenerate.
#[test]
fn perf_labels_consistent() {
    let perf = suite().perf();
    assert_eq!(perf.len(), 285);
    let costly = perf.iter().filter(|e| e.is_costly).count();
    assert!(costly > 85 && costly < 230, "degenerate split {costly}/285");
    for e in perf {
        assert_eq!(e.is_costly, e.elapsed_ms > squ_tasks::COST_THRESHOLD_MS);
    }
}

/// Explanation examples carry non-trivial references and facts, and the
/// rubric accepts each reference as (near-)complete.
#[test]
fn explain_references_satisfy_rubric_mostly() {
    let mut total = 0.0;
    for e in suite().explain() {
        // the generated reference text is produced by the same template
        // vocabulary the rubric checks, so it should score highly
        let s = squ_eval::score_explanation(&e.reference, &e.facts);
        total += s.score;
    }
    let avg = total / suite().explain().len() as f64;
    assert!(avg > 0.9, "reference descriptions only score {avg:.2}");
}
