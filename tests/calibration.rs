//! Calibration regression net: the *measured* end-to-end metrics for every
//! (model, task, dataset) cell must stay within a fixed band of the
//! paper's published values. This is the widest guard in the repository:
//! a regression anywhere in the stack (generation, injection, simulation,
//! prompting, extraction, metrics) moves these numbers.
//!
//! The band is ±0.12 F1 — tight enough to catch real drift, loose enough
//! for the differences that are expected by design (regenerated datasets,
//! convention notes in EXPERIMENTS.md).

use squ::pipeline::*;
use squ::{Suite, PAPER_SEED};
use squ_eval::BinaryCounts;
use squ_llm::{ModelId, SimulatedModel};
use squ_workload::Workload;
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

const TOLERANCE: f64 = 0.12;

fn paper_f1(p: f64, r: f64) -> f64 {
    2.0 * p * r / (p + r)
}

fn check(task: &str, m: ModelId, w: &str, measured: f64, paper: f64, failures: &mut Vec<String>) {
    if (measured - paper).abs() > TOLERANCE {
        failures.push(format!(
            "{task}/{m}/{w}: measured F1 {measured:.2} vs paper {paper:.2}"
        ));
    }
}

/// Table 3 (binary): every cell within the band.
#[test]
fn syntax_error_f1_within_band() {
    use squ_llm::profiles::syntax_error_target;
    let mut failures = Vec::new();
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let outcomes = run_syntax(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().syntax_for(w),
            );
            let c = BinaryCounts::from_pairs(
                outcomes.iter().map(|o| (o.example.has_error, o.said_error)),
            );
            let t = syntax_error_target(m, dataset_id(w));
            check(
                "syntax",
                m,
                w.name(),
                c.f1(),
                paper_f1(t.precision, t.recall),
                &mut failures,
            );
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Table 4 (binary): every cell within the band.
#[test]
fn miss_token_f1_within_band() {
    use squ_llm::profiles::miss_token_target;
    let mut failures = Vec::new();
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let outcomes = run_token(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().tokens_for(w),
            );
            let c = BinaryCounts::from_pairs(
                outcomes
                    .iter()
                    .map(|o| (o.example.has_missing, o.said_missing)),
            );
            let t = miss_token_target(m, dataset_id(w));
            check(
                "token",
                m,
                w.name(),
                c.f1(),
                paper_f1(t.precision, t.recall),
                &mut failures,
            );
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Table 6: every model within the band.
#[test]
fn perf_f1_within_band() {
    use squ_llm::profiles::perf_target;
    let mut failures = Vec::new();
    for m in ModelId::ALL {
        let outcomes = run_perf(&SimulatedModel::new(m), suite().perf());
        let c = BinaryCounts::from_pairs(
            outcomes
                .iter()
                .map(|o| (o.example.is_costly, o.said_costly)),
        );
        let t = perf_target(m);
        check(
            "perf",
            m,
            "SDSS",
            c.f1(),
            paper_f1(t.precision, t.recall),
            &mut failures,
        );
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Table 7 (binary): every cell within the band.
#[test]
fn equiv_f1_within_band() {
    use squ_llm::profiles::equiv_target;
    let mut failures = Vec::new();
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let outcomes = run_equiv(&SimulatedModel::new(m), dataset_id(w), suite().equiv_for(w));
            let c = BinaryCounts::from_pairs(
                outcomes
                    .iter()
                    .map(|o| (o.example.equivalent, o.said_equivalent)),
            );
            let t = equiv_target(m, dataset_id(w));
            check(
                "equiv",
                m,
                w.name(),
                c.f1(),
                paper_f1(t.precision, t.recall),
                &mut failures,
            );
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

/// Table 5: hit rates within ±0.12, and MAE ordering preserved per
/// dataset (GPT4 strictly best).
#[test]
fn location_hit_rate_within_band() {
    use squ_eval::LocationStats;
    use squ_llm::profiles::miss_token_loc_target;
    let mut failures = Vec::new();
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let outcomes = run_token(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().tokens_for(w),
            );
            let stats = LocationStats::from_pairs(outcomes.iter().filter_map(|o| {
                match (o.example.position, o.said_position) {
                    (Some(t), Some(p)) => Some((t, p)),
                    _ => None,
                }
            }));
            let (_, hr) = miss_token_loc_target(m, dataset_id(w));
            if (stats.hit_rate() - hr).abs() > TOLERANCE {
                failures.push(format!(
                    "loc/{m}/{}: measured HR {:.2} vs paper {hr:.2}",
                    w.name(),
                    stats.hit_rate()
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}
