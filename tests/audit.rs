//! End-to-end audit assertions: the default suite must carry zero
//! invariant violations — every ground-truth label it emits is provable by
//! the static analyzer — and the audit report must be byte-identical
//! whatever the worker-thread count.

use squ::{audit_suite, Suite, PAPER_SEED};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

#[test]
fn default_suite_audits_clean() {
    let report = audit_suite(suite(), 2);
    assert!(
        report.is_clean(),
        "{} violations, first: {:?}",
        report.violations.len(),
        report.violations.first()
    );
    // the audit covered every artifact class
    assert!(report.checked > 3000, "only {} checked", report.checked);
    // injected-error datasets guarantee diagnostic traffic: both parse
    // errors (token deletions) and each paper category (syntax errors)
    for code in [
        "SQU002", "SQU012", "SQU013", "SQU020", "SQU021", "SQU030", "SQU031",
    ] {
        assert!(
            report.rule_hits.get(code).copied().unwrap_or(0) > 0,
            "no {code} hits: {:?}",
            report.rule_hits
        );
    }
    // every hit code is registered
    for code in report.rule_hits.keys() {
        assert!(squ_lint::rule(code).is_some(), "unregistered {code}");
    }
}

#[test]
fn audit_report_is_job_count_invariant() {
    let a = audit_suite(suite(), 1);
    let b = audit_suite(suite(), 3);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn audit_flags_a_poisoned_label() {
    // flip one correct syntax example's label to "error": the task's
    // audit — the same check audit_suite fans out — must notice the
    // missing diagnostic
    use squ::tasks::{AuditCtx, SyntaxTask, Task};
    use squ::workload::Workload;
    let mut examples = suite().syntax_for(Workload::Sdss).to_vec();
    let ex = examples
        .iter_mut()
        .find(|e| !e.has_error)
        .expect("suite has correct samples");
    ex.has_error = true;
    ex.error_type = Some(squ_tasks::SyntaxErrorType::AggrAttr);
    ex.expected_span = Some((0, ex.sql.len()));
    let mut ctx = AuditCtx::new(Workload::Sdss);
    SyntaxTask.audit(Workload::Sdss, &examples, &mut ctx);
    assert!(
        ctx.violations
            .iter()
            .any(|v| v.invariant == "positive-expected-diagnostic"),
        "poisoned label not caught: {:?}",
        ctx.violations
    );
}
