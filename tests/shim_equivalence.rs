//! Golden shim-equivalence tests: every legacy `pipeline::run_*` /
//! `run_*_client` entry point must produce outcomes identical to the
//! generic [`squ::llm::run_task`] driver it now wraps — for all five
//! tasks, at the paper seed.
//!
//! Outcomes are compared through their `Debug` rendering, which covers
//! every field (example, response, extracted answers, review flag, call
//! record), so any drift between a shim and the trait-driven driver —
//! prompt construction, extraction gating, transport telemetry — fails
//! byte-for-byte.

use squ::llm::{run_task, run_task_direct, DirectClient, ModelId, SimulatedModel, Transport};
use squ::pipeline::{
    dataset_id, run_equiv, run_equiv_client, run_explain, run_perf, run_syntax, run_syntax_client,
    run_token,
};
use squ::tasks::{EquivTask, ExplainTask, PerfTask, SyntaxTask, TokenTask};
use squ::workload::Workload;
use squ::{Suite, PAPER_SEED};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

const MODEL: ModelId = ModelId::Gpt4;

#[test]
fn syntax_shim_matches_generic_driver() {
    for w in Workload::task_workloads() {
        let shim = run_syntax(
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().syntax_for(w),
        );
        let generic = run_task_direct(
            &SyntaxTask,
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().syntax_for(w),
        );
        assert_eq!(format!("{shim:?}"), format!("{generic:?}"), "{}", w.name());
    }
}

#[test]
fn token_shim_matches_generic_driver() {
    for w in Workload::task_workloads() {
        let shim = run_token(
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().tokens_for(w),
        );
        let generic = run_task_direct(
            &TokenTask,
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().tokens_for(w),
        );
        assert_eq!(format!("{shim:?}"), format!("{generic:?}"), "{}", w.name());
    }
}

#[test]
fn equiv_shim_matches_generic_driver() {
    for w in Workload::task_workloads() {
        let shim = run_equiv(
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().equiv_for(w),
        );
        let generic = run_task_direct(
            &EquivTask,
            &SimulatedModel::new(MODEL),
            dataset_id(w),
            suite().equiv_for(w),
        );
        assert_eq!(format!("{shim:?}"), format!("{generic:?}"), "{}", w.name());
    }
}

#[test]
fn perf_shim_matches_generic_driver() {
    let shim = run_perf(&SimulatedModel::new(MODEL), suite().perf());
    let generic = run_task_direct(
        &PerfTask,
        &SimulatedModel::new(MODEL),
        dataset_id(Workload::Sdss),
        suite().perf(),
    );
    assert_eq!(format!("{shim:?}"), format!("{generic:?}"));
}

#[test]
fn explain_shim_matches_generic_driver() {
    let shim = run_explain(&SimulatedModel::new(MODEL), suite().explain());
    let generic = run_task_direct(
        &ExplainTask,
        &SimulatedModel::new(MODEL),
        dataset_id(Workload::Spider),
        suite().explain(),
    );
    assert_eq!(format!("{shim:?}"), format!("{generic:?}"));
}

#[test]
fn client_shims_match_generic_driver_through_a_transport() {
    // The `_client` shims accept arbitrary transports; pin equivalence
    // through the fault-free Transport wrapper as well as DirectClient.
    let w = Workload::Sdss;
    let profile = squ::llm::FaultProfile::by_name("none").expect("none profile exists");
    let shim = run_syntax_client(
        &Transport::new(SimulatedModel::new(MODEL), profile, 0),
        dataset_id(w),
        suite().syntax_for(w),
    );
    let generic = run_task(
        &SyntaxTask,
        &Transport::new(SimulatedModel::new(MODEL), profile, 0),
        dataset_id(w),
        suite().syntax_for(w),
    );
    assert_eq!(format!("{shim:?}"), format!("{generic:?}"));

    let model = SimulatedModel::new(MODEL);
    let shim = run_equiv_client(&DirectClient(&model), dataset_id(w), suite().equiv_for(w));
    let generic = run_task(
        &EquivTask,
        &DirectClient(&model),
        dataset_id(w),
        suite().equiv_for(w),
    );
    assert_eq!(format!("{shim:?}"), format!("{generic:?}"));
}
