//! Parallel suite construction must be a pure optimization: the suite
//! built on N worker threads is byte-identical to the sequential build.
//!
//! The comparison is end-to-end through [`squ::export_suite`]: every
//! JSONL dataset file and the manifest are compared byte-for-byte, so any
//! scheduling-dependent reordering or content drift anywhere in the
//! pipeline fails the test.

use squ::{export_suite, Suite, PAPER_SEED};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// All exported files as `relative name -> bytes`.
fn export_to_bytes(suite: &Suite, dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let manifest = export_suite(suite, dir).expect("export suite");
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read export dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read exported file"));
    }
    assert!(
        files.len() > manifest.files.len(),
        "expected dataset files plus manifest, got {}",
        files.len()
    );
    files
}

#[test]
fn parallel_build_is_byte_identical_to_sequential() {
    let sequential = Suite::new_with_jobs(PAPER_SEED, 1);
    let parallel = Suite::new_with_jobs(PAPER_SEED, 8);

    let dir_seq = Path::new("target/test-determinism/jobs1");
    let dir_par = Path::new("target/test-determinism/jobs8");
    for d in [dir_seq, dir_par] {
        if d.exists() {
            fs::remove_dir_all(d).expect("clean old export");
        }
        fs::create_dir_all(d).expect("create export dir");
    }

    let files_seq = export_to_bytes(&sequential, dir_seq);
    let files_par = export_to_bytes(&parallel, dir_par);

    let names_seq: Vec<&String> = files_seq.keys().collect();
    let names_par: Vec<&String> = files_par.keys().collect();
    assert_eq!(names_seq, names_par, "exported file sets differ");

    for (name, bytes_seq) in &files_seq {
        let bytes_par = &files_par[name];
        assert_eq!(
            bytes_seq, bytes_par,
            "{name} differs between jobs=1 and jobs=8"
        );
    }
}

#[test]
fn default_build_matches_explicit_jobs() {
    // Suite::new delegates to new_with_jobs(available_jobs); spot-check a
    // cheap cross-section rather than re-exporting everything.
    let a = Suite::new(PAPER_SEED);
    let b = Suite::new_with_jobs(PAPER_SEED, 3);
    assert_eq!(a.sdss.queries.len(), b.sdss.queries.len());
    assert_eq!(a.perf().len(), b.perf().len());
    for w in squ::workload::Workload::task_workloads() {
        let (ea_all, eb_all) = (a.equiv_for(w), b.equiv_for(w));
        assert_eq!(ea_all.len(), eb_all.len());
        for (ea, eb) in ea_all.iter().zip(eb_all.iter()) {
            assert_eq!(ea.query_id, eb.query_id);
            assert_eq!(ea.sql2, eb.sql2);
            assert_eq!(ea.equivalent, eb.equivalent);
        }
    }
}
