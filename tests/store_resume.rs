//! Artifact-store resume semantics, end to end through
//! [`squ::Suite::load_or_build`]:
//!
//! * a cold build populates the store; a warm build loads every stage and
//!   produces a byte-identical suite (verified through the JSONL export);
//! * corrupting a cached entry's payload on disk is detected by the
//!   payload hash, demoted to a miss, and the stage is rebuilt — again
//!   byte-identically.

use squ::{export_suite, Store, Suite, PAPER_SEED};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn export_to_bytes(suite: &Suite, dir: &Path) -> BTreeMap<String, Vec<u8>> {
    if dir.exists() {
        fs::remove_dir_all(dir).expect("clean old export");
    }
    fs::create_dir_all(dir).expect("create export dir");
    export_suite(suite, dir).expect("export suite");
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read export dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("read exported file"));
    }
    files
}

fn fresh_store_root(tag: &str) -> PathBuf {
    let root = PathBuf::from(format!("target/test-store-resume/{tag}"));
    fs::remove_dir_all(&root).ok();
    root
}

#[test]
fn warm_resume_is_all_hits_and_byte_identical() {
    let root = fresh_store_root("warm");

    let mut cold = Store::open(&root);
    let built = Suite::load_or_build(PAPER_SEED, 2, &mut cold);
    assert_eq!(
        cold.stats().values().map(|s| s.hits).sum::<usize>(),
        0,
        "cold build must not hit: {:?}",
        cold.stats()
    );
    assert_eq!(cold.stats()["workload"].misses, 4);
    assert_eq!(cold.stats()["dataset"].misses, 14);

    let mut warm = Store::open(&root);
    let resumed = Suite::load_or_build(PAPER_SEED, 2, &mut warm);
    assert_eq!(
        warm.total_misses(),
        0,
        "warm build missed: {:?}",
        warm.stats()
    );
    assert_eq!(warm.stats()["workload"].hits, 4);
    assert_eq!(warm.stats()["dataset"].hits, 14);

    let a = export_to_bytes(&built, Path::new("target/test-store-resume/export-cold"));
    let b = export_to_bytes(&resumed, Path::new("target/test-store-resume/export-warm"));
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "exported file sets differ"
    );
    for (name, bytes) in &a {
        assert_eq!(
            bytes, &b[name],
            "{name} differs between cold and warm build"
        );
    }

    fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupted_entry_is_detected_and_rebuilt() {
    let root = fresh_store_root("corrupt");

    let mut cold = Store::open(&root);
    let built = Suite::load_or_build(PAPER_SEED, 2, &mut cold);

    // Flip payload bytes in one cached dataset entry, leaving the header
    // (and its recorded hash) intact.
    let dataset_dir = root.join("dataset");
    let victim = fs::read_dir(&dataset_dir)
        .expect("store has a dataset stage")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("equiv_sdss-"))
        })
        .expect("equiv_sdss entry cached");
    let text = fs::read_to_string(&victim).expect("read cached entry");
    let mangled = text.replacen("\"equivalent\":true", "\"equivalent\":niet", 1);
    assert_ne!(text, mangled, "corruption did not apply");
    fs::write(&victim, mangled).expect("write corrupted entry");

    let mut warm = Store::open(&root);
    let resumed = Suite::load_or_build(PAPER_SEED, 2, &mut warm);
    let stats = warm.stats()["dataset"];
    assert_eq!(
        (stats.hits, stats.misses),
        (13, 1),
        "hash mismatch must demote exactly the corrupted entry to a miss"
    );
    assert_eq!(warm.stats()["workload"].hits, 4);

    // The rebuilt stage replaces the corrupted bytes and matches the
    // original build exactly.
    let a = export_to_bytes(&built, Path::new("target/test-store-resume/export-orig"));
    let b = export_to_bytes(
        &resumed,
        Path::new("target/test-store-resume/export-rebuilt"),
    );
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "{name} differs after corruption rebuild");
    }
    let mut third = Store::open(&root);
    Suite::load_or_build(PAPER_SEED, 2, &mut third);
    assert_eq!(
        third.total_misses(),
        0,
        "rebuild must re-persist the corrupted entry: {:?}",
        third.stats()
    );

    fs::remove_dir_all(&root).ok();
}
