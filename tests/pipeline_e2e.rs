//! End-to-end pipeline checks: extraction robustness, artifact
//! completeness, and the prompt-tuning loop.

use squ::pipeline::*;
use squ::{run_experiment, ExperimentId, Suite, PAPER_SEED};
use squ_eval::BinaryCounts;
use squ_llm::{ModelId, SimulatedModel};
use squ_workload::Workload;
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

/// The extractor parses (almost) every simulator response — the automated
/// fraction of the paper's §3.4 output handling.
#[test]
fn extraction_review_rate_is_low() {
    let mut total = 0usize;
    let mut review = 0usize;
    for m in ModelId::ALL {
        for w in Workload::task_workloads() {
            for o in run_syntax(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().syntax_for(w),
            ) {
                total += 1;
                review += o.needs_review as usize;
            }
            for o in run_token(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().tokens_for(w),
            ) {
                total += 1;
                review += o.needs_review as usize;
            }
            for o in run_equiv(&SimulatedModel::new(m), dataset_id(w), suite().equiv_for(w)) {
                total += 1;
                review += o.needs_review as usize;
            }
        }
        for o in run_perf(&SimulatedModel::new(m), suite().perf()) {
            total += 1;
            review += o.needs_review as usize;
        }
    }
    let rate = review as f64 / total as f64;
    assert!(
        rate < 0.01,
        "{review}/{total} responses needed manual review ({rate:.3})"
    );
}

/// Every positive answer on the token task comes with a type and a
/// position the downstream metrics can consume.
#[test]
fn token_responses_carry_type_and_position() {
    let outcomes = run_token(
        &SimulatedModel::new(ModelId::Gpt4),
        dataset_id(Workload::Sdss),
        suite().tokens_for(Workload::Sdss),
    );
    for o in outcomes.iter().filter(|o| o.said_missing) {
        assert!(
            o.said_type.is_some(),
            "{}: no type extracted",
            o.example.query_id
        );
        assert!(
            o.said_position.is_some(),
            "{}: no position extracted",
            o.example.query_id
        );
    }
}

/// All twenty artifacts build, are titled, and are non-empty; tabular ones
/// carry CSV.
#[test]
fn all_artifacts_complete() {
    for id in ExperimentId::ALL {
        let a = run_experiment(suite(), id);
        assert_eq!(a.id, id.slug());
        assert!(!a.title.is_empty());
        assert!(a.body.len() > 50, "{}: body too small", a.id);
        if a.id.starts_with("table") {
            let csv = a
                .csv
                .as_deref()
                .unwrap_or_else(|| panic!("{}: no csv", a.id));
            assert!(csv.lines().count() >= 3, "{}: csv too small", a.id);
        }
    }
}

/// The prompt-tuning harness selects the published prompt when scored by
/// real mock-trial accuracy on a labeled subset (§3.4).
#[test]
fn prompt_tuning_runs_real_mock_trials() {
    use squ_llm::{prompts, Task};
    let examples: Vec<_> = suite()
        .syntax_for(Workload::Sdss)
        .iter()
        .take(60)
        .cloned()
        .collect();
    let model = SimulatedModel::new(ModelId::Gpt35);
    let tuned = prompts::tune_prompt(Task::Syntax, |instruction| {
        // mock experiment: run the candidate prompt over the subset and
        // measure binary accuracy
        let outcomes = {
            // re-render requests with the candidate instruction
            examples
                .iter()
                .map(|e| {
                    let req = squ_llm::Request {
                        task: Task::Syntax,
                        dataset: squ_llm::DatasetId::Sdss,
                        example_id: format!("tune-{}", e.query_id),
                        prompt: prompts::render_prompt(instruction, &e.sql),
                        truth: squ_llm::GroundTruth::Syntax {
                            has_error: e.has_error,
                            error_type: e.error_type.map(|t| t.label().to_string()),
                        },
                        props: e.props.clone(),
                    };
                    let resp = squ_llm::LanguageModel::respond(&model, &req);
                    let said = squ_llm::extract_binary(&resp).value().unwrap_or(false);
                    (e.has_error, said)
                })
                .collect::<Vec<_>>()
        };
        BinaryCounts::from_pairs(outcomes).accuracy()
    });
    assert!(tuned.score > 0.6, "winner scored only {:.2}", tuned.score);
    assert_eq!(tuned.trials.len(), 3);
}

/// A different master seed produces a different but equally healthy suite.
#[test]
fn alternate_seed_suite_is_healthy() {
    let alt = Suite::new(7);
    assert_eq!(alt.sdss.len(), 285);
    assert_ne!(
        alt.sdss.queries[0].sql,
        suite().sdss.queries[0].sql,
        "different seeds should sample different queries"
    );
    // GPT4 still wins on the alternate seed
    let g4 = {
        let o = run_syntax(
            &SimulatedModel::new(ModelId::Gpt4),
            dataset_id(Workload::Sdss),
            alt.syntax_for(Workload::Sdss),
        );
        BinaryCounts::from_pairs(o.iter().map(|x| (x.example.has_error, x.said_error))).f1()
    };
    let gem = {
        let o = run_syntax(
            &SimulatedModel::new(ModelId::Gemini),
            dataset_id(Workload::Sdss),
            alt.syntax_for(Workload::Sdss),
        );
        BinaryCounts::from_pairs(o.iter().map(|x| (x.example.has_error, x.said_error))).f1()
    };
    assert!(g4 > gem, "seed 7: GPT4 {g4:.2} vs Gemini {gem:.2}");
}
