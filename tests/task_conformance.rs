//! Registry-driven conformance suite: properties every task family must
//! satisfy, checked generically through the [`squ::DynTask`] erasure so a
//! newly registered task is covered with zero test changes.
//!
//! 1. `audit` accepts its own `build` output — a task that convicts its
//!    own labels has a broken builder or a broken auditor;
//! 2. `TaskId` metadata survives the `DynTask` type erasure (`task(id)`
//!    round-trips, names are unique and stable);
//! 3. `encode_set`/`decode_set` round-trip through the artifact-store
//!    encoding with length and export lines preserved.

use squ::registry::task;
use squ::tasks::{AuditCtx, TaskId};
use squ::workload::{build, Workload};
use squ::{registry, DynTask};
use std::collections::BTreeMap;
use std::sync::OnceLock;

const SEED: u64 = 424242; // deliberately not PAPER_SEED: conformance must not depend on the blessed seed

/// Workload datasets, built once for the whole test binary.
fn dataset(w: Workload) -> &'static squ::workload::Dataset {
    static DATASETS: OnceLock<BTreeMap<&'static str, squ::workload::Dataset>> = OnceLock::new();
    DATASETS
        .get_or_init(|| {
            [
                Workload::Sdss,
                Workload::SqlShare,
                Workload::JoinOrder,
                Workload::Spider,
            ]
            .into_iter()
            .map(|w| (w.name(), build(w, SEED)))
            .collect()
        })
        .get(w.name())
        .expect("all four workloads are prebuilt")
}

#[test]
fn every_task_audit_accepts_its_own_build() {
    for t in registry() {
        for w in t.id().workloads() {
            let set = t.build(dataset(*w), SEED);
            assert!(
                t.set_len(&set) > 0,
                "{}/{} built an empty set",
                t.id().name(),
                w.name()
            );
            let mut ctx = AuditCtx::new(*w);
            t.audit(*w, &set, &mut ctx);
            assert!(
                ctx.violations.is_empty(),
                "{}/{}: task convicts its own labels, first: {:?}",
                t.id().name(),
                w.name(),
                ctx.violations.first()
            );
        }
    }
}

#[test]
fn task_id_metadata_round_trips_through_type_erasure() {
    // the registry enumerates exactly TaskId::ALL, in order
    let ids: Vec<TaskId> = registry().iter().map(|t| t.id()).collect();
    assert_eq!(ids, TaskId::ALL.to_vec());

    for id in TaskId::ALL {
        let t: &dyn DynTask = task(id);
        // task(id) resolves to the task claiming that id
        assert_eq!(t.id(), id);
        // the static metadata visible through the erasure matches the
        // id's own
        assert_eq!(t.id().name(), id.name());
        assert_eq!(t.id().workloads(), id.workloads());
        assert!(t.version() >= 1, "{}: version 0 is reserved", id.name());
        assert!(
            !t.id().workloads().is_empty(),
            "{}: a task with no workloads can never build",
            id.name()
        );
    }

    // names are unique — they key store stages and export files
    let mut names: Vec<&str> = TaskId::ALL.iter().map(|id| id.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), TaskId::ALL.len(), "duplicate task names");
}

#[test]
fn encode_decode_round_trips_every_set() {
    for t in registry() {
        let w = t.id().workloads()[0];
        let set = t.build(dataset(w), SEED);
        let json = t.encode_set(&set);
        let back = t
            .decode_set(&json)
            .unwrap_or_else(|e| panic!("{}: decode of own encoding failed: {e}", t.id().name()));
        assert_eq!(t.set_len(&set), t.set_len(&back), "{}", t.id().name());
        // the decoded set is example-for-example identical as far as any
        // driver can see: same export lines, same re-encoding
        assert_eq!(
            t.export_lines(&set),
            t.export_lines(&back),
            "{}",
            t.id().name()
        );
        assert_eq!(json, t.encode_set(&back), "{}", t.id().name());
        // and a decoded set still satisfies the task's own audit
        let mut ctx = AuditCtx::new(w);
        t.audit(w, &back, &mut ctx);
        assert!(ctx.violations.is_empty(), "{}", t.id().name());
    }
}

#[test]
fn decode_rejects_malformed_payloads_but_accepts_the_empty_set() {
    for t in registry() {
        assert!(
            t.decode_set("not json").is_err(),
            "{}: junk must not decode",
            t.id().name()
        );
        // an empty set is legal JSON for every task; it must decode to a
        // zero-length set rather than error
        let empty = t.decode_set("[]").expect("empty array decodes");
        assert_eq!(t.set_len(&empty), 0);
    }
}
