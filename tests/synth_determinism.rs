//! Sharded, parallel workload synthesis must be a pure optimization:
//! the synthesis report built on any `(jobs, shards)` combination is
//! byte-identical to the sequential single-shard build, and a stream
//! resumed from a cursor reproduces the exact suffix the uninterrupted
//! stream would have produced.

use squ::workload::{synth_profile, QueryStream, StreamCursor, Workload};
use squ::{run_synth, SynthConfig};

fn cfg(n: u64, shards: usize, jobs: usize, target_json: Option<String>) -> SynthConfig {
    SynthConfig {
        base: Workload::Sdss,
        seed: squ::PAPER_SEED,
        n,
        shards,
        jobs,
        target_json,
    }
}

#[test]
fn synthesis_is_byte_identical_across_jobs_and_shards() {
    let n = 10_000;
    let baseline = run_synth(&cfg(n, 1, 1, None), None)
        .expect("baseline synthesis")
        .to_json();
    for jobs in [1usize, 2, 4] {
        for shards in [1usize, 3, 8] {
            if (jobs, shards) == (1, 1) {
                continue;
            }
            let got = run_synth(&cfg(n, shards, jobs, None), None)
                .expect("sharded synthesis")
                .to_json();
            assert_eq!(
                got, baseline,
                "synth report drifted at jobs={jobs} shards={shards}"
            );
        }
    }
}

#[test]
fn targeted_synthesis_is_byte_identical_across_jobs_and_shards() {
    // A targeted run exercises the full round loop: calibration, steering
    // probabilities, profile annealing, and multi-round budget ramping.
    let target = r#"{"tolerance": 0.1, "axes": [{"property": "nestedness",
        "edges": [1.0], "weights": [0.55, 0.45]}]}"#;
    let n = 4_000;
    let baseline = run_synth(&cfg(n, 1, 1, Some(target.into())), None)
        .expect("baseline targeted synthesis")
        .to_json();
    for (jobs, shards) in [(2usize, 3usize), (4, 8), (1, 5)] {
        let got = run_synth(&cfg(n, shards, jobs, Some(target.into())), None)
            .expect("sharded targeted synthesis")
            .to_json();
        assert_eq!(
            got, baseline,
            "targeted synth report drifted at jobs={jobs} shards={shards}"
        );
    }
}

#[test]
fn cursor_resume_reproduces_the_exact_suffix() {
    let stream = QueryStream::with_profile(
        Workload::Sdss,
        synth_profile(Workload::Sdss),
        squ::PAPER_SEED,
    );
    let mut iter = stream.iter();
    let mut prefix = Vec::new();
    for _ in 0..500 {
        prefix.push(iter.next().expect("stream is infinite"));
    }
    let cursor = iter.cursor();
    assert_eq!(
        cursor,
        StreamCursor {
            seed: squ::PAPER_SEED,
            index: 500
        }
    );
    // continue the original iterator...
    let suffix: Vec<_> = (0..500)
        .map(|_| iter.next().expect("stream is infinite"))
        .collect();
    // ...and independently resume a fresh iterator from the cursor
    let resumed: Vec<_> = stream.iter_from(cursor).take(500).collect();
    for (i, (a, b)) in suffix.iter().zip(&resumed).enumerate() {
        assert_eq!(a.id, b.id, "id diverged at suffix offset {i}");
        assert_eq!(a.sql, b.sql, "sql diverged at suffix offset {i}");
        assert_eq!(
            a.elapsed_ms, b.elapsed_ms,
            "elapsed diverged at suffix offset {i}"
        );
    }
    // the resumed items never depend on the prefix having been generated
    let direct = stream.get(750);
    assert_eq!(direct.sql, resumed[250].sql);
    assert_eq!(direct.id, resumed[250].id);
}
