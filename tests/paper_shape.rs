//! End-to-end shape assertions: the paper's headline findings must emerge
//! from the full pipeline (datasets → prompts → models → extraction →
//! metrics), not from hard-coded numbers.

use squ::pipeline::*;
use squ::{Suite, PAPER_SEED};
use squ_eval::{BinaryCounts, Cell, PropertySlice, SubtypeBreakdown};
use squ_llm::{ModelId, SimulatedModel};
use squ_workload::Workload;
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

fn syntax_counts(m: ModelId, w: Workload) -> BinaryCounts {
    let outcomes = run_syntax(
        &SimulatedModel::new(m),
        dataset_id(w),
        suite().syntax_for(w),
    );
    BinaryCounts::from_pairs(outcomes.iter().map(|o| (o.example.has_error, o.said_error)))
}

fn token_counts(m: ModelId, w: Workload) -> BinaryCounts {
    let outcomes = run_token(
        &SimulatedModel::new(m),
        dataset_id(w),
        suite().tokens_for(w),
    );
    BinaryCounts::from_pairs(
        outcomes
            .iter()
            .map(|o| (o.example.has_missing, o.said_missing)),
    )
}

fn equiv_counts(m: ModelId, w: Workload) -> BinaryCounts {
    let outcomes = run_equiv(&SimulatedModel::new(m), dataset_id(w), suite().equiv_for(w));
    BinaryCounts::from_pairs(
        outcomes
            .iter()
            .map(|o| (o.example.equivalent, o.said_equivalent)),
    )
}

fn perf_counts(m: ModelId) -> BinaryCounts {
    let outcomes = run_perf(&SimulatedModel::new(m), suite().perf());
    BinaryCounts::from_pairs(
        outcomes
            .iter()
            .map(|o| (o.example.is_costly, o.said_costly)),
    )
}

/// §4 headline: "GPT4 consistently outperforms other models".
#[test]
fn gpt4_wins_every_task_and_dataset() {
    for w in Workload::task_workloads() {
        let g4_syn = syntax_counts(ModelId::Gpt4, w).f1();
        let g4_tok = token_counts(ModelId::Gpt4, w).f1();
        let g4_eq = equiv_counts(ModelId::Gpt4, w).f1();
        // "consistently outperforms … with no clear runner-up": GPT4 is
        // best or within noise of the best (the paper's own Table 3 has
        // MistralAI within 0.01 F1 of GPT4 on SQLShare)
        for m in [
            ModelId::Gpt35,
            ModelId::Llama3,
            ModelId::MistralAi,
            ModelId::Gemini,
        ] {
            assert!(
                g4_syn >= syntax_counts(m, w).f1() - 0.05,
                "{m} clearly beats GPT4 on syntax_error/{}",
                w.name()
            );
            assert!(
                g4_tok >= token_counts(m, w).f1() - 0.05,
                "{m} clearly beats GPT4 on miss_token/{}",
                w.name()
            );
            assert!(
                g4_eq >= equiv_counts(m, w).f1() - 0.05,
                "{m} clearly beats GPT4 on query_equiv/{}",
                w.name()
            );
        }
    }
    let g4_perf = perf_counts(ModelId::Gpt4).f1();
    for m in [
        ModelId::Gpt35,
        ModelId::Llama3,
        ModelId::MistralAi,
        ModelId::Gemini,
    ] {
        assert!(g4_perf > perf_counts(m).f1(), "{m} beats GPT4 on perf");
    }
}

/// §4.1: recall below precision on syntax-error detection (conservative
/// bias), most pronounced for Llama3 and Gemini.
#[test]
fn syntax_detection_is_conservative() {
    for w in Workload::task_workloads() {
        // MistralAI is the paper's own exception (Table 3: JOB recall 0.94
        // vs precision 0.85), so it is excluded here
        for m in [
            ModelId::Gpt4,
            ModelId::Gpt35,
            ModelId::Llama3,
            ModelId::Gemini,
        ] {
            let c = syntax_counts(m, w);
            assert!(
                c.recall() <= c.precision() + 0.12,
                "{m}/{}: recall {:.2} >> precision {:.2}",
                w.name(),
                c.recall(),
                c.precision()
            );
        }
        // the imbalance is extreme for Gemini
        let g = syntax_counts(ModelId::Gemini, w);
        assert!(
            g.precision() - g.recall() > 0.15,
            "Gemini should be strongly conservative on {}",
            w.name()
        );
    }
}

/// §4.3/§4.4: positive bias — recall above precision for perf and equiv.
#[test]
fn perf_and_equiv_are_recall_biased() {
    for m in ModelId::ALL {
        let p = perf_counts(m);
        assert!(
            p.recall() >= p.precision() - 0.02,
            "{m} perf: recall {:.2} < precision {:.2}",
            p.recall(),
            p.precision()
        );
    }
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let c = equiv_counts(m, w);
            assert!(
                c.recall() >= c.precision() - 0.08,
                "{m}/{} equiv not recall-biased",
                w.name()
            );
        }
    }
}

/// §4.2: miss_token is easier than syntax_error for every model.
#[test]
fn miss_token_easier_than_syntax_error() {
    for w in Workload::task_workloads() {
        for m in ModelId::ALL {
            let tok = token_counts(m, w).f1();
            let syn = syntax_counts(m, w).f1();
            assert!(
                tok >= syn - 0.05,
                "{m}/{}: miss_token F1 {tok:.2} << syntax F1 {syn:.2}",
                w.name()
            );
        }
    }
}

/// Figure 6: failed (FN) queries are longer than detected (TP) ones.
#[test]
fn fn_queries_are_longer_fig6() {
    for m in [ModelId::Llama3, ModelId::Gemini] {
        let outcomes = run_syntax(
            &SimulatedModel::new(m),
            dataset_id(Workload::Sdss),
            suite().syntax_for(Workload::Sdss),
        );
        let slice = PropertySlice::build(
            "word_count",
            outcomes.iter().map(|o| {
                (
                    o.example.has_error,
                    o.said_error,
                    o.example.props.word_count as f64,
                )
            }),
        );
        let tp = slice.cell(Cell::Tp);
        let fn_ = slice.cell(Cell::Fn);
        assert!(tp.count >= 20 && fn_.count >= 20, "{m}: cells too small");
        assert!(
            fn_.average > tp.average,
            "{m}: FN avg {:.1} not > TP avg {:.1}",
            fn_.average,
            tp.average
        );
    }
}

/// Figure 7: type-mismatch errors hardest in SDSS; ambiguous aliases
/// hardest in SQLShare.
#[test]
fn subtype_difficulty_matches_fig7() {
    // aggregate over all five models for stable estimates
    let mut sdss_pairs = Vec::new();
    let mut share_pairs = Vec::new();
    for m in ModelId::ALL {
        for (w, sink) in [
            (Workload::Sdss, &mut sdss_pairs),
            (Workload::SqlShare, &mut share_pairs),
        ] {
            let outcomes = run_syntax(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().syntax_for(w),
            );
            for o in outcomes {
                if let Some(t) = o.example.error_type {
                    sink.push((t.label().to_string(), o.said_error));
                }
            }
        }
    }
    let sdss = SubtypeBreakdown::build(sdss_pairs.iter().map(|(l, d)| (l.as_str(), *d)));
    let hardest = sdss.hardest().unwrap();
    assert!(
        ["nested-mismatch", "condition-mismatch"].contains(&hardest.subtype.as_str()),
        "SDSS hardest was {}",
        hardest.subtype
    );
    let share = SubtypeBreakdown::build(share_pairs.iter().map(|(l, d)| (l.as_str(), *d)));
    let amb = share.get("alias-ambiguous").unwrap();
    let easy = share.get("aggr-attr").unwrap();
    assert!(
        amb.fn_rate > easy.fn_rate,
        "SQLShare: ambiguous {:.2} not harder than aggr-attr {:.2}",
        amb.fn_rate,
        easy.fn_rate
    );
}

/// Figure 9: keyword deletions hardest in SDSS; alias/table in SQLShare.
#[test]
fn token_subtype_difficulty_matches_fig9() {
    let collect = |w: Workload| {
        let mut pairs = Vec::new();
        for m in ModelId::ALL {
            let outcomes = run_token(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().tokens_for(w),
            );
            for o in outcomes {
                if let Some(t) = o.example.token_type {
                    pairs.push((t.label().to_string(), o.said_missing));
                }
            }
        }
        SubtypeBreakdown::build(
            pairs
                .iter()
                .map(|(l, d)| (l.as_str(), *d))
                .collect::<Vec<_>>(),
        )
    };
    let sdss = collect(Workload::Sdss);
    assert_eq!(sdss.hardest().unwrap().subtype, "keyword");
    let share = collect(Workload::SqlShare);
    let top2: Vec<&str> = share
        .rows
        .iter()
        .take(2)
        .map(|r| r.subtype.as_str())
        .collect();
    assert!(
        top2.contains(&"alias") || top2.contains(&"table"),
        "SQLShare top-2 hardest were {top2:?}"
    );
}

/// Table 5: GPT4 has the lowest MAE and the highest hit rate everywhere.
#[test]
fn gpt4_best_at_location() {
    use squ_eval::LocationStats;
    for w in Workload::task_workloads() {
        let stats = |m: ModelId| {
            let outcomes = run_token(
                &SimulatedModel::new(m),
                dataset_id(w),
                suite().tokens_for(w),
            );
            LocationStats::from_pairs(outcomes.iter().filter_map(|o| {
                match (o.example.position, o.said_position) {
                    (Some(t), Some(p)) => Some((t, p)),
                    _ => None,
                }
            }))
        };
        let g4 = stats(ModelId::Gpt4);
        for m in [
            ModelId::Gpt35,
            ModelId::Llama3,
            ModelId::MistralAi,
            ModelId::Gemini,
        ] {
            let s = stats(m);
            assert!(
                g4.mae() < s.mae() + 0.5,
                "{m}/{}: MAE {:.1} better than GPT4 {:.1}",
                w.name(),
                s.mae(),
                g4.mae()
            );
            assert!(
                g4.hit_rate() > s.hit_rate() - 0.05,
                "{m}/{}: HR beats GPT4",
                w.name()
            );
        }
    }
}

/// Figure 10: perf false positives are longer and wider than true
/// negatives (models equate length with cost).
#[test]
fn perf_fp_queries_are_longer_fig10() {
    let outcomes = run_perf(&SimulatedModel::new(ModelId::MistralAi), suite().perf());
    let slice = PropertySlice::build(
        "word_count",
        outcomes.iter().map(|o| {
            (
                o.example.is_costly,
                o.said_costly,
                o.example.props.word_count as f64,
            )
        }),
    );
    let fp = slice.cell(Cell::Fp);
    let tn = slice.cell(Cell::Tn);
    assert!(fp.count >= 10, "need FPs to compare, got {}", fp.count);
    assert!(
        fp.average > tn.average,
        "FP avg {:.1} not > TN avg {:.1}",
        fp.average,
        tn.average
    );
}

/// §4.4: equivalence false positives concentrate on modified-condition
/// transforms (value-change, logical-conditions).
#[test]
fn equiv_fp_concentrate_on_condition_edits() {
    let mut fp_by_transform: std::collections::HashMap<String, usize> = Default::default();
    let mut neg_by_transform: std::collections::HashMap<String, usize> = Default::default();
    for m in ModelId::ALL {
        for w in Workload::task_workloads() {
            let outcomes = run_equiv(&SimulatedModel::new(m), dataset_id(w), suite().equiv_for(w));
            for o in outcomes {
                if !o.example.equivalent {
                    *neg_by_transform
                        .entry(o.example.transform.clone())
                        .or_insert(0) += 1;
                    if o.said_equivalent {
                        *fp_by_transform
                            .entry(o.example.transform.clone())
                            .or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let rate = |t: &str| {
        let fp = *fp_by_transform.get(t).unwrap_or(&0) as f64;
        let n = *neg_by_transform.get(t).unwrap_or(&1) as f64;
        fp / n.max(1.0)
    };
    assert!(
        rate("value-change") > rate("projection-change"),
        "value-change FP rate {:.2} not > projection-change {:.2}",
        rate("value-change"),
        rate("projection-change")
    );
}

/// §4.5: explanation quality orders GPT4 first and Gemini last.
#[test]
fn explanation_rubric_orders_models() {
    let avg = |m: ModelId| {
        let outcomes = run_explain(&SimulatedModel::new(m), suite().explain());
        outcomes.iter().map(|o| o.rubric.score).sum::<f64>() / outcomes.len() as f64
    };
    let g4 = avg(ModelId::Gpt4);
    let gemini = avg(ModelId::Gemini);
    assert!(g4 > 0.8, "GPT4 rubric average too low: {g4:.2}");
    assert!(
        g4 > gemini + 0.1,
        "GPT4 {g4:.2} should clearly beat Gemini {gemini:.2}"
    );
    for m in [ModelId::Gpt35, ModelId::Llama3, ModelId::MistralAi] {
        let s = avg(m);
        assert!(
            s <= g4 && s >= gemini - 0.05,
            "{m} rubric {s:.2} out of band"
        );
    }
}

/// The whole pipeline is deterministic: artifacts are bit-identical run
/// over run.
#[test]
fn artifacts_deterministic() {
    let a = squ::run_experiment(suite(), squ::ExperimentId::Table6);
    let b = squ::run_experiment(suite(), squ::ExperimentId::Table6);
    assert_eq!(a.body, b.body);
}

/// Figure 8: miss_token failures (FN) exceed successes (TP) on all four
/// reported properties (GPT3.5, SQLShare).
#[test]
fn token_fn_larger_on_all_fig8_properties() {
    let outcomes = run_token(
        &SimulatedModel::new(ModelId::Gpt35),
        dataset_id(Workload::SqlShare),
        suite().tokens_for(Workload::SqlShare),
    );
    for prop in ["word_count", "predicate_count", "nestedness", "table_count"] {
        let slice = PropertySlice::build(
            prop,
            outcomes.iter().map(|o| {
                (
                    o.example.has_missing,
                    o.said_missing,
                    squ_workload::analysis::prop_value(&o.example.props, prop),
                )
            }),
        );
        let tp = slice.cell(Cell::Tp);
        let fn_ = slice.cell(Cell::Fn);
        assert!(fn_.count >= 5, "{prop}: FN cell too small ({})", fn_.count);
        assert!(
            fn_.average >= tp.average,
            "{prop}: FN avg {:.2} not >= TP avg {:.2}",
            fn_.average,
            tp.average
        );
    }
}

/// The composite miss_token prompt also asks for the missing *word*; when
/// GPT4 names the right type it usually names the right word too.
#[test]
fn word_guess_accuracy_tracks_type_accuracy() {
    let outcomes = run_token(
        &SimulatedModel::new(ModelId::Gpt4),
        dataset_id(Workload::Sdss),
        suite().tokens_for(Workload::Sdss),
    );
    let mut correct_type = 0usize;
    let mut correct_word = 0usize;
    for o in &outcomes {
        let (Some(truth_ty), Some(said_ty)) = (o.example.token_type, o.said_type.as_deref()) else {
            continue;
        };
        if truth_ty.label() != said_ty {
            continue;
        }
        correct_type += 1;
        if o.said_word.as_deref() == o.example.removed_text.as_deref() {
            correct_word += 1;
        }
    }
    assert!(correct_type > 50, "too few typed answers: {correct_type}");
    let rate = correct_word as f64 / correct_type as f64;
    assert!(rate > 0.7, "word guess only {rate:.2} given a correct type");
}
