//! Distribution-targeting regression: for each of the paper's four
//! structural property axes (and the engine's runtime buckets), a
//! seed-pinned targeting loop must converge — the accepted histogram
//! lands within the spec tolerance of the fixture target, and the
//! acceptance rate stays above a floor (the controller steers by
//! annealing the generation profile, not by rejecting almost everything).
//!
//! Fixture targets are deliberately *achievable*: each shifts roughly
//! 0.1–0.15 probability mass from the untargeted stream's achieved
//! fractions (measured once, seed-pinned) between two buckets.

use squ::workload::Workload;
use squ::{run_synth, SynthConfig, SynthReport};

/// Floor on the steering-round acceptance rate: targeting must not
/// degenerate into rejection sampling.
const ACCEPT_FLOOR: f64 = 0.2;

fn run_targeted(target: &str) -> SynthReport {
    let cfg = SynthConfig {
        base: Workload::Sdss,
        seed: squ::PAPER_SEED,
        n: 6_000,
        shards: 3,
        jobs: 2,
        target_json: Some(target.to_string()),
    };
    run_synth(&cfg, None).expect("targeted synthesis")
}

fn assert_converged(report: &SynthReport, axis: &str) {
    assert!(!report.exhausted, "{axis}: ran out of rounds");
    assert!(
        report.rounds >= 2,
        "{axis}: expected calibration plus steering, got {} round(s)",
        report.rounds
    );
    assert!(
        report.acceptance_rate >= ACCEPT_FLOOR,
        "{axis}: acceptance rate {:.3} fell below the {ACCEPT_FLOOR} floor",
        report.acceptance_rate
    );
    assert!(report.converged, "{axis}: did not converge");
    let spec = report.target.as_ref().expect("targeted run has a spec");
    for ax in &report.axes {
        assert!(
            ax.deviation <= spec.tolerance,
            "{axis}: axis {} deviation {:.4} exceeds tolerance {:.4}",
            ax.property,
            ax.deviation,
            spec.tolerance
        );
        // target and achieved are distributions over the same buckets
        assert!((ax.target.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((ax.achieved.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}

// Untargeted achieved fractions at PAPER_SEED (probe, 20k queries):
// table_count     split at 3:   [0.45, 0.55]
// join_count      split at 2:   [0.82, 0.18]
// predicate_count split at 6:   [0.62, 0.38]
// nestedness      split at 1:   [0.84, 0.16]

#[test]
fn table_count_targeting_converges() {
    let report = run_targeted(
        r#"{"tolerance": 0.08, "axes": [{"property": "table_count",
            "edges": [3.0], "weights": [0.35, 0.65]}]}"#,
    );
    assert_converged(&report, "table_count");
}

#[test]
fn join_count_targeting_converges() {
    let report = run_targeted(
        r#"{"tolerance": 0.08, "axes": [{"property": "join_count",
            "edges": [2.0], "weights": [0.7, 0.3]}]}"#,
    );
    assert_converged(&report, "join_count");
}

#[test]
fn predicate_count_targeting_converges() {
    let report = run_targeted(
        r#"{"tolerance": 0.08, "axes": [{"property": "predicate_count",
            "edges": [6.0], "weights": [0.5, 0.5]}]}"#,
    );
    assert_converged(&report, "predicate_count");
}

#[test]
fn nestedness_targeting_converges() {
    let report = run_targeted(
        r#"{"tolerance": 0.08, "axes": [{"property": "nestedness",
            "edges": [1.0], "weights": [0.7, 0.3]}]}"#,
    );
    assert_converged(&report, "nestedness");
}

#[test]
fn runtime_bucket_targeting_converges() {
    // engine-measured runtime buckets: untargeted split at 100ms is
    // roughly [0.38, 0.62]; ask for a modest shift toward fast queries
    let report = run_targeted(
        r#"{"tolerance": 0.08, "axes": [{"property": "runtime_ms",
            "edges": [100.0], "weights": [0.48, 0.52]}]}"#,
    );
    assert_converged(&report, "runtime_ms");
}

#[test]
fn multi_axis_targeting_converges() {
    let report = run_targeted(
        r#"{"tolerance": 0.1, "axes": [
            {"property": "nestedness", "edges": [1.0], "weights": [0.75, 0.25]},
            {"property": "join_count", "edges": [2.0], "weights": [0.75, 0.25]}]}"#,
    );
    assert!(!report.exhausted, "multi-axis: ran out of rounds");
    assert!(report.converged, "multi-axis: did not converge");
    assert_eq!(report.axes.len(), 2);
}
