//! Index-correctness test with the global index toggle force-disabled.
//!
//! This lives in its own integration binary on purpose: the toggle is a
//! process-global atomic, and `cargo test` runs each binary's tests on
//! shared threads — flipping the toggle next to other engine tests would
//! race with any test that asserts index-probe counters. One binary, one
//! test, one process: no interleaving.

use squ_engine::{
    execute_query, execute_query_interpreted, set_indexes_enabled, Database, Relation, Value,
};
use squ_parser::parse_query;

fn db() -> Database {
    let mut db = Database::new("toggle");
    let rows: Vec<Vec<Value>> = (0..64)
        .map(|i| {
            vec![
                Value::num(f64::from(i)),
                Value::num(f64::from(i % 8)),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ]
        })
        .collect();
    db.insert_table(
        "events",
        Relation::new(vec!["id".into(), "bucket".into(), "parity".into()], rows),
    );
    db
}

#[test]
fn disabling_indexes_changes_counters_but_never_results() {
    let db = db();
    let sqls = [
        "SELECT id FROM events WHERE bucket = 3",
        "SELECT parity, COUNT(*) FROM events WHERE bucket = 5 GROUP BY parity",
        "SELECT id FROM events WHERE 6 = bucket ORDER BY id",
    ];

    for sql in sqls {
        let q = parse_query(sql).unwrap();
        let (expected, _) = execute_query_interpreted(&q, &db).unwrap();

        // enabled: the `bucket = const` scan goes through the hash index
        let (with_idx, stats_on) = execute_query(&q, &db).unwrap();
        assert_eq!(stats_on.compiled, 1, "{sql} should compile");
        assert_eq!(stats_on.index_probes, 1, "{sql} should probe the index");
        assert_eq!(
            stats_on.index_hits, 8,
            "{sql}: 8 of 64 rows share each bucket"
        );
        assert_eq!(
            stats_on.rows_scanned, 8,
            "{sql}: an index probe materializes only matching rows"
        );
        assert_eq!(with_idx.columns, expected.columns, "{sql}");
        assert_eq!(with_idx.rows, expected.rows, "{sql}");

        // disabled: same plan executes as a full scan — identical results,
        // degraded counters
        set_indexes_enabled(false);
        let off = execute_query(&q, &db);
        set_indexes_enabled(true);
        let (without_idx, stats_off) = off.unwrap();
        assert_eq!(stats_off.compiled, 1, "{sql} still compiles when off");
        assert_eq!(stats_off.index_probes, 0, "{sql}: no probes when off");
        assert_eq!(stats_off.index_hits, 0, "{sql}: no hits when off");
        assert_eq!(
            stats_off.rows_scanned, 64,
            "{sql}: a full scan materializes the whole table"
        );
        assert_eq!(without_idx.columns, expected.columns, "{sql}");
        assert_eq!(without_idx.rows, expected.rows, "{sql}");
    }
}
