//! Executor semantics tests against hand-built databases.

use squ_engine::{execute_query, Database, ExecError, Relation, Value};
use squ_parser::parse_query;

fn n(v: f64) -> Value {
    Value::num(v)
}
fn s(v: &str) -> Value {
    Value::str(v)
}

/// A small astronomy-flavoured test database with known contents.
fn db() -> Database {
    let mut db = Database::new("test");
    db.insert_table(
        "SpecObj",
        Relation::new(
            vec![
                "bestobjid".into(),
                "plate".into(),
                "z".into(),
                "class".into(),
            ],
            vec![
                vec![n(1.0), n(100.0), n(0.2), s("GALAXY")],
                vec![n(2.0), n(100.0), n(0.8), s("QSO")],
                vec![n(3.0), n(200.0), n(1.5), s("QSO")],
                vec![n(4.0), n(200.0), Value::Null, s("STAR")],
                vec![n(9.0), n(300.0), n(0.6), s("GALAXY")],
            ],
        ),
    );
    db.insert_table(
        "PhotoObj",
        Relation::new(
            vec!["objid".into(), "ra".into(), "field".into()],
            vec![
                vec![n(1.0), n(10.0), n(103.0)],
                vec![n(2.0), n(190.0), n(103.0)],
                vec![n(3.0), n(200.0), n(200.0)],
                vec![n(7.0), n(300.0), n(756.0)],
            ],
        ),
    );
    db
}

fn run(sql: &str) -> Relation {
    let q = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
    execute_query(&q, &db())
        .unwrap_or_else(|e| panic!("exec {sql:?}: {e}"))
        .0
}

#[test]
fn projection_and_filter() {
    let r = run("SELECT plate FROM SpecObj WHERE z > 0.5");
    assert_eq!(r.columns, vec!["plate"]);
    // z>0.5: rows 2 (0.8), 3 (1.5), 9 (0.6); NULL z filtered out
    assert_eq!(r.len(), 3);
}

#[test]
fn select_star() {
    let r = run("SELECT * FROM PhotoObj");
    assert_eq!(r.columns, vec!["objid", "ra", "field"]);
    assert_eq!(r.len(), 4);
}

#[test]
fn null_comparison_filters_row() {
    let r = run("SELECT plate FROM SpecObj WHERE z < 10");
    assert_eq!(r.len(), 4, "NULL z must not satisfy z < 10");
    let r = run("SELECT plate FROM SpecObj WHERE z IS NULL");
    assert_eq!(r.len(), 1);
    let r = run("SELECT plate FROM SpecObj WHERE z IS NOT NULL");
    assert_eq!(r.len(), 4);
}

#[test]
fn inner_join() {
    let r =
        run("SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid");
    // matches: ids 1,2,3
    assert_eq!(r.len(), 3);
}

#[test]
fn left_join_pads_nulls() {
    let r = run(
        "SELECT s.bestobjid, p.ra FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
    );
    assert_eq!(r.len(), 5);
    let nulls = r.rows.iter().filter(|row| row[1].is_null()).count();
    assert_eq!(nulls, 2, "ids 4 and 9 have no photo match");
}

#[test]
fn right_and_full_join() {
    let r = run(
        "SELECT s.bestobjid, p.objid FROM SpecObj AS s RIGHT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
    );
    assert_eq!(r.len(), 4); // 3 matches + unmatched objid 7
    let r = run(
        "SELECT s.bestobjid, p.objid FROM SpecObj AS s FULL JOIN PhotoObj AS p ON s.bestobjid = p.objid",
    );
    assert_eq!(r.len(), 6); // 3 matches + 2 left-only + 1 right-only
}

#[test]
fn cross_join_and_implicit_join() {
    let r = run("SELECT s.plate FROM SpecObj AS s CROSS JOIN PhotoObj AS p");
    assert_eq!(r.len(), 20);
    let r = run("SELECT s.plate FROM SpecObj AS s, PhotoObj AS p WHERE s.bestobjid = p.objid");
    assert_eq!(r.len(), 3);
}

#[test]
fn using_join() {
    let mut d = db();
    d.insert_table(
        "A",
        Relation::new(vec!["k".into(), "x".into()], vec![vec![n(1.0), n(10.0)]]),
    );
    d.insert_table(
        "B",
        Relation::new(
            vec!["k".into(), "y".into()],
            vec![vec![n(1.0), n(20.0)], vec![n(2.0), n(30.0)]],
        ),
    );
    let q = parse_query("SELECT x, y FROM A JOIN B USING (k)").unwrap();
    let (r, _) = execute_query(&q, &d).unwrap();
    assert_eq!(r.rows, vec![vec![n(10.0), n(20.0)]]);
}

#[test]
fn group_by_aggregates() {
    let r = run("SELECT plate, COUNT(*) AS c, AVG(z) AS az FROM SpecObj GROUP BY plate");
    assert_eq!(r.len(), 3);
    let idx = r.column_index("c").unwrap();
    let total: f64 = r.rows.iter().map(|row| row[idx].as_num().unwrap()).sum();
    assert_eq!(total, 5.0);
    // plate 200 has z values (1.5, NULL) → AVG = 1.5 (NULL ignored)
    let pidx = r.column_index("plate").unwrap();
    let aidx = r.column_index("az").unwrap();
    let row200 = r.rows.iter().find(|row| row[pidx] == n(200.0)).unwrap();
    assert_eq!(row200[aidx], n(1.5));
}

#[test]
fn global_aggregate_without_group_by() {
    let r = run("SELECT COUNT(*), MIN(z), MAX(z), SUM(z) FROM SpecObj");
    assert_eq!(r.rows, vec![vec![n(5.0), n(0.2), n(1.5), n(3.1)]]);
}

#[test]
fn global_aggregate_over_empty_input() {
    let r = run("SELECT COUNT(*), SUM(z) FROM SpecObj WHERE z > 100");
    assert_eq!(r.rows, vec![vec![n(0.0), Value::Null]]);
}

#[test]
fn count_distinct() {
    let r = run("SELECT COUNT(DISTINCT plate) FROM SpecObj");
    assert_eq!(r.rows, vec![vec![n(3.0)]]);
    let r = run("SELECT COUNT(class) FROM SpecObj");
    assert_eq!(r.rows, vec![vec![n(5.0)]]);
    let r = run("SELECT COUNT(z) FROM SpecObj");
    assert_eq!(r.rows, vec![vec![n(4.0)]], "COUNT(col) skips NULL");
}

#[test]
fn having_filters_groups() {
    let r = run("SELECT plate, COUNT(*) FROM SpecObj GROUP BY plate HAVING COUNT(*) > 1");
    assert_eq!(r.len(), 2); // plates 100 and 200
}

#[test]
fn order_by_and_limit() {
    let r = run("SELECT plate, z FROM SpecObj WHERE z IS NOT NULL ORDER BY z DESC LIMIT 2");
    assert_eq!(r.rows[0][1], n(1.5));
    assert_eq!(r.rows[1][1], n(0.8));
    assert_eq!(r.len(), 2);
}

#[test]
fn order_by_alias() {
    let r =
        run("SELECT plate, COUNT(*) AS c FROM SpecObj GROUP BY plate ORDER BY c DESC, plate ASC");
    let c = r.column_index("c").unwrap();
    assert_eq!(r.rows[0][c], n(2.0));
    assert_eq!(r.rows[2][c], n(1.0));
}

#[test]
fn order_by_aggregate_expression() {
    // ORDER BY count(*) must match the projected COUNT(*) case-insensitively
    let r =
        run("SELECT count(*), plate FROM SpecObj GROUP BY plate ORDER BY count(*) DESC LIMIT 1");
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], n(2.0));
}

#[test]
fn top_n() {
    let r = run("SELECT TOP 2 plate FROM SpecObj ORDER BY plate DESC");
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0][0], n(300.0));
}

#[test]
fn distinct_dedups() {
    let r = run("SELECT DISTINCT plate FROM SpecObj");
    assert_eq!(r.len(), 3);
}

#[test]
fn in_subquery() {
    let r = run(
        "SELECT plate FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 100)",
    );
    assert_eq!(r.len(), 2); // ids 2 and 3
    let r = run("SELECT plate FROM SpecObj WHERE bestobjid NOT IN (SELECT objid FROM PhotoObj)");
    assert_eq!(r.len(), 2); // ids 4 and 9
}

#[test]
fn exists_correlated() {
    let r = run(
        "SELECT s.plate FROM SpecObj AS s WHERE EXISTS (SELECT 1 FROM PhotoObj AS p WHERE p.objid = s.bestobjid AND p.ra > 100)",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn scalar_subquery() {
    let r = run("SELECT plate FROM SpecObj WHERE z = (SELECT MAX(z) FROM SpecObj)");
    assert_eq!(r.rows, vec![vec![n(200.0)]]);
}

#[test]
fn scalar_subquery_multi_row_errors() {
    let q = parse_query("SELECT plate FROM SpecObj WHERE z = (SELECT z FROM SpecObj)").unwrap();
    assert_eq!(
        execute_query(&q, &db()).unwrap_err(),
        ExecError::ScalarSubqueryMultiRow
    );
}

#[test]
fn correlated_scalar_subquery() {
    let r = run(
        "SELECT s.plate, (SELECT COUNT(*) FROM PhotoObj AS p WHERE p.objid = s.bestobjid) AS hits FROM SpecObj AS s",
    );
    let hits = r.column_index("hits").unwrap();
    let total: f64 = r.rows.iter().map(|row| row[hits].as_num().unwrap()).sum();
    assert_eq!(total, 3.0);
}

#[test]
fn cte_materializes() {
    let r = run(
        "WITH hot AS (SELECT plate, z FROM SpecObj WHERE z > 0.5) SELECT plate FROM hot WHERE z < 1",
    );
    assert_eq!(r.len(), 2); // 0.8 and 0.6
}

#[test]
fn cte_chained() {
    let r = run(
        "WITH a AS (SELECT plate, z FROM SpecObj WHERE z > 0.2), b AS (SELECT plate FROM a WHERE z > 1) SELECT * FROM b",
    );
    assert_eq!(r.len(), 1);
}

#[test]
fn set_operations() {
    let r = run("SELECT plate FROM SpecObj WHERE z > 0.5 INTERSECT SELECT plate FROM SpecObj WHERE class = 'QSO'");
    // z>0.5 plates: {100,200,300}; QSO plates: {100,200} → {100,200}
    assert_eq!(r.sorted_rows(), vec![vec![n(100.0)], vec![n(200.0)]]);

    let r = run("SELECT plate FROM SpecObj EXCEPT SELECT plate FROM SpecObj WHERE class = 'QSO'");
    assert_eq!(r.rows, vec![vec![n(300.0)]]);

    let r = run("SELECT plate FROM SpecObj WHERE z > 1 UNION SELECT plate FROM SpecObj WHERE class = 'STAR'");
    assert_eq!(r.len(), 1, "both branches yield plate 200; UNION dedups");

    let r = run("SELECT plate FROM SpecObj WHERE z > 1 UNION ALL SELECT plate FROM SpecObj WHERE class = 'STAR'");
    assert_eq!(r.len(), 2);
}

#[test]
fn between_and_like_and_in_list() {
    let r = run("SELECT plate FROM SpecObj WHERE z BETWEEN 0.5 AND 1.0");
    assert_eq!(r.len(), 2);
    let r = run("SELECT plate FROM SpecObj WHERE class LIKE 'GA%'");
    assert_eq!(r.len(), 2);
    let r = run("SELECT plate FROM SpecObj WHERE class LIKE '_SO'");
    assert_eq!(r.len(), 2);
    let r = run("SELECT plate FROM SpecObj WHERE plate IN (100, 300)");
    assert_eq!(r.len(), 3);
    let r = run("SELECT plate FROM SpecObj WHERE plate NOT IN (100, 300)");
    assert_eq!(r.len(), 2);
}

#[test]
fn case_and_cast_and_functions() {
    let r = run("SELECT CASE WHEN z > 0.5 THEN 'high' ELSE 'low' END AS bucket FROM SpecObj WHERE z IS NOT NULL");
    let highs = r.rows.iter().filter(|row| row[0] == s("high")).count();
    assert_eq!(highs, 3);

    let r = run("SELECT CAST(z AS INT) FROM SpecObj WHERE z = 1.5");
    assert_eq!(r.rows, vec![vec![n(1.0)]]);

    let r = run("SELECT UPPER(class), LEN(class) FROM SpecObj WHERE plate = 300");
    assert_eq!(r.rows, vec![vec![s("GALAXY"), n(6.0)]]);

    let r = run("SELECT ROUND(z, 0) FROM SpecObj WHERE plate = 300");
    assert_eq!(r.rows, vec![vec![n(1.0)]]);
}

#[test]
fn arithmetic_and_division_by_zero() {
    let r = run("SELECT z * 2 + 1 FROM SpecObj WHERE plate = 300");
    assert_eq!(r.rows, vec![vec![n(2.2)]]);
    let r = run("SELECT z / 0 FROM SpecObj WHERE plate = 300");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn derived_table() {
    let r =
        run("SELECT d.plate FROM (SELECT plate, z FROM SpecObj WHERE z > 0.5) AS d WHERE d.z < 1");
    assert_eq!(r.len(), 2);
}

#[test]
fn unknown_table_and_column_error() {
    let q = parse_query("SELECT x FROM nope").unwrap();
    assert!(matches!(
        execute_query(&q, &db()),
        Err(ExecError::UnknownTable(_))
    ));
    let q = parse_query("SELECT nope FROM SpecObj").unwrap();
    assert!(matches!(
        execute_query(&q, &db()),
        Err(ExecError::UnknownColumn(_))
    ));
}

#[test]
fn stats_accumulate() {
    let q =
        parse_query("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid")
            .unwrap();
    let (_, stats) = execute_query(&q, &db()).unwrap();
    assert_eq!(stats.rows_scanned, 9);
    assert_eq!(stats.join_pairs, 20);
    assert_eq!(stats.rows_output, 3);
}

#[test]
fn paper_q17_intersect_shape() {
    // Spider Q17 shape: stadiums with concerts in both years
    let mut d = Database::new("concert");
    d.insert_table(
        "concert",
        Relation::new(
            vec!["concert_id".into(), "stadium_id".into(), "year".into()],
            vec![
                vec![n(1.0), n(1.0), n(2014.0)],
                vec![n(2.0), n(1.0), n(2015.0)],
                vec![n(3.0), n(2.0), n(2014.0)],
            ],
        ),
    );
    d.insert_table(
        "stadium",
        Relation::new(
            vec!["stadium_id".into(), "name".into(), "loc".into()],
            vec![
                vec![n(1.0), s("Stark Park"), s("north")],
                vec![n(2.0), s("Glebe Park"), s("south")],
            ],
        ),
    );
    let q = parse_query(
        "SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 INTERSECT SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
    )
    .unwrap();
    let (r, _) = execute_query(&q, &d).unwrap();
    assert_eq!(r.rows, vec![vec![s("Stark Park"), s("north")]]);
}

#[test]
fn paper_q18_order_asc_limit() {
    // Spider Q18 shape: cylinders of the volvo with least acceleration
    let mut d = Database::new("cars");
    d.insert_table(
        "CARS_DATA",
        Relation::new(
            vec!["id".into(), "cylinders".into(), "accelerate".into()],
            vec![
                vec![n(1.0), n(4.0), n(12.0)],
                vec![n(2.0), n(6.0), n(9.5)],
                vec![n(3.0), n(8.0), n(15.0)],
            ],
        ),
    );
    d.insert_table(
        "CAR_NAMES",
        Relation::new(
            vec!["makeid".into(), "model".into()],
            vec![
                vec![n(1.0), s("volvo")],
                vec![n(2.0), s("ford")],
                vec![n(3.0), s("volvo")],
            ],
        ),
    );
    let q = parse_query(
        "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
    )
    .unwrap();
    let (r, _) = execute_query(&q, &d).unwrap();
    // least acceleration among volvos (12.0 vs 15.0) → cylinders 4
    assert_eq!(r.rows, vec![vec![n(4.0)]]);
}

#[test]
fn hash_join_agrees_with_cross_product_path() {
    // 80×80 rows exceeds the hash-join threshold (4096 pairs); the same
    // join written implicitly goes through the cross-product + filter
    // path, so the two code paths check each other
    let mut d = Database::new("hj");
    let left: Vec<Vec<Value>> = (0..80)
        .map(|i| vec![n((i % 13) as f64), n(i as f64)])
        .collect();
    let right: Vec<Vec<Value>> = (0..80)
        .map(|i| {
            vec![
                if i % 11 == 0 {
                    Value::Null
                } else {
                    n((i % 7) as f64)
                },
                n((i * 3) as f64),
            ]
        })
        .collect();
    d.insert_table("L", Relation::new(vec!["k".into(), "x".into()], left));
    d.insert_table("R", Relation::new(vec!["k".into(), "y".into()], right));

    let explicit = parse_query("SELECT l.x, r.y FROM L AS l JOIN R AS r ON l.k = r.k").unwrap();
    let implicit = parse_query("SELECT l.x, r.y FROM L AS l, R AS r WHERE l.k = r.k").unwrap();
    let (a, _) = execute_query(&explicit, &d).unwrap();
    let (b, _) = execute_query(&implicit, &d).unwrap();
    assert!(a.result_equal(&b));
    assert!(!a.is_empty());

    // LEFT JOIN through the hash path: unmatched + NULL-keyed left rows pad
    let left_join =
        parse_query("SELECT l.x, r.y FROM L AS l LEFT JOIN R AS r ON l.k = r.k").unwrap();
    let (lj, _) = execute_query(&left_join, &d).unwrap();
    assert!(lj.len() >= a.len());
    let padded = lj.rows.iter().filter(|row| row[1].is_null()).count();
    // keys 7..12 on the left never match right keys 0..6
    assert!(padded > 0);
}
