//! Property tests: algebraic invariants of the executor, checked by
//! differential execution on random witness databases. These are the same
//! invariants the benchmark's equivalence transformations rely on, so a
//! violation here would silently corrupt task labels.

use proptest::prelude::*;
use squ_engine::{execute_query, witness_database, Database};
use squ_parser::parse_query;
use squ_schema::schemas::sdss;

fn db(seed: u64) -> Database {
    witness_database(&sdss(), seed, 5, 15)
}

fn results_equal(sql_a: &str, sql_b: &str, seed: u64) -> Result<bool, String> {
    let qa = parse_query(sql_a).map_err(|e| e.to_string())?;
    let qb = parse_query(sql_b).map_err(|e| e.to_string())?;
    let d = db(seed);
    let (ra, _) = execute_query(&qa, &d).map_err(|e| e.to_string())?;
    let (rb, _) = execute_query(&qb, &d).map_err(|e| e.to_string())?;
    Ok(ra.result_equal(&rb))
}

proptest! {
    /// Reordering AND conjuncts never changes results.
    #[test]
    fn and_commutes(seed in 0u64..500, a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate FROM SpecObj WHERE z > {a:.1} AND ra < {b:.1}");
        let s2 = format!("SELECT plate FROM SpecObj WHERE ra < {b:.1} AND z > {a:.1}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// De Morgan: NOT (p OR q) == NOT p AND NOT q.
    #[test]
    fn de_morgan(seed in 0u64..500, a in 0.0f64..1000.0, b in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate FROM SpecObj WHERE NOT (z > {a:.1} OR ra > {b:.1})");
        let s2 = format!("SELECT plate FROM SpecObj WHERE NOT z > {a:.1} AND NOT ra > {b:.1}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// BETWEEN is the closed-range conjunction.
    #[test]
    fn between_equals_range(seed in 0u64..500, lo in 0.0f64..500.0, width in 0.0f64..500.0) {
        let hi = lo + width;
        let s1 = format!("SELECT plate FROM SpecObj WHERE z BETWEEN {lo:.1} AND {hi:.1}");
        let s2 = format!("SELECT plate FROM SpecObj WHERE z >= {lo:.1} AND z <= {hi:.1}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// Comparison flip: a > c == c < a.
    #[test]
    fn comparison_flip(seed in 0u64..500, c in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate FROM SpecObj WHERE z > {c:.1}");
        let s2 = format!("SELECT plate FROM SpecObj WHERE {c:.1} < z");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// IN (v1, v2, …) == OR chain of equalities.
    #[test]
    fn in_list_equals_or_chain(seed in 0u64..500, vals in prop::collection::vec(0u32..1000, 1..4)) {
        let list = vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let ors = vals.iter().map(|v| format!("plate = {v}")).collect::<Vec<_>>().join(" OR ");
        let s1 = format!("SELECT bestobjid FROM SpecObj WHERE plate IN ({list})");
        let s2 = format!("SELECT bestobjid FROM SpecObj WHERE {ors}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// Join commutes (result columns reordered accordingly).
    #[test]
    fn join_commutes(seed in 0u64..500) {
        let s1 = "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid";
        let s2 = "SELECT s.plate, p.ra FROM PhotoObj AS p JOIN SpecObj AS s ON s.bestobjid = p.objid";
        prop_assert!(results_equal(s1, s2, seed).unwrap());
    }

    /// A semi-join via IN equals the projected inner join when the join key
    /// is unique-ish on the probe side — use DISTINCT to force set semantics
    /// on both sides.
    #[test]
    fn in_subquery_equals_distinct_join(seed in 0u64..500, cutoff in 0.0f64..1000.0) {
        let s1 = format!(
            "SELECT DISTINCT plate FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > {cutoff:.1})"
        );
        let s2 = format!(
            "SELECT DISTINCT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > {cutoff:.1}"
        );
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// CTE wrapping is a no-op.
    #[test]
    fn cte_wrapping_noop(seed in 0u64..500, cutoff in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate, mjd FROM SpecObj WHERE z > {cutoff:.1}");
        let s2 = format!(
            "WITH w AS (SELECT plate, mjd FROM SpecObj WHERE z > {cutoff:.1}) SELECT plate, mjd FROM w"
        );
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// Derived-table wrapping is a no-op.
    #[test]
    fn derived_wrapping_noop(seed in 0u64..500, cutoff in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate FROM SpecObj WHERE z > {cutoff:.1}");
        let s2 = format!("SELECT plate FROM (SELECT plate FROM SpecObj WHERE z > {cutoff:.1}) AS d");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// UNION is idempotent on one operand: Q UNION Q == SELECT DISTINCT Q.
    #[test]
    fn union_idempotent(seed in 0u64..500, cutoff in 0.0f64..1000.0) {
        let s1 = format!(
            "SELECT plate FROM SpecObj WHERE z > {cutoff:.1} UNION SELECT plate FROM SpecObj WHERE z > {cutoff:.1}"
        );
        let s2 = format!("SELECT DISTINCT plate FROM SpecObj WHERE z > {cutoff:.1}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// Comparison negation: NOT (a > c) == a <= c, including NULL rows
    /// (requires three-valued logic — both sides are UNKNOWN on NULL).
    #[test]
    fn negated_comparison_identity(seed in 0u64..500, c in 0.0f64..1000.0) {
        let s1 = format!("SELECT plate FROM SpecObj WHERE NOT z > {c:.1}");
        let s2 = format!("SELECT plate FROM SpecObj WHERE z <= {c:.1}");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// NOT IN is the 3VL negation of IN: both filter NULL probes.
    #[test]
    fn not_in_is_negation(seed in 0u64..500, vals in prop::collection::vec(0u32..1000, 1..4)) {
        let list = vals.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
        let s1 = format!("SELECT bestobjid FROM SpecObj WHERE plate NOT IN ({list})");
        let s2 = format!("SELECT bestobjid FROM SpecObj WHERE NOT plate IN ({list})");
        prop_assert!(results_equal(&s1, &s2, seed).unwrap());
    }

    /// The executor is deterministic: same query, same database, same rows.
    #[test]
    fn executor_deterministic(seed in 0u64..500) {
        let q = parse_query("SELECT plate, COUNT(*) FROM SpecObj GROUP BY plate").unwrap();
        let d = db(seed);
        let (r1, _) = execute_query(&q, &d).unwrap();
        let (r2, _) = execute_query(&q, &d).unwrap();
        prop_assert_eq!(r1, r2);
    }
}
