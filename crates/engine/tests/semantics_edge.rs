//! Executor edge-case semantics: NULL propagation, empty inputs, set-op
//! ALL variants, grouping corner cases, and resource-limit behavior.

use squ_engine::{execute_query, Database, ExecError, Relation, Value};
use squ_parser::parse_query;

fn n(v: f64) -> Value {
    Value::num(v)
}
fn s(v: &str) -> Value {
    Value::str(v)
}

fn db() -> Database {
    let mut db = Database::new("edge");
    db.insert_table(
        "t",
        Relation::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![n(1.0), n(10.0), s("x")],
                vec![n(2.0), Value::Null, s("y")],
                vec![n(2.0), n(20.0), Value::Null],
                vec![Value::Null, n(30.0), s("x")],
            ],
        ),
    );
    db.insert_table("empty", Relation::empty(vec!["a".into(), "b".into()]));
    db
}

fn run(sql: &str) -> Relation {
    let q = parse_query(sql).unwrap();
    execute_query(&q, &db()).unwrap().0
}

#[test]
fn null_never_equals_null() {
    // b = b is NULL for the NULL row → filtered
    assert_eq!(run("SELECT a FROM t WHERE b = b").len(), 3);
    // c <> c never true
    assert_eq!(run("SELECT a FROM t WHERE c <> c").len(), 0);
}

#[test]
fn not_of_null_comparison_filters_row() {
    // SQL 3VL: NOT (NULL > 5) = NOT UNKNOWN = UNKNOWN → filtered; and all
    // non-NULL b here satisfy b > 5, so nothing survives
    let r = run("SELECT a FROM t WHERE NOT b > 5");
    assert_eq!(r.len(), 0);
    // sanity: negation is the complement over non-NULL values
    let kept = run("SELECT a FROM t WHERE b > 5").len();
    let negated = run("SELECT a FROM t WHERE NOT b > 5").len();
    let non_null = run("SELECT a FROM t WHERE b IS NOT NULL").len();
    assert_eq!(kept + negated, non_null);
}

#[test]
fn in_list_with_null_probe() {
    assert_eq!(run("SELECT a FROM t WHERE b IN (10, 30)").len(), 2);
    // NULL IN (…) is never true
    assert_eq!(run("SELECT a FROM t WHERE b NOT IN (999)").len(), 3);
}

#[test]
fn aggregates_on_empty_table() {
    let r = run("SELECT COUNT(*), SUM(a), AVG(a), MIN(a), MAX(a) FROM empty");
    assert_eq!(
        r.rows,
        vec![vec![
            n(0.0),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null
        ]]
    );
}

#[test]
fn group_by_null_key_forms_group() {
    let r = run("SELECT a, COUNT(*) FROM t GROUP BY a");
    // keys: 1, 2, NULL → 3 groups
    assert_eq!(r.len(), 3);
    let null_group = r
        .rows
        .iter()
        .find(|row| row[0].is_null())
        .expect("NULL group exists");
    assert_eq!(null_group[1], n(1.0));
}

#[test]
fn having_without_group_by() {
    let r = run("SELECT COUNT(*) FROM t HAVING COUNT(*) > 3");
    assert_eq!(r.len(), 1);
    let r = run("SELECT COUNT(*) FROM t HAVING COUNT(*) > 10");
    assert_eq!(r.len(), 0, "global group filtered out by HAVING");
}

#[test]
fn distinct_treats_nulls_as_equal_values() {
    let r = run("SELECT DISTINCT a FROM t");
    assert_eq!(r.len(), 3, "1, 2, NULL");
}

#[test]
fn union_all_vs_union_counts() {
    let all = run("SELECT a FROM t UNION ALL SELECT a FROM t");
    assert_eq!(all.len(), 8);
    let set = run("SELECT a FROM t UNION SELECT a FROM t");
    assert_eq!(set.len(), 3);
}

#[test]
fn intersect_all_keeps_left_duplicates() {
    let r = run("SELECT a FROM t INTERSECT ALL SELECT a FROM t WHERE a = 2");
    assert_eq!(r.len(), 2, "both a=2 rows from the left survive");
    let r = run("SELECT a FROM t INTERSECT SELECT a FROM t WHERE a = 2");
    assert_eq!(r.len(), 1);
}

#[test]
fn except_set_semantics() {
    let r = run("SELECT a FROM t EXCEPT SELECT a FROM t WHERE a = 1");
    // {1,2,NULL} minus {1} = {2, NULL}
    assert_eq!(r.len(), 2);
}

#[test]
fn limit_zero_and_oversized() {
    assert_eq!(run("SELECT a FROM t LIMIT 0").len(), 0);
    assert_eq!(run("SELECT a FROM t LIMIT 100").len(), 4);
}

#[test]
fn order_by_places_nulls_first() {
    let r = run("SELECT b FROM t ORDER BY b ASC");
    assert!(r.rows[0][0].is_null(), "total order puts NULL first");
    let r = run("SELECT b FROM t ORDER BY b DESC");
    assert!(r.rows[r.rows.len() - 1][0].is_null());
}

#[test]
fn join_with_empty_side() {
    let r = run("SELECT t.a FROM t JOIN empty ON t.a = empty.a");
    assert_eq!(r.len(), 0);
    let r = run("SELECT t.a, empty.b FROM t LEFT JOIN empty ON t.a = empty.a");
    assert_eq!(r.len(), 4, "left rows preserved with NULL padding");
    assert!(r.rows.iter().all(|row| row[1].is_null()));
}

#[test]
fn scalar_subquery_empty_is_null() {
    let r = run("SELECT a FROM t WHERE b = (SELECT a FROM empty)");
    assert_eq!(
        r.len(),
        0,
        "comparison with NULL subquery result filters all"
    );
}

#[test]
fn exists_on_empty() {
    assert_eq!(
        run("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM empty)").len(),
        0
    );
    assert_eq!(
        run("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM empty)").len(),
        4
    );
}

#[test]
fn resource_limit_fires_on_cross_blowup() {
    // many-way cross join of a synthetic wide table must hit the budget
    let mut big = Database::new("big");
    let rows: Vec<Vec<Value>> = (0..200).map(|i| vec![n(i as f64)]).collect();
    big.insert_table("x", Relation::new(vec!["a".into()], rows));
    let q = parse_query("SELECT x1.a FROM x AS x1, x AS x2, x AS x3 WHERE x1.a + x2.a + x3.a > 0")
        .unwrap();
    // 200^3 = 8M rows > budget, and the 3-way sum prevents pushdown
    assert_eq!(
        execute_query(&q, &big).unwrap_err(),
        ExecError::ResourceLimit
    );
}

#[test]
fn case_without_else_yields_null() {
    let r = run("SELECT CASE WHEN a > 100 THEN 1 END FROM t WHERE a = 1");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn like_escaped_patterns() {
    // core wildcards (no escape syntax in this dialect)
    assert!(squ_engine::like_match("GALAXY", "G%Y"));
    assert!(squ_engine::like_match("GALAXY", "______"));
    assert!(!squ_engine::like_match("GALAXY", "_____"));
    assert!(squ_engine::like_match("", "%"));
    assert!(!squ_engine::like_match("", "_"));
}

#[test]
fn coalesce_and_nullif() {
    let r = run("SELECT COALESCE(b, 0) FROM t WHERE a = 2 AND c = 'y'");
    assert_eq!(r.rows, vec![vec![n(0.0)]]);
    let r = run("SELECT NULLIF(a, 1) FROM t WHERE a = 1");
    assert_eq!(r.rows, vec![vec![Value::Null]]);
}

#[test]
fn correlated_subquery_in_projection_per_row() {
    let r =
        run("SELECT a, (SELECT COUNT(*) FROM t AS u WHERE u.a = t.a) FROM t WHERE a IS NOT NULL");
    // a=1 → 1; a=2 rows → 2 each
    let counts: Vec<f64> = r.rows.iter().map(|row| row[1].as_num().unwrap()).collect();
    assert_eq!(counts.iter().sum::<f64>(), 1.0 + 2.0 + 2.0);
}
