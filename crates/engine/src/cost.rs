//! Analytical cost model.
//!
//! Estimates the runtime of a query from its AST and the schema's
//! cardinality estimates — a System-R-flavoured model: per-table scan cost,
//! damped join growth, per-predicate selectivity, grouping/sorting
//! surcharges, and a correlated-subquery multiplier.
//!
//! The model replaces the SDSS query log's recorded elapsed times (which
//! are not publicly reconstructible) as the source of the
//! `performance_pred` ground truth. What the paper needs from the log is
//! (a) a bimodal elapsed-time distribution (its Figure 5) and (b) a
//! correlation between query complexity and cost — both of which this model
//! produces by construction, since cost grows with the number and size of
//! tables, joins, and predicates.

use squ_parser::ast::*;
use squ_parser::visit::walk_queries;
use squ_schema::Schema;

/// Tunable constants of the cost model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Rows processed per millisecond (scan throughput).
    pub rows_per_ms: f64,
    /// Selectivity charged per WHERE predicate.
    pub predicate_selectivity: f64,
    /// Multiplier applied to a subquery's cost per nesting level
    /// (correlated re-execution).
    pub subquery_multiplier: f64,
    /// Default cardinality for tables missing from the schema.
    pub default_card: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rows_per_ms: 700_000.0,
            predicate_selectivity: 0.25,
            subquery_multiplier: 8.0,
            default_card: 10_000.0,
        }
    }
}

impl CostModel {
    /// Estimated elapsed milliseconds for `stmt` against `schema`.
    pub fn estimate_ms(&self, stmt: &Statement, schema: &Schema) -> f64 {
        let mut total_rows = 0.0_f64;
        walk_queries(stmt, &mut |q, depth| {
            let block = self.block_rows(q, schema);
            total_rows += block * self.subquery_multiplier.powi(depth as i32);
        });
        total_rows / self.rows_per_ms
    }

    /// Should a `col = constant` scan over a table of `rows` rows go
    /// through a hash index? Building costs one pass over the table, but
    /// the build is cached per database, so the bar is low — only
    /// tiny tables lose.
    pub fn index_probe_beneficial(&self, rows: f64) -> bool {
        rows >= 8.0
    }

    /// Should an equi-join over inputs of `l` and `r` rows hash the right
    /// side instead of scanning all `l × r` pairs?
    pub fn hash_join_beneficial(&self, l: f64, r: f64) -> bool {
        l * r > 256.0
    }

    /// Estimated cardinality of composing an accumulated input of `acc`
    /// rows with a unit of `next` rows: damped equi-join growth
    /// (larger side × √smaller) when `connected` by an equality
    /// predicate, full cross product otherwise. Used by
    /// [`crate::plan::greedy_join_order`].
    pub fn comma_join_estimate(&self, acc: f64, next: f64, connected: bool) -> f64 {
        if connected {
            let (big, small) = if acc >= next {
                (acc, next)
            } else {
                (next, acc)
            };
            (big * small.sqrt().max(1.0)).min(1e13)
        } else {
            (acc * next).min(1e13)
        }
    }

    /// Row-units charged to one query block (not descending into
    /// subqueries — `walk_queries` visits those separately).
    fn block_rows(&self, q: &Query, schema: &Schema) -> f64 {
        let select = match &q.body {
            SetExpr::Select(s) => s,
            SetExpr::SetOp { .. } => {
                // set-op children are Selects; approximate the combination
                // cost as the sort/dedup of both sides, which the per-side
                // block costs below already dominate. Charge a token cost.
                return 1_000.0;
            }
        };

        // cardinalities of the base tables in FROM (joins flattened)
        let mut cards: Vec<f64> = Vec::new();
        for tr in &select.from {
            collect_cards(tr, schema, self.default_card, &mut cards);
        }
        let scan: f64 = cards.iter().sum();

        // join output estimate: largest table × damped contributions of the
        // rest (√c each — equi-joins on keys shrink the cross product)
        cards.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let mut out = cards.first().copied().unwrap_or(1.0);
        for c in cards.iter().skip(1) {
            out *= c.sqrt().max(1.0);
            if out > 1e13 {
                out = 1e13;
                break;
            }
        }

        // predicate selectivity
        let preds = count_predicates(select);
        out *= self
            .predicate_selectivity
            .powi(preds.min(12) as i32)
            .max(1e-6);

        // grouping / ordering surcharges
        let mut cost = scan + 2.0 * out;
        if !select.group_by.is_empty() || select.having.is_some() {
            cost += 2.0 * out;
        }
        if !q.order_by.is_empty() {
            cost += 2.0 * out;
        }
        // scalar function work
        let fns = count_functions(select);
        cost += 0.1 * out * fns as f64;
        // TOP/LIMIT lets the engine stop early on the output side
        if q.limit.is_some() || select.top.is_some() {
            cost = scan + (cost - scan) * 0.5;
        }
        cost
    }

    /// Runtime bucket of `stmt` under [`RUNTIME_BUCKET_EDGES_MS`] —
    /// the engine-measured axis used by distribution-targeted workload
    /// synthesis. Deterministic (never wall-clock), so synthesized
    /// datasets stay byte-identical across machines.
    pub fn estimate_bucket(&self, stmt: &Statement, schema: &Schema) -> usize {
        runtime_bucket(self.estimate_ms(stmt, schema))
    }
}

/// Log-decade edges (ms) of the engine's runtime buckets: `< 1 ms`,
/// `1–10`, `10–100`, `100–1 000`, `1 000–10 000`, `≥ 10 000`. The
/// spacing mirrors the bimodal elapsed-time split in the paper's
/// Figure 5, where sub-millisecond point lookups and multi-second
/// scans dominate the two modes.
pub const RUNTIME_BUCKET_EDGES_MS: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// Bucket of an elapsed-time estimate under
/// [`RUNTIME_BUCKET_EDGES_MS`]: the first edge `e` with `ms < e`, else
/// the overflow bucket (same convention as workload histograms).
pub fn runtime_bucket(ms: f64) -> usize {
    for (i, e) in RUNTIME_BUCKET_EDGES_MS.iter().enumerate() {
        if ms < *e {
            return i;
        }
    }
    RUNTIME_BUCKET_EDGES_MS.len()
}

fn collect_cards(tr: &TableRef, schema: &Schema, default: f64, out: &mut Vec<f64>) {
    match tr {
        TableRef::Named { name, .. } => {
            let c = schema
                .table(name)
                .map(|t| t.row_count as f64)
                .unwrap_or(default);
            out.push(c);
        }
        TableRef::Derived { .. } => out.push(default),
        TableRef::Join { left, right, .. } => {
            collect_cards(left, schema, default, out);
            collect_cards(right, schema, default, out);
        }
    }
}

/// Number of atomic predicates in the WHERE clause (AND/OR leaves).
fn count_predicates(s: &Select) -> usize {
    fn leaves(e: &Expr) -> usize {
        match e {
            Expr::And(a, b) | Expr::Or(a, b) => leaves(a) + leaves(b),
            Expr::Not(inner) => leaves(inner),
            _ => 1,
        }
    }
    s.selection.as_ref().map(leaves).unwrap_or(0)
}

fn count_functions(s: &Select) -> usize {
    let mut n = 0;
    for item in &s.items {
        if let SelectItem::Expr { expr, .. } = item {
            count_fn_expr(expr, &mut n);
        }
    }
    if let Some(w) = &s.selection {
        count_fn_expr(w, &mut n);
    }
    n
}

fn count_fn_expr(e: &Expr, n: &mut usize) {
    if matches!(e, Expr::Function { .. }) {
        *n += 1;
    }
    e.for_each_child(&mut |c| count_fn_expr(c, n));
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;
    use squ_schema::schemas::sdss;

    fn ms(sql: &str) -> f64 {
        let stmt = parse(sql).unwrap();
        CostModel::default().estimate_ms(&stmt, &sdss())
    }

    #[test]
    fn simple_specobj_query_is_cheap() {
        let t = ms("SELECT plate, mjd FROM SpecObj WHERE z > 0.5");
        assert!(t < 200.0, "expected low-cost, got {t} ms");
    }

    #[test]
    fn photoobj_join_is_expensive() {
        let t = ms(
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
        );
        assert!(t > 200.0, "expected high-cost, got {t} ms");
    }

    #[test]
    fn more_predicates_reduce_cost() {
        let few = ms("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 180");
        let many = ms("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 180 AND p.dec < 30 AND s.z > 0.5 AND s.zwarning = 0");
        assert!(
            many < few,
            "selectivity should shrink join output: {many} !< {few}"
        );
    }

    #[test]
    fn nested_subqueries_cost_more() {
        let flat = ms("SELECT plate FROM SpecObj WHERE z > 0.5");
        let nested =
            ms("SELECT plate FROM SpecObj WHERE bestobjid IN (SELECT bestobjid FROM SpecObj WHERE z > 0.5)");
        assert!(nested > flat);
    }

    #[test]
    fn top_reduces_cost() {
        let full = ms("SELECT ra, dec FROM PhotoObj ORDER BY ra");
        let top = ms("SELECT TOP 10 ra, dec FROM PhotoObj ORDER BY ra");
        assert!(top < full);
    }

    #[test]
    fn unknown_table_uses_default_card() {
        let t = ms("SELECT x FROM mystery");
        assert!(t > 0.0 && t < 10.0);
    }

    #[test]
    fn index_probe_skips_tiny_tables() {
        let m = CostModel::default();
        assert!(!m.index_probe_beneficial(3.0));
        assert!(m.index_probe_beneficial(8.0));
        assert!(m.index_probe_beneficial(1e6));
    }

    #[test]
    fn hash_join_needs_enough_pairs() {
        let m = CostModel::default();
        assert!(!m.hash_join_beneficial(4.0, 4.0));
        assert!(m.hash_join_beneficial(100.0, 100.0));
    }

    #[test]
    fn equi_connection_damps_join_estimates() {
        let m = CostModel::default();
        let cross = m.comma_join_estimate(1000.0, 400.0, false);
        let equi = m.comma_join_estimate(1000.0, 400.0, true);
        assert_eq!(cross, 400_000.0);
        assert_eq!(equi, 20_000.0);
        assert!(m.comma_join_estimate(1e9, 1e9, false) <= 1e13);
    }

    #[test]
    fn runtime_buckets_follow_histogram_convention() {
        assert_eq!(runtime_bucket(0.0), 0);
        assert_eq!(runtime_bucket(0.999), 0);
        assert_eq!(runtime_bucket(1.0), 1);
        assert_eq!(runtime_bucket(99.9), 2);
        assert_eq!(runtime_bucket(5_000.0), 4);
        assert_eq!(runtime_bucket(10_000.0), 5);
        assert_eq!(runtime_bucket(f64::INFINITY), 5);
    }

    #[test]
    fn estimate_bucket_matches_estimate_ms() {
        let m = CostModel::default();
        let schema = sdss();
        let stmt = parse("SELECT objid FROM photoobj WHERE objid = 1").unwrap();
        assert_eq!(
            m.estimate_bucket(&stmt, &schema),
            runtime_bucket(m.estimate_ms(&stmt, &schema))
        );
    }
}
