//! Runtime values.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A runtime SQL value. Numbers are uniformly `f64`, matching the parser's
/// literal representation; the engine only needs value semantics faithful
/// enough for differential testing of query transformations.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Numeric value.
    Num(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Construct a numeric value.
    pub fn num(v: f64) -> Value {
        Value::Num(v)
    }

    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view, if the value is numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Truthiness for WHERE/HAVING contexts: only `Bool(true)` passes;
    /// NULL and type confusion are falsy (SQL's three-valued logic collapsed
    /// onto the "row is kept" decision, which is what it means operationally).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// SQL equality: NULL never equals anything (returns `None`), values of
    /// different classes are incomparable (`None`), otherwise `Some(bool)`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Num(a), Value::Num(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            _ => None,
        }
    }

    /// SQL ordering comparison; `None` for NULLs or incomparable classes.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and set operations: NULLs first,
    /// then by class (num < str < bool), then by value. Deterministic for
    /// any pair — unlike [`Value::sql_cmp`], which is three-valued.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Num(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => class(a).cmp(&class(b)),
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Num(v) => {
                1u8.hash(state);
                // normalize -0.0 to 0.0 so equal numbers hash equally
                let v = if *v == 0.0 { 0.0 } else { *v };
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_eq_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::num(1.0).sql_eq(&Value::Null), None);
        assert_eq!(Value::num(1.0).sql_eq(&Value::num(1.0)), Some(true));
        assert_eq!(Value::str("a").sql_eq(&Value::str("b")), Some(false));
        assert_eq!(Value::num(1.0).sql_eq(&Value::str("1")), None);
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::num(1.0),
            Value::num(2.0),
            Value::str("a"),
            Value::Bool(false),
        ];
        for a in &vals {
            for b in &vals {
                let _ = a.total_cmp(b); // must not panic
            }
            assert_eq!(a.total_cmp(a), Ordering::Equal);
        }
        assert_eq!(Value::Null.total_cmp(&Value::num(0.0)), Ordering::Less);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::num(0.0));
        assert!(s.contains(&Value::num(-0.0)) || Value::num(0.0) != Value::num(-0.0));
        s.insert(Value::str("x"));
        assert!(s.contains(&Value::str("x")));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::num(1.0).is_truthy());
    }

    #[test]
    fn display() {
        assert_eq!(Value::num(3.0).to_string(), "3");
        assert_eq!(Value::num(0.5).to_string(), "0.5");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
