//! Naive reference interpreter for differential testing.
//!
//! [`reference_query`] executes the same AST dialect as
//! [`crate::execute_query`] but with none of its shortcuts: the FROM list is
//! materialized as a full cross product before the WHERE clause runs (no
//! per-conjunct predicate pushdown), and every join is a straight nested
//! loop (the equi-join hash fast path does not exist here). There is no
//! cost model and no statistics bookkeeping — just textbook semantics,
//! written to be obviously correct rather than fast.
//!
//! The two interpreters share only the [`Value`] primitives and the leaf
//! scalar-function library; all relational machinery (scans, joins,
//! filtering, grouping, set operations, ordering) is implemented twice.
//! `squ-fuzz` runs both over generated queries on witness databases and
//! fails if they ever disagree under [`Relation::result_equal`], so a
//! disagreement localizes a bug to one of the divergent layers — usually
//! the optimized one.

use crate::exec::{cast_value, scalar_function, ExecError};
use crate::{like_match, Database, Relation, Value};
use squ_parser::ast::*;
use squ_parser::CompareOp;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute a statement on the reference interpreter. `CREATE TABLE … AS` /
/// `CREATE VIEW` execute their defining query, like [`crate::execute`].
pub fn reference_execute(stmt: &Statement, db: &Database) -> Result<Relation, ExecError> {
    let q = stmt
        .query()
        .ok_or_else(|| ExecError::Unsupported("CREATE TABLE without AS SELECT".into()))?;
    reference_query(q, db)
}

/// Execute a query with straight nested-loop semantics.
pub fn reference_query(q: &Query, db: &Database) -> Result<Relation, ExecError> {
    let mut cx = Rx {
        db,
        ctes: Vec::new(),
    };
    cx.query(q, &[])
}

/// Hard ceiling on any intermediate relation, mirroring the executor's
/// guard. The reference engine hits it earlier than the optimized one on
/// the same query (no pushdown shrinks the product), which the differential
/// oracle treats as a skip, not a disagreement.
const MAX_ROWS: usize = 120_000;

/// A column of a working relation: optional table binding plus name.
#[derive(Clone)]
struct RCol {
    binding: Option<String>,
    name: String,
}

/// An intermediate relation with qualified columns.
#[derive(Clone)]
struct Rows {
    cols: Vec<RCol>,
    rows: Vec<Vec<Value>>,
}

/// A correlation frame visible to subqueries.
struct Scope<'a> {
    cols: &'a [RCol],
    row: &'a [Value],
}

struct Rx<'a> {
    db: &'a Database,
    ctes: Vec<HashMap<String, Relation>>,
}

impl<'a> Rx<'a> {
    fn lookup_cte(&self, name: &str) -> Option<&Relation> {
        self.ctes
            .iter()
            .rev()
            .find_map(|env| env.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)))
            .map(|(_, v)| v)
    }

    fn query(&mut self, q: &Query, env: &[Scope]) -> Result<Relation, ExecError> {
        self.ctes.push(HashMap::new());
        let result = (|| {
            for cte in &q.ctes {
                let rel = self.query(&cte.query, env)?;
                if let Some(top) = self.ctes.last_mut() {
                    top.insert(cte.name.clone(), rel);
                }
            }
            let mut rel = self.set_expr(&q.body, &q.order_by, env)?;
            let limit = q.limit.or(match &q.body {
                SetExpr::Select(s) => s.top,
                _ => None,
            });
            if let Some(n) = limit {
                rel.rows.truncate(n as usize);
            }
            Ok(rel)
        })();
        self.ctes.pop();
        result
    }

    fn set_expr(
        &mut self,
        body: &SetExpr,
        order_by: &[OrderItem],
        env: &[Scope],
    ) -> Result<Relation, ExecError> {
        match body {
            SetExpr::Select(s) => self.select(s, order_by, env),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.set_expr(left, &[], env)?;
                let r = self.set_expr(right, &[], env)?;
                let mut rel = set_operation(op, *all, l, r);
                if !order_by.is_empty() {
                    sort_set_result(&mut rel, order_by)?;
                }
                Ok(rel)
            }
        }
    }

    fn select(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Scope],
    ) -> Result<Relation, ExecError> {
        // FROM: the full cross product of every item, with no early
        // filtering whatsoever. The WHERE clause sees the complete product.
        let mut working = Rows {
            cols: Vec::new(),
            rows: vec![Vec::new()], // one empty row for table-less SELECT
        };
        for tr in &s.from {
            let next = self.table_ref(tr, env)?;
            working = product(working, next)?;
        }

        // WHERE: the whole predicate, evaluated per surviving row.
        if let Some(pred) = &s.selection {
            let mut kept = Vec::new();
            for row in working.rows {
                let mut scopes = rescope(env);
                scopes.push(Scope {
                    cols: &working.cols,
                    row: &row,
                });
                if self.eval(pred, &scopes)?.is_truthy() {
                    kept.push(row);
                }
            }
            working.rows = kept;
        }

        let grouped = !s.group_by.is_empty()
            || s.items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
            || order_by.iter().any(|o| o.expr.contains_aggregate());

        let (names, mut out) = if grouped {
            self.project_grouped(s, order_by, env, &working)?
        } else {
            self.project_plain(s, order_by, env, &working)?
        };

        if s.distinct {
            let mut seen = std::collections::HashSet::new();
            out.retain(|(row, _)| seen.insert(row.clone()));
        }

        if !order_by.is_empty() {
            out.sort_by(|(_, ka), (_, kb)| {
                for ((va, item), vb) in ka.iter().zip(order_by).zip(kb.iter()) {
                    let ord = va.total_cmp(vb);
                    let ord = if item.desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }

        Ok(Relation::new(
            names,
            out.into_iter().map(|(r, _)| r).collect(),
        ))
    }

    #[allow(clippy::type_complexity)]
    fn project_plain(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Scope],
        working: &Rows,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>), ExecError> {
        let names = output_names(s, &working.cols);
        let mut out = Vec::with_capacity(working.rows.len());
        for row in &working.rows {
            let mut scopes = rescope(env);
            scopes.push(Scope {
                cols: &working.cols,
                row,
            });
            let mut vals = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => vals.extend(row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        for (c, v) in working.cols.iter().zip(row) {
                            if c.binding
                                .as_deref()
                                .is_some_and(|b| b.eq_ignore_ascii_case(q))
                            {
                                vals.push(v.clone());
                            }
                        }
                    }
                    SelectItem::Expr { expr, .. } => vals.push(self.eval(expr, &scopes)?),
                }
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for o in order_by {
                match projected_key(&o.expr, s, &vals) {
                    Some(v) => keys.push(v),
                    None => keys.push(self.eval(&o.expr, &scopes)?),
                }
            }
            out.push((vals, keys));
        }
        Ok((names, out))
    }

    #[allow(clippy::type_complexity)]
    fn project_grouped(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Scope],
        working: &Rows,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>), ExecError> {
        // Group rows by the GROUP BY key vector, first-seen order.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        for (ri, row) in working.rows.iter().enumerate() {
            let mut scopes = rescope(env);
            scopes.push(Scope {
                cols: &working.cols,
                row,
            });
            let mut key = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                key.push(self.eval(g, &scopes)?);
            }
            // Linear scan instead of a hash index: O(groups²) is fine for
            // witness-sized data and keeps this implementation independent
            // of Value's Hash impl.
            match groups
                .iter()
                .position(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a == b))
            {
                Some(gi) => groups[gi].1.push(ri),
                None => groups.push((key, vec![ri])),
            }
        }
        if groups.is_empty() && s.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let names = output_names(s, &working.cols);
        let mut out = Vec::with_capacity(groups.len());
        for (_key, row_ids) in &groups {
            let rows: Vec<&Vec<Value>> = row_ids.iter().map(|&i| &working.rows[i]).collect();
            if let Some(h) = &s.having {
                if !self.eval_grouped(h, env, &working.cols, &rows)?.is_truthy() {
                    continue;
                }
            }
            let mut vals = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        return Err(ExecError::Unsupported(
                            "wildcard projection with GROUP BY".into(),
                        ))
                    }
                    SelectItem::Expr { expr, .. } => {
                        vals.push(self.eval_grouped(expr, env, &working.cols, &rows)?)
                    }
                }
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for o in order_by {
                match projected_key(&o.expr, s, &vals) {
                    Some(v) => keys.push(v),
                    None => keys.push(self.eval_grouped(&o.expr, env, &working.cols, &rows)?),
                }
            }
            out.push((vals, keys));
        }
        Ok((names, out))
    }

    fn table_ref(&mut self, tr: &TableRef, env: &[Scope]) -> Result<Rows, ExecError> {
        match tr {
            TableRef::Named { name, alias } => {
                let rel = if let Some(r) = self.lookup_cte(name) {
                    r.clone()
                } else {
                    self.db
                        .table(name)
                        .ok_or_else(|| ExecError::UnknownTable(name.clone()))?
                        .clone()
                };
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                Ok(Rows {
                    cols: rel
                        .columns
                        .iter()
                        .map(|c| RCol {
                            binding: Some(binding.clone()),
                            name: c.clone(),
                        })
                        .collect(),
                    rows: rel.rows,
                })
            }
            TableRef::Derived { query, alias } => {
                let rel = self.query(query, env)?;
                let binding = alias.clone().unwrap_or_default();
                Ok(Rows {
                    cols: rel
                        .columns
                        .iter()
                        .map(|c| RCol {
                            binding: Some(binding.clone()),
                            name: c.clone(),
                        })
                        .collect(),
                    rows: rel.rows,
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let l = self.table_ref(left, env)?;
                let r = self.table_ref(right, env)?;
                self.nested_loop_join(l, r, *kind, constraint, env)
            }
        }
    }

    /// The only join algorithm the reference engine has.
    fn nested_loop_join(
        &mut self,
        l: Rows,
        r: Rows,
        kind: JoinKind,
        constraint: &JoinConstraint,
        env: &[Scope],
    ) -> Result<Rows, ExecError> {
        if l.rows.len().saturating_mul(r.rows.len()) > MAX_ROWS {
            return Err(ExecError::ResourceLimit);
        }
        let mut cols = l.cols.clone();
        cols.extend(r.cols.clone());

        // Resolve USING positions up front (errors even on empty inputs,
        // matching the optimized engine).
        let mut using_pairs = Vec::new();
        if let JoinConstraint::Using(names) = constraint {
            for n in names {
                let li = l
                    .cols
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(n))
                    .ok_or_else(|| ExecError::UnknownColumn(n.clone()))?;
                let ri = r
                    .cols
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(n))
                    .ok_or_else(|| ExecError::UnknownColumn(n.clone()))?;
                using_pairs.push((li, ri));
            }
        }

        let mut rows = Vec::new();
        let mut right_matched = vec![false; r.rows.len()];
        for lrow in &l.rows {
            let mut matched = false;
            for (ri, rrow) in r.rows.iter().enumerate() {
                let hit = match constraint {
                    JoinConstraint::None => true,
                    JoinConstraint::On(e) => {
                        let mut combined = lrow.clone();
                        combined.extend(rrow.iter().cloned());
                        let mut scopes = rescope(env);
                        scopes.push(Scope {
                            cols: &cols,
                            row: &combined,
                        });
                        self.eval(e, &scopes)?.is_truthy()
                    }
                    JoinConstraint::Using(_) => using_pairs
                        .iter()
                        .all(|&(li, rj)| lrow[li].sql_eq(&rrow[rj]) == Some(true)),
                };
                if hit {
                    matched = true;
                    right_matched[ri] = true;
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat(Value::Null).take(r.cols.len()));
                rows.push(row);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in r.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut row: Vec<Value> =
                        std::iter::repeat(Value::Null).take(l.cols.len()).collect();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
        }
        Ok(Rows { cols, rows })
    }

    // ----- expressions -----

    fn eval(&mut self, e: &Expr, scopes: &[Scope]) -> Result<Value, ExecError> {
        match e {
            Expr::Column(c) => resolve(c, scopes),
            Expr::Literal(l) => Ok(match l {
                Literal::Number(v) => Value::Num(*v),
                Literal::String(s) => Value::Str(s.clone()),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Null => Value::Null,
            }),
            Expr::Compare { op, left, right } => {
                let l = self.eval(left, scopes)?;
                let r = self.eval(right, scopes)?;
                Ok(bool3(compare3(*op, &l, &r)))
            }
            Expr::And(a, b) => {
                let ta = truth(&self.eval(a, scopes)?);
                if ta == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let tb = truth(&self.eval(b, scopes)?);
                Ok(bool3(match (ta, tb) {
                    (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }))
            }
            Expr::Or(a, b) => {
                let ta = truth(&self.eval(a, scopes)?);
                if ta == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let tb = truth(&self.eval(b, scopes)?);
                Ok(bool3(match (ta, tb) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Not(inner) => Ok(bool3(truth(&self.eval(inner, scopes)?).map(|b| !b))),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, scopes)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // Desugared as the standard conjunction low <= v AND v <= high.
                let v = self.eval(expr, scopes)?;
                let lo = self.eval(low, scopes)?;
                let hi = self.eval(high, scopes)?;
                let ge = compare3(CompareOp::GtEq, &v, &lo);
                let le = compare3(CompareOp::LtEq, &v, &hi);
                let inside = match (ge, le) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                };
                Ok(bool3(if *negated { inside.map(|b| !b) } else { inside }))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, scopes)?;
                let mut base: Option<bool> = Some(false);
                for item in list {
                    let iv = self.eval(item, scopes)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            base = Some(true);
                            break;
                        }
                        None => base = None,
                        Some(false) => {}
                    }
                }
                Ok(bool3(if *negated { base.map(|b| !b) } else { base }))
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let v = self.eval(expr, scopes)?;
                let rel = self.query(subquery, scopes)?;
                let mut base: Option<bool> = Some(false);
                for r in &rel.rows {
                    match r.first().map(|x| v.sql_eq(x)) {
                        Some(Some(true)) => {
                            base = Some(true);
                            break;
                        }
                        Some(None) | None => base = None,
                        Some(Some(false)) => {}
                    }
                }
                Ok(bool3(if *negated { base.map(|b| !b) } else { base }))
            }
            Expr::Exists { subquery, negated } => {
                let rel = self.query(subquery, scopes)?;
                Ok(Value::Bool(rel.rows.is_empty() == *negated))
            }
            Expr::ScalarSubquery(q) => {
                let rel = self.query(q, scopes)?;
                match rel.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rel.rows[0].first().cloned().unwrap_or(Value::Null)),
                    _ => Err(ExecError::ScalarSubqueryMultiRow),
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, scopes)?;
                let p = self.eval(pattern, scopes)?;
                match (&v, &p) {
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(s, pat) != *negated))
                    }
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    _ => Ok(Value::Bool(false)),
                }
            }
            Expr::Function { name, args, .. } => {
                if is_aggregate_name(name) {
                    return Err(ExecError::Unsupported(format!(
                        "aggregate {name} outside GROUP BY context"
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, scopes)?);
                }
                scalar_function(name, &vals)
            }
            Expr::Wildcard => Err(ExecError::Unsupported("bare * in expression".into())),
            Expr::Arith { op, left, right } => {
                let l = self.eval(left, scopes)?;
                let r = self.eval(right, scopes)?;
                Ok(arith3(*op, &l, &r))
            }
            Expr::Neg(inner) => Ok(match self.eval(inner, scopes)? {
                Value::Num(x) => Value::Num(-x),
                _ => Value::Null,
            }),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let op_val = match operand {
                    Some(op) => Some(self.eval(op, scopes)?),
                    None => None,
                };
                for (w, t) in branches {
                    let wv = self.eval(w, scopes)?;
                    let hit = match &op_val {
                        Some(ov) => ov.sql_eq(&wv) == Some(true),
                        None => wv.is_truthy(),
                    };
                    if hit {
                        return self.eval(t, scopes);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, scopes),
                    None => Ok(Value::Null),
                }
            }
            Expr::Cast { expr, type_name } => {
                let v = self.eval(expr, scopes)?;
                Ok(cast_value(&v, type_name))
            }
        }
    }

    fn eval_grouped(
        &mut self,
        e: &Expr,
        env: &[Scope],
        cols: &[RCol],
        rows: &[&Vec<Value>],
    ) -> Result<Value, ExecError> {
        match e {
            Expr::Function {
                name,
                args,
                distinct,
            } if is_aggregate_name(name) => self.aggregate(name, args, *distinct, env, cols, rows),
            Expr::And(a, b) => {
                let ta = truth(&self.eval_grouped(a, env, cols, rows)?);
                if ta == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let tb = truth(&self.eval_grouped(b, env, cols, rows)?);
                Ok(bool3(match (ta, tb) {
                    (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                }))
            }
            Expr::Or(a, b) => {
                let ta = truth(&self.eval_grouped(a, env, cols, rows)?);
                if ta == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let tb = truth(&self.eval_grouped(b, env, cols, rows)?);
                Ok(bool3(match (ta, tb) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                }))
            }
            Expr::Not(inner) => Ok(bool3(
                truth(&self.eval_grouped(inner, env, cols, rows)?).map(|b| !b),
            )),
            Expr::Compare { op, left, right } => {
                let l = self.eval_grouped(left, env, cols, rows)?;
                let r = self.eval_grouped(right, env, cols, rows)?;
                Ok(bool3(compare3(*op, &l, &r)))
            }
            Expr::Arith { op, left, right } => {
                let l = self.eval_grouped(left, env, cols, rows)?;
                let r = self.eval_grouped(right, env, cols, rows)?;
                Ok(arith3(*op, &l, &r))
            }
            other => match rows.first() {
                Some(first) => {
                    let mut scopes = rescope(env);
                    scopes.push(Scope { cols, row: first });
                    self.eval(other, &scopes)
                }
                None => Ok(Value::Null),
            },
        }
    }

    fn aggregate(
        &mut self,
        name: &str,
        args: &[Expr],
        distinct: bool,
        env: &[Scope],
        cols: &[RCol],
        rows: &[&Vec<Value>],
    ) -> Result<Value, ExecError> {
        let upper = name.to_ascii_uppercase();
        if upper == "COUNT" && matches!(args.first(), Some(Expr::Wildcard) | None) {
            return Ok(Value::Num(rows.len() as f64));
        }
        let arg = args
            .first()
            .ok_or_else(|| ExecError::Unsupported(format!("{name}()")))?;
        let mut vals = Vec::with_capacity(rows.len());
        for row in rows {
            let mut scopes = rescope(env);
            scopes.push(Scope { cols, row });
            let v = self.eval(arg, &scopes)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if distinct {
            // Quadratic dedup: independent of Value's Hash implementation.
            let mut uniq: Vec<Value> = Vec::new();
            for v in vals {
                if !uniq.contains(&v) {
                    uniq.push(v);
                }
            }
            vals = uniq;
        }
        Ok(match upper.as_str() {
            "COUNT" => Value::Num(vals.len() as f64),
            "SUM" => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    Value::Num(vals.iter().filter_map(|v| v.as_num()).sum())
                }
            }
            "AVG" => {
                let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_num()).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Num(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            "MIN" => vals
                .iter()
                .min_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null),
            "MAX" => vals
                .iter()
                .max_by(|a, b| a.total_cmp(b))
                .cloned()
                .unwrap_or(Value::Null),
            "STDEV" | "STDDEV" | "VAR" | "VARIANCE" => {
                let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_num()).collect();
                if nums.len() < 2 {
                    Value::Null
                } else {
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                        / (nums.len() - 1) as f64;
                    if upper.starts_with("VAR") {
                        Value::Num(var)
                    } else {
                        Value::Num(var.sqrt())
                    }
                }
            }
            _ => return Err(ExecError::Unsupported(format!("aggregate {name}"))),
        })
    }
}

// ----- free helpers -----

fn rescope<'a>(env: &'a [Scope]) -> Vec<Scope<'a>> {
    env.iter()
        .map(|f| Scope {
            cols: f.cols,
            row: f.row,
        })
        .collect()
}

fn resolve(c: &ColumnRef, scopes: &[Scope]) -> Result<Value, ExecError> {
    for scope in scopes.iter().rev() {
        for (rc, v) in scope.cols.iter().zip(scope.row.iter()) {
            if !rc.name.eq_ignore_ascii_case(&c.name) {
                continue;
            }
            match &c.qualifier {
                Some(q) => {
                    if rc
                        .binding
                        .as_deref()
                        .is_some_and(|b| b.eq_ignore_ascii_case(q))
                    {
                        return Ok(v.clone());
                    }
                }
                None => return Ok(v.clone()),
            }
        }
    }
    Err(ExecError::UnknownColumn(format!("{c}")))
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => Some(false),
    }
}

fn bool3(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn compare3(op: CompareOp, l: &Value, r: &Value) -> Option<bool> {
    match op {
        CompareOp::Eq => l.sql_eq(r),
        CompareOp::NotEq => l.sql_eq(r).map(|b| !b),
        CompareOp::Lt => l.sql_cmp(r).map(|o| o == Ordering::Less),
        CompareOp::LtEq => l.sql_cmp(r).map(|o| o != Ordering::Greater),
        CompareOp::Gt => l.sql_cmp(r).map(|o| o == Ordering::Greater),
        CompareOp::GtEq => l.sql_cmp(r).map(|o| o != Ordering::Less),
    }
}

fn arith3(op: char, l: &Value, r: &Value) -> Value {
    match (l.as_num(), r.as_num()) {
        (Some(a), Some(b)) => match op {
            '+' => Value::Num(a + b),
            '-' => Value::Num(a - b),
            '*' => Value::Num(a * b),
            '/' if b != 0.0 => Value::Num(a / b),
            '%' if b != 0.0 => Value::Num(a % b),
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

fn product(l: Rows, r: Rows) -> Result<Rows, ExecError> {
    if l.rows.len().saturating_mul(r.rows.len()) > MAX_ROWS {
        return Err(ExecError::ResourceLimit);
    }
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut rows = Vec::with_capacity(l.rows.len() * r.rows.len());
    for lrow in &l.rows {
        for rrow in &r.rows {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            rows.push(row);
        }
    }
    Ok(Rows { cols, rows })
}

fn output_names(s: &Select, cols: &[RCol]) -> Vec<String> {
    let mut out = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Wildcard => out.extend(cols.iter().map(|c| c.name.clone())),
            SelectItem::QualifiedWildcard(q) => out.extend(
                cols.iter()
                    .filter(|c| {
                        c.binding
                            .as_deref()
                            .is_some_and(|b| b.eq_ignore_ascii_case(q))
                    })
                    .map(|c| c.name.clone()),
            ),
            SelectItem::Expr { expr, alias } => {
                out.push(alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.name.clone(),
                    Expr::Function { name, .. } => name.clone(),
                    _ => "expr".to_string(),
                }))
            }
        }
    }
    out
}

/// ORDER BY key that names a projection alias or repeats a projected
/// expression: reuse the already-computed output value.
fn projected_key(expr: &Expr, s: &Select, out_vals: &[Value]) -> Option<Value> {
    if let Expr::Column(c) = expr {
        if c.qualifier.is_none() {
            for (i, item) in s.items.iter().enumerate() {
                if let SelectItem::Expr { alias: Some(a), .. } = item {
                    if a.eq_ignore_ascii_case(&c.name) {
                        return out_vals.get(i).cloned();
                    }
                }
            }
        }
    }
    for (i, item) in s.items.iter().enumerate() {
        if let SelectItem::Expr { expr: pe, .. } = item {
            if exprs_match(pe, expr) {
                return out_vals.get(i).cloned();
            }
        }
    }
    None
}

/// Structural equality with case-insensitive function names.
fn exprs_match(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (
            Expr::Function {
                name: n1,
                args: a1,
                distinct: d1,
            },
            Expr::Function {
                name: n2,
                args: a2,
                distinct: d2,
            },
        ) => {
            n1.eq_ignore_ascii_case(n2)
                && d1 == d2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| exprs_match(x, y))
        }
        _ => a == b,
    }
}

fn set_operation(op: &SetOp, all: bool, l: Relation, r: Relation) -> Relation {
    let cols = l.columns.clone();
    // Membership and dedup via linear scans over the canonical total order —
    // deliberately not sharing the optimized engine's HashSet machinery.
    let contains = |rows: &[Vec<Value>], row: &[Value]| {
        rows.iter()
            .any(|r| r.len() == row.len() && r.iter().zip(row).all(|(a, b)| a == b))
    };
    match op {
        SetOp::Union => {
            let mut rows = l.rows;
            rows.extend(r.rows);
            if !all {
                let mut uniq: Vec<Vec<Value>> = Vec::new();
                for row in rows {
                    if !contains(&uniq, &row) {
                        uniq.push(row);
                    }
                }
                rows = uniq;
            }
            Relation::new(cols, rows)
        }
        SetOp::Intersect => {
            let mut uniq: Vec<Vec<Value>> = Vec::new();
            let mut rows = Vec::new();
            for row in l.rows {
                if contains(&r.rows, &row) && (all || !contains(&uniq, &row)) {
                    if !all {
                        uniq.push(row.clone());
                    }
                    rows.push(row);
                }
            }
            Relation::new(cols, rows)
        }
        SetOp::Except => {
            let mut uniq: Vec<Vec<Value>> = Vec::new();
            let mut rows = Vec::new();
            for row in l.rows {
                if !contains(&r.rows, &row) && (all || !contains(&uniq, &row)) {
                    if !all {
                        uniq.push(row.clone());
                    }
                    rows.push(row);
                }
            }
            Relation::new(cols, rows)
        }
    }
}

fn sort_set_result(rel: &mut Relation, order_by: &[OrderItem]) -> Result<(), ExecError> {
    let mut keys = Vec::new();
    for item in order_by {
        match &item.expr {
            Expr::Column(c) if c.qualifier.is_none() => {
                let idx = rel
                    .column_index(&c.name)
                    .ok_or_else(|| ExecError::UnknownColumn(c.name.clone()))?;
                keys.push((idx, item.desc));
            }
            other => {
                return Err(ExecError::Unsupported(format!(
                    "set-operation ORDER BY on expression {}",
                    squ_parser::print_expr(other)
                )))
            }
        }
    }
    rel.rows.sort_by(|a, b| {
        for (idx, desc) in &keys {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{execute_query, witness_database};
    use squ_parser::parse_query;
    use squ_schema::schemas::sdss;

    fn both(sql: &str) -> (Relation, Relation) {
        let db = witness_database(&sdss(), 11, 6, 12);
        let q = parse_query(sql).unwrap();
        let (fast, _) = execute_query(&q, &db).unwrap();
        let slow = reference_query(&q, &db).unwrap();
        (fast, slow)
    }

    #[test]
    fn agrees_on_filters_and_projection() {
        let (fast, slow) = both("SELECT plate, z FROM SpecObj WHERE z > 200 AND plate < 900");
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_joins() {
        let (fast, slow) = both(
            "SELECT s.plate, p.objID FROM SpecObj AS s JOIN PhotoObj AS p \
             ON s.bestObjID = p.objID WHERE p.type > 2",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_left_join_null_padding() {
        let (fast, slow) = both(
            "SELECT s.plate, p.objID FROM SpecObj AS s LEFT JOIN PhotoObj AS p \
             ON s.bestObjID = p.objID",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_grouping_and_having() {
        let (fast, slow) = both(
            "SELECT type, COUNT(*) AS n, AVG(ra) FROM PhotoObj \
             GROUP BY type HAVING COUNT(*) >= 1 ORDER BY n DESC",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_set_operations() {
        let (fast, slow) = both(
            "SELECT plate FROM SpecObj WHERE z > 500 \
             UNION SELECT plate FROM SpecObj WHERE z <= 500 ORDER BY plate",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_subqueries() {
        let (fast, slow) = both(
            "SELECT plate FROM SpecObj WHERE bestObjID IN \
             (SELECT objID FROM PhotoObj WHERE type > 1)",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn agrees_on_order_by_limit() {
        let (fast, slow) = both("SELECT plate, z FROM SpecObj ORDER BY z DESC, plate ASC LIMIT 4");
        // LIMIT after ORDER BY: row-for-row, not just multiset.
        assert_eq!(fast.rows, slow.rows);
    }

    #[test]
    fn agrees_on_distinct_and_expressions() {
        let (fast, slow) = both(
            "SELECT DISTINCT type, CASE WHEN ra > 500 THEN 'hi' ELSE 'lo' END AS band \
             FROM PhotoObj WHERE dec IS NOT NULL",
        );
        assert!(fast.result_equal(&slow));
    }

    #[test]
    fn reference_has_no_pushdown_but_same_answer_on_implicit_joins() {
        let (fast, slow) = both(
            "SELECT s.plate FROM SpecObj AS s, PhotoObj AS p \
             WHERE s.bestObjID = p.objID AND p.type > 1",
        );
        assert!(fast.result_equal(&slow));
    }
}
