//! Compiled vectorized execution engine.
//!
//! [`compile_query`] lowers a parsed [`Query`] into a [`CompiledQuery`]: a
//! DAG of columnar batch operators (scan → filter → hash-join → aggregate
//! → sort/limit) whose predicates are flat postfix [`Program`]s
//! ([`crate::program`]) with columns resolved to row offsets, constants
//! folded, and `LIKE` patterns pre-compiled. The [`crate::cost::CostModel`]
//! drives physical choices at compile time: comma-join order
//! ([`crate::plan::greedy_join_order`]), hash- vs nested-loop joins, and
//! whether a `col = constant` scan probes a cached hash index
//! ([`crate::index`]).
//!
//! **Coverage by construction.** The compiler is partial on purpose: any
//! construct whose compiled semantics have not been proven equal to the
//! tree-walking interpreter ([`crate::exec`]) rejects compilation
//! (`None`), and [`crate::execute_query`] falls back to the interpreter
//! for the whole query. Compiled programs are *total* — the compiler only
//! emits operations that cannot error at runtime — which is what makes
//! eager, batched evaluation value-identical to the interpreter's
//! short-circuiting tree walk (errors are the only observable effect of
//! evaluation order). The equivalence is additionally pinned by the
//! differential fuzzer (`squ-fuzz`), which runs every generated query and
//! every transform output on both engines.
//!
//! A [`CompiledQuery`] borrows nothing from the database, so one compile
//! can be executed against many same-schema witness databases (the perf
//! harness does exactly that). Runtime guards turn any compile/execute
//! drift — missing table, arity change — into clean [`ExecError`]s.

use crate::cost::CostModel;
use crate::exec::{
    aggregate_value, combine_set, equi_join_columns, exprs_equal_modulo_case, is_supported_scalar,
    projection_names, split_conjuncts, ExecError, ExecStats, QCol, MAX_INTERMEDIATE_ROWS,
};
use crate::index::indexes_enabled;
use crate::like::LikeMatcher;
use crate::program::{EvalCx, POp, Program, SlotVal, BATCH_SIZE};
use crate::{Database, Relation, Value};
use squ_parser::ast::*;
use squ_parser::CompareOp;
use squ_schema::SqlType;
use std::cmp::Ordering;
use std::collections::HashMap;

const EMPTY_ROW: &[Value] = &[];

/// A query lowered to the physical operator DAG, ready to execute against
/// any database with the schema it was compiled for.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    phys: PhysQuery,
}

/// Compile `q` for execution against databases shaped like `db`.
///
/// Returns `None` when any part of the query uses a construct the
/// compiled engine does not cover; callers fall back to
/// [`crate::execute_query_interpreted`].
pub fn compile_query(q: &Query, db: &Database) -> Option<CompiledQuery> {
    let mut c = Compiler {
        db,
        cost: CostModel::default(),
        ctes: Vec::new(),
        strict: false,
    };
    Some(CompiledQuery {
        phys: c.compile_q(q)?,
    })
}

impl CompiledQuery {
    /// Execute against `db`, producing the result relation and stats.
    pub fn execute(&self, db: &Database) -> Result<(Relation, ExecStats), ExecError> {
        let mut stats = ExecStats {
            compiled: 1,
            ..ExecStats::default()
        };
        let rel = self.phys.exec(db, None, &mut stats)?;
        stats.rows_output = rel.rows.len() as u64;
        Ok((rel, stats))
    }

    /// Output column names of the compiled query.
    pub fn out_cols(&self) -> &[String] {
        self.phys.out_cols()
    }
}

// ----- physical plan types -----

#[derive(Debug, Clone)]
struct PhysQuery {
    /// CTE bodies in declaration order (runtime materializes sequentially).
    ctes: Vec<PhysQuery>,
    body: PhysSet,
    /// Effective row limit: `LIMIT n`, or a top-level `SELECT TOP n`.
    limit: Option<u64>,
}

#[derive(Debug, Clone)]
enum PhysSet {
    Select(Box<PhysSelect>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<PhysSet>,
        right: Box<PhysSet>,
        /// Pre-resolved top-level ORDER BY keys (output positions).
        keys: Vec<(usize, bool)>,
    },
}

/// One compiled SELECT block.
#[derive(Debug, Clone)]
struct PhysSelect {
    /// FROM units in declaration (canonical) order.
    units: Vec<PhysNode>,
    /// Cost-chosen execution order over `units` (identity when n < 3).
    exec_order: Vec<usize>,
    /// Did the planner deviate from declaration order?
    reordered: bool,
    /// Late-materialization spec: for each canonical column the query
    /// actually reads, the `(executed step, local column)` to gather it
    /// from; `None` columns are never read downstream and materialize as
    /// NULL without touching the source rows.
    mat: Vec<Option<(u32, u32)>>,
    /// Access path for the first executed unit.
    access: Access,
    /// WHERE conjuncts, compiled; `step` = earliest executed step at which
    /// all referenced units are joined (None = deferred to the end:
    /// contains a subquery, mirroring the interpreter's resolvability
    /// deferral).
    filters: Vec<CFilter>,
    /// Join strategy for executed steps 1..n.
    steps: Vec<StepJoin>,
    /// Uncorrelated subqueries, evaluated once per execution.
    slots: Vec<PhysSlot>,
    /// Grouping/aggregation, when the block is grouped.
    grouping: Option<Grouping>,
    /// Plain projection items (unused when grouped).
    items: Vec<ProjItem>,
    /// ORDER BY keys with descending flags.
    order: Vec<(OrderKey, bool)>,
    distinct: bool,
    /// `SELECT TOP n` on this block (hoisted to the query level by the
    /// compiler when this block is the query body).
    top: Option<u64>,
    /// Output column names.
    out_cols: Vec<String>,
    /// The semantic analyzer proved the WHERE clause unsatisfiable at
    /// compile time: this ungrouped block can never emit a row, so
    /// execution skips scans, joins, and subquery slots entirely.
    empty_prune: bool,
}

#[derive(Debug, Clone)]
enum PhysNode {
    Scan { src: ScanSrc, width: usize },
    Derived(Box<PhysQuery>),
    Join(Box<JoinNode>),
}

#[derive(Debug, Clone)]
enum ScanSrc {
    /// Base table by name.
    Table(String),
    /// CTE `pos` in the frame `up` levels out.
    Cte { up: usize, pos: usize },
}

#[derive(Debug, Clone)]
struct JoinNode {
    left: PhysNode,
    right: PhysNode,
    kind: JoinKind,
    on: JOn,
    /// Left / right side widths (for NULL padding in outer joins).
    lw: usize,
    rw: usize,
}

#[derive(Debug, Clone)]
enum JOn {
    None,
    Prog {
        prog: Program,
        /// `(left offset, right offset)` when ON is a single qualified
        /// equality — enables the hash path, mirroring the interpreter.
        equi: Option<(usize, usize)>,
        /// By-reference fast path over the combined `(lrow, rrow)`
        /// layout — skips the per-pair scratch-row materialization in
        /// the nested loop.
        fast: Option<FastPred>,
    },
    Using(Vec<(usize, usize)>),
}

#[derive(Debug, Clone)]
enum Access {
    Full,
    /// Probe the `(table, col)` hash index with `key`; when taken, the
    /// filter at `filter_idx` is already satisfied and is skipped.
    IndexEq {
        col: usize,
        key: Value,
        filter_idx: usize,
    },
}

#[derive(Debug, Clone)]
struct CFilter {
    /// Canonical-layout predicate, used on the single-unit fast paths
    /// where the working row IS the canonical row.
    prog: Program,
    /// Executed step after which the filter can run; None = deferred.
    step: Option<usize>,
    /// Columns the predicate reads, as `(executed step, local column)`
    /// gather coordinates — `compose` evaluates over just these instead
    /// of materializing full join rows.
    gather: Vec<(u32, u32)>,
    /// `prog` remapped so column `i` reads `gather[i]`.
    gprog: Program,
    /// Single-comparison fast path, evaluated by reference (no clones,
    /// no program dispatch). `None` falls back to batched evaluation.
    fast: Option<FastPred>,
}

/// One predicate operand, pre-resolved to a gather coordinate or an
/// inlined constant.
#[derive(Debug, Clone)]
enum ValRef {
    Col((u32, u32)),
    Const(Value),
    /// Scalar subquery slot, resolved against the evaluation slots.
    Slot(usize),
}

/// A predicate tree of comparisons, NULL tests, and three-valued
/// AND/OR/NOT, pre-resolved to gather coordinates so it evaluates on
/// borrowed [`Value`]s with no clones and no program dispatch.
/// Semantically identical to running the program: each node calls the
/// same `crate::exec` helper its `POp` counterpart dispatches to.
#[derive(Debug, Clone)]
enum FastPred {
    Cmp {
        l: ValRef,
        r: ValRef,
        op: CompareOp,
    },
    IsNull {
        v: ValRef,
        negated: bool,
    },
    Between {
        v: ValRef,
        lo: ValRef,
        hi: ValRef,
        negated: bool,
    },
    InList {
        v: ValRef,
        items: Vec<ValRef>,
        negated: bool,
    },
    LikeConst {
        v: ValRef,
        matcher: LikeMatcher,
        negated: bool,
    },
    InSlot {
        v: ValRef,
        slot: usize,
        negated: bool,
    },
    Exists {
        slot: usize,
        negated: bool,
    },
    And(Box<FastPred>, Box<FastPred>),
    Or(Box<FastPred>, Box<FastPred>),
    Not(Box<FastPred>),
}

const NULL_VALUE: Value = Value::Null;

/// Mixed operand/predicate stack entry used while pattern-matching a
/// postfix program into a [`FastPred`] tree.
enum FpNode {
    Val(ValRef),
    Pred(FastPred),
}

impl FastPred {
    /// Build from a gather-remapped program when every op is a
    /// comparison, NULL test, BETWEEN, constant-pattern LIKE, IN,
    /// subquery-slot test, or boolean combinator. Any other op
    /// (arithmetic, CASE, dynamic LIKE, aggregates, ...) bails to the
    /// batched evaluator.
    fn of(gprog: &Program, gather: &[(u32, u32)]) -> Option<FastPred> {
        let mut stack: Vec<FpNode> = Vec::new();
        for op in &gprog.ops {
            match op {
                POp::Col(i) => stack.push(FpNode::Val(ValRef::Col(gather.get(*i).copied()?))),
                POp::Const(v) => stack.push(FpNode::Val(ValRef::Const(v.clone()))),
                POp::ScalarSlot(slot) => stack.push(FpNode::Val(ValRef::Slot(*slot))),
                POp::Cmp(c) => {
                    let (FpNode::Val(r), FpNode::Val(l)) = (stack.pop()?, stack.pop()?) else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::Cmp { l, r, op: *c }));
                }
                POp::IsNull { negated } => {
                    let FpNode::Val(v) = stack.pop()? else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::IsNull {
                        v,
                        negated: *negated,
                    }));
                }
                POp::And3 | POp::Or3 => {
                    let (FpNode::Pred(b), FpNode::Pred(a)) = (stack.pop()?, stack.pop()?) else {
                        return None;
                    };
                    let node = if matches!(op, POp::And3) {
                        FastPred::And(Box::new(a), Box::new(b))
                    } else {
                        FastPred::Or(Box::new(a), Box::new(b))
                    };
                    stack.push(FpNode::Pred(node));
                }
                POp::Not3 => {
                    let FpNode::Pred(a) = stack.pop()? else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::Not(Box::new(a))));
                }
                POp::Between { negated } => {
                    let (FpNode::Val(hi), FpNode::Val(lo), FpNode::Val(v)) =
                        (stack.pop()?, stack.pop()?, stack.pop()?)
                    else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::Between {
                        v,
                        lo,
                        hi,
                        negated: *negated,
                    }));
                }
                POp::InList { negated, n } => {
                    let mut items: Vec<ValRef> = Vec::with_capacity(*n);
                    for _ in 0..*n {
                        let FpNode::Val(x) = stack.pop()? else {
                            return None;
                        };
                        items.push(x);
                    }
                    // popped last-to-first; restore the program's
                    // left-to-right probe order
                    items.reverse();
                    let FpNode::Val(v) = stack.pop()? else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::InList {
                        v,
                        items,
                        negated: *negated,
                    }));
                }
                POp::LikeConst { negated, matcher } => {
                    let FpNode::Val(v) = stack.pop()? else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::LikeConst {
                        v,
                        matcher: matcher.clone(),
                        negated: *negated,
                    }));
                }
                POp::InSlot { negated, slot } => {
                    let FpNode::Val(v) = stack.pop()? else {
                        return None;
                    };
                    stack.push(FpNode::Pred(FastPred::InSlot {
                        v,
                        slot: *slot,
                        negated: *negated,
                    }));
                }
                POp::ExistsSlot { negated, slot } => {
                    stack.push(FpNode::Pred(FastPred::Exists {
                        slot: *slot,
                        negated: *negated,
                    }));
                }
                _ => return None,
            }
        }
        match (stack.pop()?, stack.is_empty()) {
            (FpNode::Pred(p), true) => Some(p),
            _ => None,
        }
    }

    /// Three-valued evaluation; `at` resolves a gather coordinate and
    /// `slots` holds pre-evaluated subquery results.
    fn eval_tri<'a, F>(&'a self, at: &F, slots: &'a [SlotVal]) -> Option<bool>
    where
        F: Fn((u32, u32)) -> &'a Value,
    {
        let val = |v: &'a ValRef| -> &'a Value {
            match v {
                ValRef::Col(c) => at(*c),
                ValRef::Const(k) => k,
                ValRef::Slot(i) => match slots.get(*i) {
                    Some(SlotVal::Scalar(s)) => s,
                    _ => &NULL_VALUE,
                },
            }
        };
        match self {
            FastPred::Cmp { l, r, op } => {
                crate::exec::tri(&crate::exec::compare(*op, val(l), val(r)))
            }
            FastPred::IsNull { v, negated } => Some(val(v).is_null() != *negated),
            FastPred::Between { v, lo, hi, negated } => crate::exec::tri(
                &crate::program::between_value(val(v), val(lo), val(hi), *negated),
            ),
            FastPred::InList { v, items, negated } => {
                let v = val(v);
                let mut hit: Option<bool> = Some(false);
                for item in items {
                    match v.sql_eq(val(item)) {
                        Some(true) => {
                            hit = Some(true);
                            break;
                        }
                        None => hit = None,
                        Some(false) => {}
                    }
                }
                if *negated {
                    crate::exec::not3(hit)
                } else {
                    hit
                }
            }
            FastPred::LikeConst {
                v,
                matcher,
                negated,
            } => crate::exec::tri(&crate::program::like_const_value(val(v), matcher, *negated)),
            FastPred::InSlot { v, slot, negated } => crate::exec::tri(
                &crate::program::in_slot_value(val(v), slots.get(*slot), *negated),
            ),
            FastPred::Exists { slot, negated } => match slots.get(*slot) {
                Some(SlotVal::Set(vals)) => Some(vals.is_empty() == *negated),
                _ => None,
            },
            FastPred::And(a, b) => crate::exec::and3(a.eval_tri(at, slots), b.eval_tri(at, slots)),
            FastPred::Or(a, b) => crate::exec::or3(a.eval_tri(at, slots), b.eval_tri(at, slots)),
            FastPred::Not(a) => crate::exec::not3(a.eval_tri(at, slots)),
        }
    }

    fn eval_tuple(&self, sources: &[SourceRows<'_>], t: &[u32], slots: &[SlotVal]) -> bool {
        self.eval_tri(&|c: (u32, u32)| gather_ref(sources, t, c.0, c.1), slots) == Some(true)
    }

    /// Evaluate against a single base row (single-unit plans: every
    /// gather coordinate has step 0 and `local` indexes the row).
    fn eval_row(&self, row: &[Value], slots: &[SlotVal]) -> bool {
        self.eval_tri(
            &|c: (u32, u32)| row.get(c.1 as usize).unwrap_or(&NULL_VALUE),
            slots,
        ) == Some(true)
    }
}

#[derive(Debug, Clone)]
struct StepJoin {
    hash: Option<HashSpec>,
}

/// Hash-join spec for one comma step: build on the incoming unit's
/// `unit_col`, probe with the column gathered from the already-joined
/// tuple at `(acc_step, acc_local)`. The equality filter at `filter_idx`
/// is consumed by the join.
#[derive(Debug, Clone)]
struct HashSpec {
    acc_step: usize,
    acc_local: usize,
    unit_col: usize,
    filter_idx: usize,
    /// `None`: always hash (cost-model decision for WHERE equalities).
    /// `Some(t)`: hash only when the step's row product exceeds `t` —
    /// mirrors the interpreter's explicit-join fast path so flattened
    /// INNER joins report the same `join_pairs`; below the threshold the
    /// step nested-loops and the ON filter runs normally.
    threshold: Option<usize>,
}

/// The interpreter's product threshold above which an explicit
/// single-equality join switches from nested loop to hash.
const EXPLICIT_JOIN_HASH_MIN: usize = 4096;

#[derive(Debug, Clone)]
struct PhysSlot {
    /// Scalar subquery (single value) vs IN/EXISTS row set.
    scalar: bool,
    query: PhysQuery,
}

#[derive(Debug, Clone)]
struct Grouping {
    keys: Vec<Program>,
    aggs: Vec<AggSpec>,
    having: Option<Program>,
    items: Vec<Program>,
}

#[derive(Debug, Clone)]
struct AggSpec {
    upper: String,
    /// None = `COUNT(*)`.
    arg: Option<Program>,
    distinct: bool,
}

#[derive(Debug, Clone)]
enum ProjItem {
    /// `SELECT *`.
    All,
    /// `SELECT t.*` — pre-resolved column offsets.
    Qualified(Vec<usize>),
    Expr(Program),
}

#[derive(Debug, Clone)]
enum OrderKey {
    /// Sort by output column `i` (alias / item match).
    Output(usize),
    /// Sort by an expression over the working row.
    Plain(Program),
    /// Sort by a grouped expression (aggregates allowed).
    Grouped(Program),
}

/// Compile-time CTE metadata for one declaration.
#[derive(Debug, Clone)]
struct CteMeta {
    name: String,
    cols: Vec<String>,
}

enum CteHit {
    Found {
        up: usize,
        pos: usize,
        cols: Vec<String>,
    },
    Missing,
    Ambiguous,
}

struct Compiler<'a> {
    db: &'a Database,
    cost: CostModel,
    /// CTE scopes, innermost last; each level lists declarations in order.
    ctes: Vec<Vec<CteMeta>>,
    /// Inside a subquery slot: restrict to single-table scans so the
    /// runtime cannot hit the row budget (slots are evaluated eagerly,
    /// and an eager ResourceLimit must not differ from the interpreter's
    /// lazy one).
    strict: bool,
}

impl<'a> Compiler<'a> {
    fn compile_q(&mut self, q: &Query) -> Option<PhysQuery> {
        self.ctes.push(Vec::new());
        let out = self.compile_q_inner(q);
        self.ctes.pop();
        out
    }

    fn compile_q_inner(&mut self, q: &Query) -> Option<PhysQuery> {
        let mut ctes = Vec::with_capacity(q.ctes.len());
        for cte in &q.ctes {
            // the body sees only *earlier* declarations at this level
            // (meta is pushed after compiling), mirroring the interpreter,
            // where a self-reference resolves to an outer CTE or table.
            let body = self.compile_q(&cte.query)?;
            let meta = CteMeta {
                name: cte.name.clone(),
                cols: body.out_cols().to_vec(),
            };
            self.ctes.last_mut()?.push(meta);
            ctes.push(body);
        }
        let body = self.compile_set(&q.body, &q.order_by)?;
        // the interpreter applies LIMIT/TOP only at the query level; a TOP
        // on a set-operation side is (bug-compatibly) ignored.
        let limit = q.limit.or(match &body {
            PhysSet::Select(s) => s.top,
            PhysSet::SetOp { .. } => None,
        });
        Some(PhysQuery { ctes, body, limit })
    }

    /// Resolve a FROM name against CTE scopes, innermost first.
    ///
    /// Two *differently-cased* declarations matching the same reference
    /// are reported [`CteHit::Ambiguous`] (the interpreter's HashMap makes
    /// the winner nondeterministic, so the compiler refuses). Exact
    /// duplicates follow HashMap overwrite: the latest declaration wins.
    fn lookup_cte(&self, name: &str) -> CteHit {
        for (up, level) in self.ctes.iter().rev().enumerate() {
            let mut hit: Option<(usize, &CteMeta)> = None;
            let mut first_exact: Option<&str> = None;
            let mut ambiguous = false;
            for (pos, meta) in level.iter().enumerate() {
                if !meta.name.eq_ignore_ascii_case(name) {
                    continue;
                }
                match first_exact {
                    None => first_exact = Some(&meta.name),
                    Some(seen) if seen != meta.name => ambiguous = true,
                    Some(_) => {}
                }
                hit = Some((pos, meta));
            }
            if ambiguous {
                return CteHit::Ambiguous;
            }
            if let Some((pos, meta)) = hit {
                return CteHit::Found {
                    up,
                    pos,
                    cols: meta.cols.clone(),
                };
            }
        }
        CteHit::Missing
    }

    fn compile_set(&mut self, body: &SetExpr, order_by: &[OrderItem]) -> Option<PhysSet> {
        match body {
            SetExpr::Select(s) => {
                Some(PhysSet::Select(Box::new(self.compile_select(s, order_by)?)))
            }
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.compile_set(left, &[])?;
                let r = self.compile_set(right, &[])?;
                // the interpreter sorts set-op results by *output column
                // name* only; anything else is Unsupported → reject so the
                // fallback reproduces the error.
                let lcols = l.cols();
                let mut keys = Vec::with_capacity(order_by.len());
                for item in order_by {
                    let Expr::Column(c) = &item.expr else {
                        return None;
                    };
                    if c.qualifier.is_some() {
                        return None;
                    }
                    let idx = lcols.iter().position(|n| n.eq_ignore_ascii_case(&c.name))?;
                    keys.push((idx, item.desc));
                }
                Some(PhysSet::SetOp {
                    op: *op,
                    all: *all,
                    left: Box::new(l),
                    right: Box::new(r),
                    keys,
                })
            }
        }
    }

    /// Compile one FROM unit. Returns the node, its qualified columns, and
    /// a cardinality estimate for the planner.
    fn compile_table_ref(&mut self, tr: &TableRef) -> Option<(PhysNode, Vec<QCol>, f64)> {
        match tr {
            TableRef::Named { name, alias } => {
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                match self.lookup_cte(name) {
                    CteHit::Ambiguous => None,
                    CteHit::Found { up, pos, cols } => {
                        let qcols = cols
                            .iter()
                            .map(|c| QCol {
                                binding: Some(binding.clone()),
                                name: c.clone(),
                            })
                            .collect::<Vec<_>>();
                        let width = qcols.len();
                        Some((
                            PhysNode::Scan {
                                src: ScanSrc::Cte { up, pos },
                                width,
                            },
                            qcols,
                            self.cost.default_card,
                        ))
                    }
                    CteHit::Missing => {
                        let rel = self.db.table(name)?;
                        let qcols = rel
                            .columns
                            .iter()
                            .map(|c| QCol {
                                binding: Some(binding.clone()),
                                name: c.clone(),
                            })
                            .collect::<Vec<_>>();
                        let width = qcols.len();
                        Some((
                            PhysNode::Scan {
                                src: ScanSrc::Table(name.clone()),
                                width,
                            },
                            qcols,
                            rel.rows.len() as f64,
                        ))
                    }
                }
            }
            TableRef::Derived { query, alias } => {
                if self.strict {
                    return None;
                }
                let pq = self.compile_q(query)?;
                let binding = alias.clone().unwrap_or_default();
                let qcols = pq
                    .out_cols()
                    .iter()
                    .map(|c| QCol {
                        binding: Some(binding.clone()),
                        name: c.clone(),
                    })
                    .collect::<Vec<_>>();
                Some((
                    PhysNode::Derived(Box::new(pq)),
                    qcols,
                    self.cost.default_card,
                ))
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                if self.strict {
                    return None;
                }
                let (lnode, lcols, lest) = self.compile_table_ref(left)?;
                let (rnode, rcols, rest) = self.compile_table_ref(right)?;
                let mut combined = lcols.clone();
                combined.extend(rcols.iter().cloned());
                let mut no_slots = Vec::new();
                let on = match constraint {
                    JoinConstraint::None => JOn::None,
                    JoinConstraint::On(e) => {
                        let equi = equi_join_columns(e, &lcols, &rcols);
                        let ops = self.compile_plain(e, &combined, &mut no_slots, false)?;
                        let prog = Program::new(ops);
                        let identity: Vec<(u32, u32)> =
                            (0..combined.len() as u32).map(|i| (0, i)).collect();
                        let fast = FastPred::of(&prog, &identity);
                        JOn::Prog { prog, equi, fast }
                    }
                    JoinConstraint::Using(names) => {
                        let mut pairs = Vec::with_capacity(names.len());
                        for n in names {
                            let li = lcols.iter().position(|c| c.name.eq_ignore_ascii_case(n))?;
                            let ri = rcols.iter().position(|c| c.name.eq_ignore_ascii_case(n))?;
                            pairs.push((li, ri));
                        }
                        JOn::Using(pairs)
                    }
                };
                let connected = matches!(&on, JOn::Prog { equi: Some(_), .. });
                let est = self.cost.comma_join_estimate(lest, rest, connected);
                Some((
                    PhysNode::Join(Box::new(JoinNode {
                        left: lnode,
                        right: rnode,
                        kind: *kind,
                        on,
                        lw: lcols.len(),
                        rw: rcols.len(),
                    })),
                    combined,
                    est,
                ))
            }
        }
    }
}

impl PhysQuery {
    fn out_cols(&self) -> &[String] {
        self.body.cols()
    }
}

impl PhysSet {
    fn cols(&self) -> &[String] {
        match self {
            PhysSet::Select(s) => &s.out_cols,
            PhysSet::SetOp { left, .. } => left.cols(),
        }
    }
}

// ----- SELECT block compilation -----

impl<'a> Compiler<'a> {
    /// Flatten one FROM unit into pipeline units. INNER joins decompose
    /// into their operands with the ON constraint lowered to a canonical
    /// conjunct (collected in `on_progs`), so they run through the tuple
    /// pipeline instead of materializing; outer joins and USING keep
    /// their opaque [`PhysNode::Join`]. Returns the subtree's columns;
    /// `base` is the canonical offset where they start.
    #[allow(clippy::too_many_arguments)]
    fn flatten_unit(
        &mut self,
        tr: &TableRef,
        base: usize,
        units: &mut Vec<PhysNode>,
        unit_cols: &mut Vec<Vec<QCol>>,
        est: &mut Vec<f64>,
        on_progs: &mut Vec<Program>,
    ) -> Option<Vec<QCol>> {
        if let TableRef::Join {
            left,
            right,
            kind: JoinKind::Inner,
            constraint,
        } = tr
        {
            if !self.strict && !matches!(constraint, JoinConstraint::Using(_)) {
                let lcols = self.flatten_unit(left, base, units, unit_cols, est, on_progs)?;
                let rcols =
                    self.flatten_unit(right, base + lcols.len(), units, unit_cols, est, on_progs)?;
                let mut combined = lcols;
                combined.extend(rcols.iter().cloned());
                if let JoinConstraint::On(e) = constraint {
                    // same restriction as the opaque join path: no
                    // subqueries inside ON
                    let mut no_slots = Vec::new();
                    let ops = self.compile_plain(e, &combined, &mut no_slots, false)?;
                    on_progs.push(Program::new(ops).remap_cols(|c| c + base));
                }
                return Some(combined);
            }
        }
        let (node, qcols, e) = self.compile_table_ref(tr)?;
        units.push(node);
        unit_cols.push(qcols.clone());
        est.push(e);
        Some(qcols)
    }

    fn compile_select(&mut self, s: &Select, order_by: &[OrderItem]) -> Option<PhysSelect> {
        // FROM units (INNER join trees flatten into the pipeline)
        let mut units = Vec::new();
        let mut unit_cols: Vec<Vec<QCol>> = Vec::new();
        let mut est: Vec<f64> = Vec::new();
        let mut on_progs: Vec<Program> = Vec::new();
        for tr in &s.from {
            let base = unit_cols.iter().map(|c| c.len()).sum();
            self.flatten_unit(
                tr,
                base,
                &mut units,
                &mut unit_cols,
                &mut est,
                &mut on_progs,
            )?;
        }
        if self.strict
            && (units.len() > 1 || units.iter().any(|u| !matches!(u, PhysNode::Scan { .. })))
        {
            return None;
        }
        let n = units.len();

        // canonical layout: FROM-order concatenation of unit columns
        let mut layout: Vec<QCol> = Vec::new();
        let mut unit_offsets = Vec::with_capacity(n);
        let mut col_unit: Vec<usize> = Vec::new();
        for (u, cols) in unit_cols.iter().enumerate() {
            unit_offsets.push(layout.len());
            for c in cols {
                layout.push(c.clone());
                col_unit.push(u);
            }
        }

        // WHERE conjuncts → canonical programs
        let mut slots: Vec<PhysSlot> = Vec::new();
        let mut conjuncts = Vec::new();
        if let Some(w) = &s.selection {
            split_conjuncts(w, &mut conjuncts);
        }
        // (program, deferred, from_on): ON conjuncts first — they run
        // before WHERE in the interpreter's join-then-filter order
        let mut canon_filters: Vec<(Program, bool, bool)> =
            Vec::with_capacity(on_progs.len() + conjuncts.len());
        for p in on_progs {
            canon_filters.push((p, false, true));
        }
        for c in &conjuncts {
            let deferred = contains_subquery(c);
            let ops = self.compile_plain(c, &layout, &mut slots, true)?;
            canon_filters.push((Program::new(ops), deferred, false));
        }

        // join order: only comma lists of 3+ units are worth reordering
        // (the fuzzer emits at most two; hand-written Join-Order queries
        // use explicit JOIN nodes, which keep their shape)
        let exec_order = if n >= 3 {
            let mut edges = Vec::new();
            for (prog, deferred, _) in &canon_filters {
                if *deferred {
                    continue;
                }
                if let Some((a, b)) = equi_cols_of(prog) {
                    let (ua, ub) = (col_unit[a], col_unit[b]);
                    if ua != ub {
                        edges.push((ua, ub));
                    }
                }
            }
            crate::plan::greedy_join_order(&self.cost, &est, &edges)
        } else {
            (0..n).collect()
        };
        let reordered = exec_order.iter().enumerate().any(|(i, &u)| i != u);

        // executed position of each unit
        let mut exec_pos = vec![0usize; n];
        for (i, &u) in exec_order.iter().enumerate() {
            exec_pos[u] = i;
        }
        // canonical offset → (executed step, local column) gather coords
        let coord_of = |c: usize| {
            (
                exec_pos[col_unit[c]] as u32,
                (c - unit_offsets[col_unit[c]]) as u32,
            )
        };

        // filters: assign earliest step, precompute gather coordinates so
        // `compose` can evaluate them over unmaterialized tuples
        let mut filters = Vec::with_capacity(canon_filters.len());
        let from_on: Vec<bool> = canon_filters.iter().map(|(_, _, on)| *on).collect();
        for (prog, deferred, _) in &canon_filters {
            let step = if *deferred {
                None
            } else {
                Some(
                    prog.cols()
                        .map(|c| exec_pos[col_unit[c]])
                        .max()
                        .unwrap_or(0),
                )
            };
            let mut cols: Vec<usize> = prog.cols().collect();
            cols.sort_unstable();
            cols.dedup();
            let gather: Vec<(u32, u32)> = cols.iter().map(|&c| coord_of(c)).collect();
            let gprog = prog.remap_cols(|c| cols.binary_search(&c).unwrap_or(0));
            let fast = FastPred::of(&gprog, &gather);
            filters.push(CFilter {
                prog: prog.clone(),
                step,
                gather,
                gprog,
                fast,
            });
        }

        // per-step join strategy: consume the first eligible equality
        // filter as a hash join when the cost model approves
        let mut steps = Vec::with_capacity(n.saturating_sub(1));
        let mut consumed = vec![false; filters.len()];
        let mut acc = est
            .get(*exec_order.first().unwrap_or(&0))
            .copied()
            .unwrap_or(1.0)
            .max(1.0);
        for (k, &u) in exec_order.iter().enumerate().take(n).skip(1) {
            let unit_est = est[u].max(1.0);
            let mut hash = None;
            for (fi, f) in filters.iter().enumerate() {
                if consumed[fi] || f.step != Some(k) {
                    continue;
                }
                // ON-derived equalities always get a spec (gated at
                // runtime by the interpreter's product threshold); WHERE
                // equalities hash on the cost model's say-so
                if !from_on[fi] && !self.cost.hash_join_beneficial(acc, unit_est) {
                    continue;
                }
                let Some((a, b)) = equi_cols_of(&f.prog) else {
                    continue;
                };
                // one side on the incoming unit, the other already
                // joined at an earlier executed step
                let (acc_c, unit_c) = if col_unit[a] == u && exec_pos[col_unit[b]] < k {
                    (b, a)
                } else if col_unit[b] == u && exec_pos[col_unit[a]] < k {
                    (a, b)
                } else {
                    continue;
                };
                hash = Some(HashSpec {
                    acc_step: exec_pos[col_unit[acc_c]],
                    acc_local: acc_c - unit_offsets[col_unit[acc_c]],
                    unit_col: unit_c - unit_offsets[u],
                    filter_idx: fi,
                    threshold: from_on[fi].then_some(EXPLICIT_JOIN_HASH_MIN),
                });
                consumed[fi] = true;
                break;
            }
            acc = self.cost.comma_join_estimate(acc, unit_est, hash.is_some());
            steps.push(StepJoin { hash });
        }

        // access path: index probe on the first executed unit when it is a
        // base-table scan with a step-0 `col = constant` filter
        let mut access = Access::Full;
        if n > 0 {
            let u0 = exec_order[0];
            if matches!(
                &units[u0],
                PhysNode::Scan {
                    src: ScanSrc::Table(_),
                    ..
                }
            ) && self.cost.index_probe_beneficial(est[u0])
            {
                for (fi, f) in filters.iter().enumerate() {
                    if consumed[fi] || f.step != Some(0) {
                        continue;
                    }
                    if let Some((col, key)) = const_eq_of(&f.prog) {
                        // step 0 ⇒ the column belongs to u0; make it local
                        access = Access::IndexEq {
                            col: col - unit_offsets[u0],
                            key,
                            filter_idx: fi,
                        };
                        break;
                    }
                }
            }
        }

        // projection
        let has_aggregate = s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
            || order_by.iter().any(|o| o.expr.contains_aggregate());
        let grouped = !s.group_by.is_empty() || has_aggregate;
        let has_wildcard = s
            .items
            .iter()
            .any(|i| !matches!(i, SelectItem::Expr { .. }));
        let mut grouping = None;
        let mut items = Vec::new();
        if grouped {
            if has_wildcard {
                // the interpreter errors on wildcards in grouped queries;
                // reject so the fallback reproduces the error
                return None;
            }
            let mut keys = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                let ops = self.compile_plain(g, &layout, &mut slots, true)?;
                keys.push(Program::new(ops));
            }
            let mut aggs = Vec::new();
            let mut gitems = Vec::with_capacity(s.items.len());
            for item in &s.items {
                let SelectItem::Expr { expr, .. } = item else {
                    return None;
                };
                let ops = self.compile_grouped(expr, &layout, &mut slots, &mut aggs)?;
                gitems.push(Program::new(ops));
            }
            let having = match &s.having {
                Some(h) => {
                    let ops = self.compile_grouped(h, &layout, &mut slots, &mut aggs)?;
                    Some(Program::new(ops))
                }
                None => None,
            };
            grouping = Some(Grouping {
                keys,
                aggs,
                having,
                items: gitems,
            });
        } else {
            // bug-compatible with the interpreter: HAVING without
            // grouping is ignored on the plain path
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => items.push(ProjItem::All),
                    SelectItem::QualifiedWildcard(q) => {
                        let idxs: Vec<usize> = layout
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| {
                                c.binding
                                    .as_deref()
                                    .is_some_and(|b| b.eq_ignore_ascii_case(q))
                            })
                            .map(|(i, _)| i)
                            .collect();
                        items.push(ProjItem::Qualified(idxs));
                    }
                    SelectItem::Expr { expr, .. } => {
                        let ops = self.compile_plain(expr, &layout, &mut slots, true)?;
                        // bare column references project without program
                        // dispatch (same NULL padding for short rows)
                        if let [POp::Col(i)] = ops.as_slice() {
                            items.push(ProjItem::Qualified(vec![*i]));
                        } else {
                            items.push(ProjItem::Expr(Program::new(ops)));
                        }
                    }
                }
            }
        }

        // ORDER BY keys
        let mut order = Vec::with_capacity(order_by.len());
        for o in order_by {
            let key = match alias_index(&o.expr, s) {
                Some(i) => {
                    if !grouped && has_wildcard {
                        // with wildcards the interpreter's output-position
                        // bookkeeping diverges from item indexes; punt
                        return None;
                    }
                    OrderKey::Output(i)
                }
                None => {
                    if grouped {
                        let mut aggs_scratch = match &mut grouping {
                            Some(g) => std::mem::take(&mut g.aggs),
                            None => Vec::new(),
                        };
                        let ops =
                            self.compile_grouped(&o.expr, &layout, &mut slots, &mut aggs_scratch)?;
                        if let Some(g) = &mut grouping {
                            g.aggs = aggs_scratch;
                        }
                        OrderKey::Grouped(Program::new(ops))
                    } else {
                        let ops = self.compile_plain(&o.expr, &layout, &mut slots, true)?;
                        OrderKey::Plain(Program::new(ops))
                    }
                }
            };
            order.push((key, o.desc));
        }

        // late-materialization spec: mark the canonical columns the
        // projection / grouping / ordering phases actually read; the rest
        // never leave the source tables
        let mut needed = vec![false; layout.len()];
        match &grouping {
            Some(g) => {
                for p in g.keys.iter().chain(&g.items).chain(&g.having) {
                    p.cols().for_each(|c| needed[c] = true);
                }
                for a in &g.aggs {
                    if let Some(p) = &a.arg {
                        p.cols().for_each(|c| needed[c] = true);
                    }
                }
            }
            None => {
                for item in &items {
                    match item {
                        ProjItem::All => needed.iter_mut().for_each(|b| *b = true),
                        ProjItem::Qualified(idxs) => idxs.iter().for_each(|&i| needed[i] = true),
                        ProjItem::Expr(p) => p.cols().for_each(|c| needed[c] = true),
                    }
                }
            }
        }
        for (key, _) in &order {
            match key {
                OrderKey::Plain(p) | OrderKey::Grouped(p) => {
                    p.cols().for_each(|c| needed[c] = true);
                }
                OrderKey::Output(_) => {}
            }
        }
        let mat: Vec<Option<(u32, u32)>> = (0..layout.len())
            .map(|c| needed[c].then(|| coord_of(c)))
            .collect();

        let out_cols = projection_names(s, &layout);
        // Empty-prune: an unsatisfiable WHERE on an ungrouped block (no
        // aggregates, so empty input means empty output) can never emit a
        // row. Proven with no data assumptions, so it is sound for any
        // database, not just generated witnesses.
        let empty_prune = grouping.is_none()
            && s.selection
                .as_ref()
                .is_some_and(|w| squ_sema::never_true(w, &squ_sema::Assumptions::none()));
        Some(PhysSelect {
            units,
            exec_order,
            reordered,
            mat,
            access,
            filters,
            steps,
            slots,
            grouping,
            items,
            order,
            distinct: s.distinct,
            top: s.top,
            out_cols,
            empty_prune,
        })
    }

    /// Lower a scalar expression over `layout` into postfix ops. `None`
    /// rejects compilation (unknown column/function, aggregates,
    /// subqueries where `allow_sub` is false, or a slot that cannot be
    /// hoisted).
    fn compile_plain(
        &mut self,
        e: &Expr,
        layout: &[QCol],
        slots: &mut Vec<PhysSlot>,
        allow_sub: bool,
    ) -> Option<Vec<POp>> {
        let mut ops = Vec::new();
        self.lower(e, layout, slots, allow_sub, &mut ops)?;
        Some(ops)
    }

    fn lower(
        &mut self,
        e: &Expr,
        layout: &[QCol],
        slots: &mut Vec<PhysSlot>,
        allow_sub: bool,
        ops: &mut Vec<POp>,
    ) -> Option<()> {
        match e {
            Expr::Column(c) => ops.push(POp::Col(resolve_col(c, layout)?)),
            Expr::Literal(l) => ops.push(POp::Const(literal_value(l))),
            Expr::Compare { op, left, right } => {
                self.lower(left, layout, slots, allow_sub, ops)?;
                self.lower(right, layout, slots, allow_sub, ops)?;
                ops.push(POp::Cmp(*op));
            }
            Expr::And(a, b) => {
                self.lower(a, layout, slots, allow_sub, ops)?;
                self.lower(b, layout, slots, allow_sub, ops)?;
                ops.push(POp::And3);
            }
            Expr::Or(a, b) => {
                self.lower(a, layout, slots, allow_sub, ops)?;
                self.lower(b, layout, slots, allow_sub, ops)?;
                ops.push(POp::Or3);
            }
            Expr::Not(inner) => {
                self.lower(inner, layout, slots, allow_sub, ops)?;
                ops.push(POp::Not3);
            }
            Expr::IsNull { expr, negated } => {
                self.lower(expr, layout, slots, allow_sub, ops)?;
                ops.push(POp::IsNull { negated: *negated });
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                self.lower(expr, layout, slots, allow_sub, ops)?;
                self.lower(low, layout, slots, allow_sub, ops)?;
                self.lower(high, layout, slots, allow_sub, ops)?;
                ops.push(POp::Between { negated: *negated });
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                self.lower(expr, layout, slots, allow_sub, ops)?;
                for item in list {
                    self.lower(item, layout, slots, allow_sub, ops)?;
                }
                ops.push(POp::InList {
                    negated: *negated,
                    n: list.len(),
                });
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                if !allow_sub {
                    return None;
                }
                self.lower(expr, layout, slots, allow_sub, ops)?;
                let slot = self.compile_slot(subquery, false, slots)?;
                ops.push(POp::InSlot {
                    negated: *negated,
                    slot,
                });
            }
            Expr::Exists { subquery, negated } => {
                if !allow_sub {
                    return None;
                }
                let slot = self.compile_slot(subquery, false, slots)?;
                ops.push(POp::ExistsSlot {
                    negated: *negated,
                    slot,
                });
            }
            Expr::ScalarSubquery(q) => {
                if !allow_sub {
                    return None;
                }
                let slot = self.compile_slot(q, true, slots)?;
                ops.push(POp::ScalarSlot(slot));
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                self.lower(expr, layout, slots, allow_sub, ops)?;
                if let Expr::Literal(Literal::String(p)) = pattern.as_ref() {
                    ops.push(POp::LikeConst {
                        negated: *negated,
                        matcher: LikeMatcher::new(p),
                    });
                } else {
                    self.lower(pattern, layout, slots, allow_sub, ops)?;
                    ops.push(POp::LikeDyn { negated: *negated });
                }
            }
            Expr::Function { name, args, .. } => {
                if is_aggregate_name(name) {
                    return None; // aggregates only via compile_grouped
                }
                let upper = name.to_ascii_uppercase();
                if !is_supported_scalar(&upper) {
                    return None;
                }
                for a in args {
                    self.lower(a, layout, slots, allow_sub, ops)?;
                }
                ops.push(POp::Call {
                    name: upper,
                    argc: args.len(),
                });
            }
            Expr::Wildcard => return None,
            Expr::Arith { op, left, right } => {
                self.lower(left, layout, slots, allow_sub, ops)?;
                self.lower(right, layout, slots, allow_sub, ops)?;
                ops.push(POp::Arith(*op));
            }
            Expr::Neg(inner) => {
                self.lower(inner, layout, slots, allow_sub, ops)?;
                ops.push(POp::Neg);
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    self.lower(op, layout, slots, allow_sub, ops)?;
                }
                for (w, t) in branches {
                    self.lower(w, layout, slots, allow_sub, ops)?;
                    self.lower(t, layout, slots, allow_sub, ops)?;
                }
                if let Some(e) = else_expr {
                    self.lower(e, layout, slots, allow_sub, ops)?;
                }
                ops.push(POp::Case {
                    has_operand: operand.is_some(),
                    branches: branches.len(),
                    has_else: else_expr.is_some(),
                });
            }
            Expr::Cast { expr, type_name } => {
                self.lower(expr, layout, slots, allow_sub, ops)?;
                ops.push(POp::Cast(SqlType::from_name(type_name)));
            }
        }
        Some(())
    }

    /// Lower a grouped expression: aggregate calls become [`POp::Agg`]
    /// slots; non-aggregate subtrees get the empty-group NULL guard the
    /// interpreter applies before descending.
    fn compile_grouped(
        &mut self,
        e: &Expr,
        layout: &[QCol],
        slots: &mut Vec<PhysSlot>,
        aggs: &mut Vec<AggSpec>,
    ) -> Option<Vec<POp>> {
        let mut ops = Vec::new();
        self.lower_grouped(e, layout, slots, aggs, &mut ops)?;
        Some(ops)
    }

    fn lower_grouped(
        &mut self,
        e: &Expr,
        layout: &[QCol],
        slots: &mut Vec<PhysSlot>,
        aggs: &mut Vec<AggSpec>,
        ops: &mut Vec<POp>,
    ) -> Option<()> {
        match e {
            Expr::Function {
                name,
                args,
                distinct,
            } if is_aggregate_name(name) => {
                let upper = name.to_ascii_uppercase();
                let arg = if upper == "COUNT" && matches!(args.first(), Some(Expr::Wildcard) | None)
                {
                    None // COUNT(*) — checked before DISTINCT, like the interpreter
                } else {
                    let a = args.first()?;
                    Some(Program::new(self.compile_plain(a, layout, slots, true)?))
                };
                aggs.push(AggSpec {
                    upper,
                    arg,
                    distinct: *distinct,
                });
                ops.push(POp::Agg(aggs.len() - 1));
            }
            Expr::And(a, b) => {
                self.lower_grouped(a, layout, slots, aggs, ops)?;
                self.lower_grouped(b, layout, slots, aggs, ops)?;
                ops.push(POp::And3);
            }
            Expr::Or(a, b) => {
                self.lower_grouped(a, layout, slots, aggs, ops)?;
                self.lower_grouped(b, layout, slots, aggs, ops)?;
                ops.push(POp::Or3);
            }
            Expr::Not(inner) => {
                self.lower_grouped(inner, layout, slots, aggs, ops)?;
                ops.push(POp::Not3);
            }
            Expr::Compare { op, left, right } => {
                self.lower_grouped(left, layout, slots, aggs, ops)?;
                self.lower_grouped(right, layout, slots, aggs, ops)?;
                ops.push(POp::Cmp(*op));
            }
            Expr::Arith { op, left, right } => {
                self.lower_grouped(left, layout, slots, aggs, ops)?;
                self.lower_grouped(right, layout, slots, aggs, ops)?;
                ops.push(POp::Arith(*op));
            }
            other => {
                if other.contains_aggregate() {
                    // an aggregate under an operator the interpreter's
                    // grouped walker doesn't descend through — reject
                    return None;
                }
                // non-aggregate subtree: the interpreter yields NULL for
                // the whole subtree on an empty group, before evaluating
                // any leaf (which could otherwise error)
                let sub = self.compile_plain(other, layout, slots, true)?;
                ops.push(POp::SkipIfEmptyGroup(sub.len()));
                ops.extend(sub);
            }
        }
        Some(())
    }

    /// Compile an uncorrelated subquery into a slot. Strict mode keeps the
    /// subquery total (single-table scans only), so eager evaluation
    /// cannot surface an error the interpreter's lazy path would not.
    fn compile_slot(
        &mut self,
        q: &Query,
        scalar: bool,
        slots: &mut Vec<PhysSlot>,
    ) -> Option<usize> {
        if scalar && !slot_scalar_safe(q) {
            return None; // could error ScalarSubqueryMultiRow at runtime
        }
        let saved = self.strict;
        self.strict = true;
        let compiled = self.compile_q(q);
        self.strict = saved;
        let query = compiled?;
        slots.push(PhysSlot { scalar, query });
        Some(slots.len() - 1)
    }
}

// ----- compile-time helpers -----

/// Leftmost canonical offset whose name (and qualifier, if present)
/// matches — the interpreter's resolution order.
fn resolve_col(c: &ColumnRef, layout: &[QCol]) -> Option<usize> {
    layout.iter().position(|qc| {
        qc.name.eq_ignore_ascii_case(&c.name)
            && match (&c.qualifier, &qc.binding) {
                (None, _) => true,
                (Some(q), Some(b)) => q.eq_ignore_ascii_case(b),
                (Some(_), None) => false,
            }
    })
}

fn literal_value(l: &Literal) -> Value {
    match l {
        Literal::Number(v) => Value::Num(*v),
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

/// Does the expression contain a subquery anywhere?
fn contains_subquery(e: &Expr) -> bool {
    if matches!(
        e,
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)
    ) {
        return true;
    }
    let mut found = false;
    e.for_each_child(&mut |c| found = found || contains_subquery(c));
    found
}

/// `[Col(a), Col(b), Cmp(Eq)]` → `(a, b)`.
fn equi_cols_of(prog: &Program) -> Option<(usize, usize)> {
    match prog.ops.as_slice() {
        [POp::Col(a), POp::Col(b), POp::Cmp(CompareOp::Eq)] => Some((*a, *b)),
        _ => None,
    }
}

/// `[Col(c), Const(k), Cmp(Eq)]` (either orientation) → `(c, k)`.
fn const_eq_of(prog: &Program) -> Option<(usize, Value)> {
    match prog.ops.as_slice() {
        [POp::Col(c), POp::Const(k), POp::Cmp(CompareOp::Eq)]
        | [POp::Const(k), POp::Col(c), POp::Cmp(CompareOp::Eq)] => Some((*c, k.clone())),
        _ => None,
    }
}

/// Can a scalar subquery be proven to return at most one row?
fn slot_scalar_safe(q: &Query) -> bool {
    let top = match &q.body {
        SetExpr::Select(s) => s.top,
        SetExpr::SetOp { .. } => None,
    };
    if matches!(q.limit.or(top), Some(0) | Some(1)) {
        return true;
    }
    let SetExpr::Select(s) = &q.body else {
        return false;
    };
    if !s.group_by.is_empty() {
        return false;
    }
    // ungrouped aggregate → exactly one row
    s.items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
        || q.order_by.iter().any(|o| o.expr.contains_aggregate())
}

/// Mirror of the interpreter's ORDER-BY alias resolution: first an
/// unqualified column name against item aliases, then structural equality
/// against item expressions. Returns the output position.
fn alias_index(e: &Expr, s: &Select) -> Option<usize> {
    if let Expr::Column(c) = e {
        if c.qualifier.is_none() {
            for (i, item) in s.items.iter().enumerate() {
                if let SelectItem::Expr { alias: Some(a), .. } = item {
                    if a.eq_ignore_ascii_case(&c.name) {
                        return Some(i);
                    }
                }
            }
        }
    }
    for (i, item) in s.items.iter().enumerate() {
        if let SelectItem::Expr { expr, .. } = item {
            if exprs_equal_modulo_case(e, expr) {
                return Some(i);
            }
        }
    }
    None
}

// ----- runtime -----

/// Materialized CTE relations of one query level, linked to enclosing
/// levels. `ScanSrc::Cte { up, .. }` walks `up` parents.
struct CteFrame<'a> {
    rels: &'a [Relation],
    parent: Option<&'a CteFrame<'a>>,
}

/// A filtered view over rows: either a selection vector into a borrowed
/// base table (the single-scan fast path — no row is cloned until
/// projection) or owned materialized rows.
enum Rows<'r> {
    Sel {
        rows: &'r [Vec<Value>],
        sel: Vec<u32>,
    },
    Owned(Vec<Vec<Value>>),
}

impl<'r> Rows<'r> {
    fn len(&self) -> usize {
        match self {
            Rows::Sel { sel, .. } => sel.len(),
            Rows::Owned(v) => v.len(),
        }
    }

    fn at(&self, i: usize) -> &[Value] {
        match self {
            Rows::Sel { rows, sel } => sel
                .get(i)
                .and_then(|&j| rows.get(j as usize))
                .map(|r| r.as_slice())
                .unwrap_or(EMPTY_ROW),
            Rows::Owned(v) => v.get(i).map(|r| r.as_slice()).unwrap_or(EMPTY_ROW),
        }
    }
}

impl PhysQuery {
    fn exec(
        &self,
        db: &Database,
        parent: Option<&CteFrame<'_>>,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        let mut rels: Vec<Relation> = Vec::with_capacity(self.ctes.len());
        for cq in &self.ctes {
            // each body sees the CTEs materialized before it
            let rel = {
                let f = CteFrame {
                    rels: &rels,
                    parent,
                };
                cq.exec(db, Some(&f), stats)?
            };
            rels.push(rel);
        }
        let f = CteFrame {
            rels: &rels,
            parent,
        };
        let mut rel = self.body.exec(db, Some(&f), stats)?;
        if let Some(lim) = self.limit {
            rel.rows.truncate(lim as usize);
        }
        Ok(rel)
    }
}

impl PhysSet {
    fn exec(
        &self,
        db: &Database,
        frame: Option<&CteFrame<'_>>,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        match self {
            PhysSet::Select(s) => s.exec(db, frame, stats),
            PhysSet::SetOp {
                op,
                all,
                left,
                right,
                keys,
            } => {
                let l = left.exec(db, frame, stats)?;
                let r = right.exec(db, frame, stats)?;
                let mut rel = combine_set(op, *all, l, r);
                if !keys.is_empty() {
                    rel.rows.sort_by(|a, b| {
                        for (idx, desc) in keys {
                            let ord = match (a.get(*idx), b.get(*idx)) {
                                (Some(x), Some(y)) => x.total_cmp(y),
                                _ => Ordering::Equal,
                            };
                            let ord = if *desc { ord.reverse() } else { ord };
                            if ord != Ordering::Equal {
                                return ord;
                            }
                        }
                        Ordering::Equal
                    });
                }
                Ok(rel)
            }
        }
    }
}

impl PhysSelect {
    fn exec(
        &self,
        db: &Database,
        frame: Option<&CteFrame<'_>>,
        stats: &mut ExecStats,
    ) -> Result<Relation, ExecError> {
        // short-circuit a block whose WHERE was proven unsatisfiable at
        // compile time: no scan, join, or slot work can contribute a row
        if self.empty_prune {
            stats.empty_prunes += 1;
            return Ok(Relation {
                columns: self.out_cols.clone(),
                rows: Vec::new(),
            });
        }
        // uncorrelated subqueries: evaluated once, eagerly (compiled slots
        // are total, so eager evaluation is unobservable vs the
        // interpreter's lazy per-use evaluation)
        let mut slotvals: Vec<SlotVal> = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            stats.subquery_evals += 1;
            let rel = s.query.exec(db, frame, stats)?;
            if s.scalar {
                let v = rel
                    .rows
                    .first()
                    .and_then(|r| r.first().cloned())
                    .unwrap_or(Value::Null);
                slotvals.push(SlotVal::Scalar(v));
            } else {
                let vals = rel
                    .rows
                    .iter()
                    .map(|r| r.first().cloned().unwrap_or(Value::Null))
                    .collect();
                slotvals.push(SlotVal::Set(vals));
            }
        }
        let mut cx = EvalCx::plain(&slotvals);
        let mut skip = vec![false; self.filters.len()];

        let n = self.units.len();
        // projection pairs: output row + per-row ORDER BY keys
        let mut pairs = if n >= 2 {
            let (sources, tuples) = self.compose(db, frame, stats, &mut cx, &mut skip)?;
            let p = match &self.grouping {
                Some(g) => {
                    let view = Rows::Owned(self.materialize_tuples(&sources, &tuples));
                    self.exec_grouped(g, &view, &mut cx)
                }
                None => self.project_tuples(&sources, &tuples, &mut cx),
            };
            p
        } else {
            let view: Rows = if n == 1 {
                if let PhysNode::Scan { src, width } = &self.units[0] {
                    let base = resolve_scan(src, db, frame, *width)?;
                    let (mut sel, consumed) = self.probe_or_scan(src, db, base, stats);
                    if let Some(fi) = consumed {
                        skip[fi] = true;
                    }
                    for pass in 0..2 {
                        for (fi, f) in self.filters.iter().enumerate() {
                            if skip[fi] || (f.step.is_some() != (pass == 0)) {
                                continue;
                            }
                            if let Some(fp) = &f.fast {
                                stats.batches += sel.len().div_ceil(BATCH_SIZE) as u64;
                                sel.retain(|&i| {
                                    fp.eval_row(
                                        base.get(i as usize).map_or(EMPTY_ROW, |r| r.as_slice()),
                                        cx.slots,
                                    )
                                });
                            } else {
                                filter_sel(&f.prog, base, &mut sel, &mut cx, stats);
                            }
                        }
                    }
                    Rows::Sel { rows: base, sel }
                } else {
                    let mut rows = exec_node(&self.units[0], db, frame, stats)?;
                    self.filter_owned(&mut rows, &mut None, &skip, &mut cx, stats);
                    Rows::Owned(rows)
                }
            } else {
                let mut rows = vec![Vec::new()];
                self.filter_owned(&mut rows, &mut None, &skip, &mut cx, stats);
                Rows::Owned(rows)
            };
            match &self.grouping {
                Some(g) => self.exec_grouped(g, &view, &mut cx),
                None => self.exec_plain(&view, &mut cx),
            }
        };
        if self.distinct {
            let mut seen: std::collections::HashSet<Vec<Value>> = std::collections::HashSet::new();
            pairs.retain(|(row, _)| seen.insert(row.clone()));
        }
        if !self.order.is_empty() {
            pairs.sort_by(|(_, ka), (_, kb)| {
                for ((_, desc), (x, y)) in self.order.iter().zip(ka.iter().zip(kb.iter())) {
                    let ord = x.total_cmp(y);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
        }
        let rows = pairs.into_iter().map(|(r, _)| r).collect();
        Ok(Relation::new(self.out_cols.clone(), rows))
    }

    /// Apply all filters (non-deferred first, then deferred) to owned rows.
    fn filter_owned(
        &self,
        rows: &mut Vec<Vec<Value>>,
        tags: &mut Option<Vec<Vec<u32>>>,
        skip: &[bool],
        cx: &mut EvalCx,
        stats: &mut ExecStats,
    ) {
        for pass in 0..2 {
            for (fi, f) in self.filters.iter().enumerate() {
                if skip[fi] || (f.step.is_some() != (pass == 0)) {
                    continue;
                }
                let flags = batch_flags(&f.prog, rows, cx, stats);
                retain_rows(rows, tags, &flags);
            }
        }
    }

    /// Index-or-scan access for the first executed unit. Returns the
    /// selection vector plus the index of a filter the probe consumed.
    fn probe_or_scan(
        &self,
        src: &ScanSrc,
        db: &Database,
        base: &[Vec<Value>],
        stats: &mut ExecStats,
    ) -> (Vec<u32>, Option<usize>) {
        if let (
            Access::IndexEq {
                col,
                key,
                filter_idx,
            },
            ScanSrc::Table(name),
        ) = (&self.access, src)
        {
            if indexes_enabled() {
                let postings = db.indexes().equality_index(name, *col, base);
                stats.index_probes += 1;
                // NULL keys match nothing (postings never hold NULL), which
                // is exactly the filter's `= NULL → UNKNOWN` behavior
                let sel: Vec<u32> = postings
                    .get(key)
                    .map(|v| v.iter().map(|&i| i as u32).collect())
                    .unwrap_or_default();
                stats.index_hits += sel.len() as u64;
                stats.rows_scanned += sel.len() as u64;
                return (sel, Some(*filter_idx));
            }
        }
        stats.rows_scanned += base.len() as u64;
        ((0..base.len() as u32).collect(), None)
    }

    /// Join 2+ comma units in executed order with late materialization:
    /// the working set is a flat buffer of tuples of per-unit row
    /// indices, so joins and filters move `u32`s instead of cloning
    /// `Value` rows. Filters run at the earliest possible step via their
    /// gather specs. Returns the per-unit backing rows plus the
    /// surviving tuples, already restored to declaration order;
    /// projection reads values straight off the sources.
    fn compose<'x>(
        &self,
        db: &'x Database,
        frame: Option<&'x CteFrame<'x>>,
        stats: &mut ExecStats,
        cx: &mut EvalCx,
        skip: &mut [bool],
    ) -> Result<(Vec<SourceRows<'x>>, Vec<u32>), ExecError> {
        let n = self.units.len();
        let mut exec_pos = vec![0usize; n];
        for (i, &u) in self.exec_order.iter().enumerate() {
            exec_pos[u] = i;
        }

        // sources[k] = backing rows of the k-th executed unit. The working
        // set is one flat buffer of `stride`-wide tuples of row indices
        // (stride = units joined so far), so joins and filters move
        // contiguous `u32`s instead of per-tuple allocations.
        let mut sources: Vec<SourceRows<'_>> = Vec::with_capacity(n);
        let u0 = self.exec_order[0];
        let mut tuples: Vec<u32>;
        if let PhysNode::Scan { src, width } = &self.units[u0] {
            let base = resolve_scan(src, db, frame, *width)?;
            let (sel, consumed) = self.probe_or_scan(src, db, base, stats);
            if let Some(fi) = consumed {
                skip[fi] = true;
            }
            tuples = sel;
            sources.push(SourceRows::Borrowed(base));
        } else {
            let rows = exec_node(&self.units[u0], db, frame, stats)?;
            tuples = (0..rows.len() as u32).collect();
            sources.push(SourceRows::Owned(rows));
        }
        self.filter_tuples(Some(0), &sources, &mut tuples, 1, skip, cx, stats);

        // remaining units
        for k in 1..n {
            let stride = k;
            let u = self.exec_order[k];
            sources.push(exec_source(&self.units[u], db, frame, stats)?);
            let right = sources.last().map(SourceRows::rows).unwrap_or(&[]);
            let count = tuples.len() / stride;
            if count.saturating_mul(right.len()) > MAX_INTERMEDIATE_ROWS {
                return Err(ExecError::ResourceLimit);
            }
            let mut next: Vec<u32>;
            // threshold-gated specs (flattened explicit joins) only hash
            // when the product clears the interpreter's cutoff; below it
            // the step nested-loops and the ON filter runs normally
            let hash_now = self.steps[k - 1].hash.as_ref().filter(|h| {
                h.threshold
                    .map_or(true, |t| count.saturating_mul(right.len()) > t)
            });
            if let Some(h) = hash_now {
                skip[h.filter_idx] = true;
                let mut table: HashMap<&Value, Vec<u32>> = HashMap::new();
                for (j, rrow) in right.iter().enumerate() {
                    if let Some(key) = rrow.get(h.unit_col) {
                        if !key.is_null() {
                            table.entry(key).or_default().push(j as u32);
                        }
                    }
                }
                next = Vec::with_capacity(tuples.len() + count);
                for t in tuples.chunks_exact(stride) {
                    let idxs = t
                        .get(h.acc_step)
                        .and_then(|&i| sources.get(h.acc_step)?.rows().get(i as usize))
                        .and_then(|r| r.get(h.acc_local))
                        .filter(|k| !k.is_null())
                        .and_then(|k| table.get(k));
                    let Some(idxs) = idxs else { continue };
                    stats.join_pairs += idxs.len() as u64;
                    for &j in idxs {
                        next.extend_from_slice(t);
                        next.push(j);
                    }
                }
            } else {
                next = Vec::with_capacity(count * right.len() * (stride + 1));
                for t in tuples.chunks_exact(stride) {
                    for j in 0..right.len() as u32 {
                        next.extend_from_slice(t);
                        next.push(j);
                    }
                }
                stats.join_pairs += (count * right.len()) as u64;
            }
            tuples = next;
            self.filter_tuples(Some(k), &sources, &mut tuples, stride + 1, skip, cx, stats);
        }

        // deferred (subquery-bearing) filters run once everything is joined
        self.filter_tuples(None, &sources, &mut tuples, n, skip, cx, stats);

        // restore declaration order: the tuples ARE the source indices the
        // old tag vectors tracked, so a stable sort over them reproduces
        // the interpreter's nested-loop row order exactly
        if self.reordered && n > 0 {
            let count = tuples.len() / n;
            let mut idx: Vec<u32> = (0..count as u32).collect();
            idx.sort_by(|&x, &y| {
                let (tx, ty) = (x as usize * n, y as usize * n);
                for &p in exec_pos.iter().take(n) {
                    let ord = tuples.get(tx + p).cmp(&tuples.get(ty + p));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            let mut sorted = Vec::with_capacity(tuples.len());
            for &i in &idx {
                let at = i as usize * n;
                sorted.extend_from_slice(&tuples[at..at + n]);
            }
            tuples = sorted;
        }

        Ok((sources, tuples))
    }

    /// Materialize canonical rows (pruned to the columns downstream
    /// phases read) from composed tuples — the grouped path still wants
    /// a row view to group over.
    fn materialize_tuples(&self, sources: &[SourceRows<'_>], tuples: &[u32]) -> Vec<Vec<Value>> {
        let n = self.units.len();
        let rows = tuples
            .chunks_exact(n.max(1))
            .map(|t| {
                self.mat
                    .iter()
                    .map(|m| match m {
                        Some((step, local)) => gather_value(sources, t, *step, *local),
                        None => Value::Null,
                    })
                    .collect()
            })
            .collect();
        rows
    }

    /// Fused projection for composed tuples on the plain (non-grouped)
    /// path: output values gather straight from the per-unit sources —
    /// each projected value is cloned exactly once, and no intermediate
    /// canonical row is built. Expression items evaluate against a
    /// reused scratch row holding just the columns programs read.
    #[allow(clippy::type_complexity)]
    fn project_tuples(
        &self,
        sources: &[SourceRows<'_>],
        tuples: &[u32],
        cx: &mut EvalCx,
    ) -> Vec<(Vec<Value>, Vec<Value>)> {
        let n = self.units.len();
        // canonical columns that expression programs (items + ORDER BY
        // keys) read; everything else projects by direct gather
        let mut expr_cols: Vec<usize> = Vec::new();
        for item in &self.items {
            if let ProjItem::Expr(p) = item {
                expr_cols.extend(p.cols());
            }
        }
        for (k, _) in &self.order {
            if let OrderKey::Plain(p) | OrderKey::Grouped(p) = k {
                expr_cols.extend(p.cols());
            }
        }
        expr_cols.sort_unstable();
        expr_cols.dedup();
        let mut scratch = vec![Value::Null; self.mat.len()];

        let fixed: usize = self
            .items
            .iter()
            .map(|it| match it {
                ProjItem::All => self.mat.len(),
                ProjItem::Qualified(idxs) => idxs.len(),
                ProjItem::Expr(_) => 1,
            })
            .sum();
        let gather = |t: &[u32], c: usize| match self.mat.get(c) {
            Some(Some((step, local))) => gather_value(sources, t, *step, *local),
            _ => Value::Null,
        };
        let mut out = Vec::with_capacity(tuples.len() / n.max(1));
        for t in tuples.chunks_exact(n.max(1)) {
            for &c in &expr_cols {
                scratch[c] = gather(t, c);
            }
            let mut vals = Vec::with_capacity(fixed);
            for item in &self.items {
                match item {
                    ProjItem::All => vals.extend((0..self.mat.len()).map(|c| gather(t, c))),
                    ProjItem::Qualified(idxs) => {
                        vals.extend(idxs.iter().map(|&j| gather(t, j)));
                    }
                    ProjItem::Expr(p) => vals.push(p.eval(&scratch, cx)),
                }
            }
            let keys = self
                .order
                .iter()
                .map(|(k, _)| match k {
                    OrderKey::Output(j) => vals.get(*j).cloned().unwrap_or(Value::Null),
                    OrderKey::Plain(p) | OrderKey::Grouped(p) => p.eval(&scratch, cx),
                })
                .collect();
            out.push((vals, keys));
        }
        out
    }

    /// Run every unconsumed filter assigned to `step` over the flat tuple
    /// buffer, gathering just the referenced columns per tuple; survivors
    /// are compacted in place.
    #[allow(clippy::too_many_arguments)]
    fn filter_tuples(
        &self,
        step: Option<usize>,
        sources: &[SourceRows<'_>],
        tuples: &mut Vec<u32>,
        stride: usize,
        skip: &[bool],
        cx: &mut EvalCx,
        stats: &mut ExecStats,
    ) {
        for (fi, f) in self.filters.iter().enumerate() {
            if skip[fi] || f.step != step {
                continue;
            }
            let count = tuples.len() / stride;
            stats.batches += count.div_ceil(BATCH_SIZE) as u64;
            if let Some(fp) = &f.fast {
                // single-comparison fast path: evaluate by reference with
                // a fused compact (write cursor trails the read cursor)
                let mut w = 0;
                let mut r = 0;
                while r + stride <= tuples.len() {
                    if fp.eval_tuple(sources, &tuples[r..r + stride], cx.slots) {
                        tuples.copy_within(r..r + stride, w);
                        w += stride;
                    }
                    r += stride;
                }
                tuples.truncate(w);
            } else {
                let mut flags = Vec::with_capacity(count);
                let mut gath: Vec<Vec<Value>> = Vec::with_capacity(BATCH_SIZE);
                let mut out = Vec::new();
                for chunk in tuples.chunks(stride * BATCH_SIZE) {
                    gath.clear();
                    for t in chunk.chunks_exact(stride) {
                        gath.push(
                            f.gather
                                .iter()
                                .map(|&(s, local)| gather_value(sources, t, s, local))
                                .collect(),
                        );
                    }
                    let refs: Vec<&[Value]> = gath.iter().map(|r| r.as_slice()).collect();
                    f.gprog.eval_batch(&refs, cx, &mut out);
                    flags.extend(out.iter().map(|v| v.is_truthy()));
                }
                let mut w = 0;
                for (i, keep) in flags.iter().enumerate() {
                    if *keep {
                        tuples.copy_within(i * stride..(i + 1) * stride, w);
                        w += stride;
                    }
                }
                tuples.truncate(w);
            }
        }
    }

    /// Plain projection: output row + ORDER BY keys per input row.
    #[allow(clippy::type_complexity)]
    fn exec_plain(&self, view: &Rows<'_>, cx: &mut EvalCx) -> Vec<(Vec<Value>, Vec<Value>)> {
        // exact output width per row: fixed items plus one full row copy
        // per wildcard
        let fixed: usize = self
            .items
            .iter()
            .map(|it| match it {
                ProjItem::All => 0,
                ProjItem::Qualified(idxs) => idxs.len(),
                ProjItem::Expr(_) => 1,
            })
            .sum();
        let wildcards = self
            .items
            .iter()
            .filter(|it| matches!(it, ProjItem::All))
            .count();
        let mut out = Vec::with_capacity(view.len());
        for i in 0..view.len() {
            let row = view.at(i);
            let mut vals = Vec::with_capacity(fixed + wildcards * row.len());
            for item in &self.items {
                match item {
                    ProjItem::All => vals.extend(row.iter().cloned()),
                    ProjItem::Qualified(idxs) => {
                        vals.extend(
                            idxs.iter()
                                .map(|&j| row.get(j).cloned().unwrap_or(Value::Null)),
                        );
                    }
                    ProjItem::Expr(p) => vals.push(p.eval(row, cx)),
                }
            }
            let keys = self
                .order
                .iter()
                .map(|(k, _)| match k {
                    OrderKey::Output(j) => vals.get(*j).cloned().unwrap_or(Value::Null),
                    OrderKey::Plain(p) | OrderKey::Grouped(p) => p.eval(row, cx),
                })
                .collect();
            out.push((vals, keys));
        }
        out
    }

    /// Grouped projection: group rows (first-appearance order), compute
    /// aggregates, apply HAVING, and evaluate items per group.
    #[allow(clippy::type_complexity)]
    fn exec_grouped(
        &self,
        g: &Grouping,
        view: &Rows<'_>,
        cx: &mut EvalCx,
    ) -> Vec<(Vec<Value>, Vec<Value>)> {
        let mut group_ids: Vec<Vec<usize>> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in 0..view.len() {
            let row = view.at(i);
            let key: Vec<Value> = g.keys.iter().map(|p| p.eval(row, cx)).collect();
            let slot = *index.entry(key).or_insert_with(|| {
                group_ids.push(Vec::new());
                group_ids.len() - 1
            });
            if let Some(ids) = group_ids.get_mut(slot) {
                ids.push(i);
            }
        }
        // a global aggregate over zero rows still yields one output row
        if group_ids.is_empty() && g.keys.is_empty() {
            group_ids.push(Vec::new());
        }
        let mut out = Vec::new();
        for ids in &group_ids {
            cx.empty_group = ids.is_empty();
            let mut aggs = Vec::with_capacity(g.aggs.len());
            for spec in &g.aggs {
                aggs.push(eval_agg(spec, ids, view, cx));
            }
            cx.aggs = aggs;
            let first_row = ids.first().map(|&i| view.at(i)).unwrap_or(EMPTY_ROW);
            if let Some(h) = &g.having {
                if !h.eval(first_row, cx).is_truthy() {
                    continue;
                }
            }
            let vals: Vec<Value> = g.items.iter().map(|p| p.eval(first_row, cx)).collect();
            let keys = self
                .order
                .iter()
                .map(|(k, _)| match k {
                    OrderKey::Output(j) => vals.get(*j).cloned().unwrap_or(Value::Null),
                    OrderKey::Plain(p) | OrderKey::Grouped(p) => p.eval(first_row, cx),
                })
                .collect();
            out.push((vals, keys));
        }
        cx.empty_group = false;
        cx.aggs = Vec::new();
        out
    }
}

/// One aggregate over a group: COUNT(*) is the group size; otherwise the
/// argument is evaluated per row, NULLs dropped, DISTINCT deduplicated
/// (first appearance), and the reducer applied.
fn eval_agg(spec: &AggSpec, ids: &[usize], view: &Rows<'_>, cx: &mut EvalCx) -> Value {
    let Some(p) = &spec.arg else {
        return Value::Num(ids.len() as f64);
    };
    let mut vals: Vec<Value> = ids
        .iter()
        .map(|&i| p.eval(view.at(i), cx))
        .filter(|v| !v.is_null())
        .collect();
    if spec.distinct {
        let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.clone()));
    }
    aggregate_value(&spec.upper, &vals).unwrap_or(Value::Null)
}

/// Rows backing one executed unit inside `compose`: borrowed straight
/// from a base table / CTE relation, or owned when the unit had to
/// materialize (derived table, explicit JOIN).
enum SourceRows<'r> {
    Borrowed(&'r [Vec<Value>]),
    Owned(Vec<Vec<Value>>),
}

impl SourceRows<'_> {
    fn rows(&self) -> &[Vec<Value>] {
        match self {
            SourceRows::Borrowed(r) => r,
            SourceRows::Owned(r) => r,
        }
    }
}

/// Pull one column of a tuple out of its backing sources; NULL when the
/// coordinate is out of range (mirrors the padded-row behavior of the
/// materializing path).
fn gather_value(sources: &[SourceRows<'_>], t: &[u32], step: u32, local: u32) -> Value {
    sources
        .get(step as usize)
        .zip(t.get(step as usize))
        .and_then(|(s, &i)| s.rows().get(i as usize))
        .and_then(|r| r.get(local as usize))
        .cloned()
        .unwrap_or(Value::Null)
}

/// Borrowing variant of [`gather_value`] for the fast-predicate path:
/// no clone, NULL for out-of-range coordinates.
fn gather_ref<'a>(sources: &'a [SourceRows<'_>], t: &[u32], step: u32, local: u32) -> &'a Value {
    sources
        .get(step as usize)
        .zip(t.get(step as usize))
        .and_then(|(s, &i)| s.rows().get(i as usize))
        .and_then(|r| r.get(local as usize))
        .unwrap_or(&NULL_VALUE)
}

/// Resolve a scan source to its backing rows, verifying the arity the
/// plan was compiled against (plans may be reused across databases).
fn resolve_scan<'x>(
    src: &ScanSrc,
    db: &'x Database,
    frame: Option<&'x CteFrame<'x>>,
    width: usize,
) -> Result<&'x [Vec<Value>], ExecError> {
    let rel = match src {
        ScanSrc::Table(name) => db
            .table(name)
            .ok_or_else(|| ExecError::UnknownTable(name.clone()))?,
        ScanSrc::Cte { up, pos } => {
            let mut f = frame;
            for _ in 0..*up {
                f = f.and_then(|fr| fr.parent);
            }
            f.and_then(|fr| fr.rels.get(*pos))
                .ok_or_else(|| ExecError::Unsupported("missing CTE frame".into()))?
        }
    };
    if rel.columns.len() != width {
        return Err(ExecError::Unsupported(
            "schema drift between compile and execute".into(),
        ));
    }
    Ok(&rel.rows)
}

fn exec_node(
    node: &PhysNode,
    db: &Database,
    frame: Option<&CteFrame<'_>>,
    stats: &mut ExecStats,
) -> Result<Vec<Vec<Value>>, ExecError> {
    match node {
        PhysNode::Scan { src, width } => {
            let base = resolve_scan(src, db, frame, *width)?;
            stats.rows_scanned += base.len() as u64;
            Ok(base.to_vec())
        }
        PhysNode::Derived(pq) => Ok(pq.exec(db, frame, stats)?.rows),
        PhysNode::Join(j) => exec_join(j, db, frame, stats),
    }
}

/// Materialize a node's rows, borrowing straight from the database for
/// plain scans (counting them exactly like the materializing path).
fn exec_source<'x>(
    node: &PhysNode,
    db: &'x Database,
    frame: Option<&'x CteFrame<'x>>,
    stats: &mut ExecStats,
) -> Result<SourceRows<'x>, ExecError> {
    match node {
        PhysNode::Scan { src, width } => {
            let base = resolve_scan(src, db, frame, *width)?;
            stats.rows_scanned += base.len() as u64;
            Ok(SourceRows::Borrowed(base))
        }
        other => Ok(SourceRows::Owned(exec_node(other, db, frame, stats)?)),
    }
}

/// Explicit JOIN: budget check, then the interpreter's hash fast path for
/// large single-equality inner inputs, else a nested loop with the
/// compiled ON program. Scan children are borrowed straight from the
/// database — no input materialization.
fn exec_join(
    j: &JoinNode,
    db: &Database,
    frame: Option<&CteFrame<'_>>,
    stats: &mut ExecStats,
) -> Result<Vec<Vec<Value>>, ExecError> {
    let lsrc = exec_source(&j.left, db, frame, stats)?;
    let rsrc = exec_source(&j.right, db, frame, stats)?;
    let (l, r) = (lsrc.rows(), rsrc.rows());
    if l.len().saturating_mul(r.len()) > MAX_INTERMEDIATE_ROWS {
        return Err(ExecError::ResourceLimit);
    }
    if let JOn::Prog {
        equi: Some((li, ri)),
        ..
    } = &j.on
    {
        // same hard threshold as the interpreter, so both engines take
        // the same path and report identical join_pairs
        if l.len().saturating_mul(r.len()) > 4096 {
            return Ok(hash_join_rows(j, l, r, *li, *ri, stats));
        }
    }
    let mut cx = EvalCx::plain(&[]);
    let mut rows = Vec::new();
    let mut right_matched = vec![false; r.len()];
    let mut scratch: Vec<Value> = Vec::new();
    for lrow in l {
        let mut matched = false;
        for (rj, rrow) in r.iter().enumerate() {
            stats.join_pairs += 1;
            let hit = match &j.on {
                JOn::None => true,
                JOn::Prog { fast: Some(fp), .. } => {
                    // ON programs are compiled slot-free, so an empty
                    // slot table is exact here
                    fp.eval_tri(
                        &|c: (u32, u32)| {
                            let i = c.1 as usize;
                            if i < j.lw {
                                lrow.get(i)
                            } else {
                                rrow.get(i - j.lw)
                            }
                            .unwrap_or(&NULL_VALUE)
                        },
                        &[],
                    ) == Some(true)
                }
                JOn::Prog { prog, .. } => {
                    scratch.clear();
                    scratch.extend(lrow.iter().cloned());
                    scratch.extend(rrow.iter().cloned());
                    prog.eval(&scratch, &mut cx).is_truthy()
                }
                JOn::Using(pairs) => pairs.iter().all(|&(a, b)| {
                    lrow.get(a).zip(rrow.get(b)).and_then(|(x, y)| x.sql_eq(y)) == Some(true)
                }),
            };
            if hit {
                matched = true;
                right_matched[rj] = true;
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
        if !matched && matches!(j.kind, JoinKind::Left | JoinKind::Full) {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat(Value::Null).take(j.rw));
            rows.push(row);
        }
    }
    if matches!(j.kind, JoinKind::Right | JoinKind::Full) {
        for (rj, rrow) in r.iter().enumerate() {
            if !right_matched[rj] {
                let mut row: Vec<Value> = std::iter::repeat(Value::Null).take(j.lw).collect();
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// Mirror of the interpreter's right-side hash join: build skips NULL
/// keys, postings stay in scan order, NULL probe keys pad (outer) or drop.
fn hash_join_rows(
    j: &JoinNode,
    l: &[Vec<Value>],
    r: &[Vec<Value>],
    li: usize,
    ri_col: usize,
    stats: &mut ExecStats,
) -> Vec<Vec<Value>> {
    let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
    for (i, rrow) in r.iter().enumerate() {
        if let Some(key) = rrow.get(ri_col) {
            if !key.is_null() {
                table.entry(key).or_default().push(i);
            }
        }
    }
    let mut rows = Vec::new();
    let mut right_matched = vec![false; r.len()];
    for lrow in l {
        let idxs = lrow
            .get(li)
            .filter(|k| !k.is_null())
            .and_then(|k| table.get(k));
        match idxs {
            Some(idxs) => {
                stats.join_pairs += idxs.len() as u64;
                for &ri in idxs {
                    right_matched[ri] = true;
                    let mut row = lrow.clone();
                    row.extend(r.get(ri).into_iter().flatten().cloned());
                    rows.push(row);
                }
            }
            None => {
                if matches!(j.kind, JoinKind::Left | JoinKind::Full) {
                    let mut row = lrow.clone();
                    row.extend(std::iter::repeat(Value::Null).take(j.rw));
                    rows.push(row);
                }
            }
        }
    }
    if matches!(j.kind, JoinKind::Right | JoinKind::Full) {
        for (ri, rrow) in r.iter().enumerate() {
            if !right_matched[ri] {
                let mut row: Vec<Value> = std::iter::repeat(Value::Null).take(j.lw).collect();
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    rows
}

// ----- vectorized filter helpers -----

/// Filter a selection vector over a borrowed base in `BATCH_SIZE` chunks.
fn filter_sel(
    prog: &Program,
    base: &[Vec<Value>],
    sel: &mut Vec<u32>,
    cx: &mut EvalCx,
    stats: &mut ExecStats,
) {
    let mut kept = Vec::with_capacity(sel.len());
    let mut out = Vec::new();
    let mut refs: Vec<&[Value]> = Vec::with_capacity(BATCH_SIZE);
    for chunk in sel.chunks(BATCH_SIZE) {
        refs.clear();
        refs.extend(chunk.iter().map(|&i| {
            base.get(i as usize)
                .map(|r| r.as_slice())
                .unwrap_or(EMPTY_ROW)
        }));
        prog.eval_batch(&refs, cx, &mut out);
        stats.batches += 1;
        for (k, &i) in chunk.iter().enumerate() {
            if out.get(k).map(|v| v.is_truthy()).unwrap_or(false) {
                kept.push(i);
            }
        }
    }
    *sel = kept;
}

/// Evaluate a predicate over owned rows in `BATCH_SIZE` chunks.
fn batch_flags(
    prog: &Program,
    rows: &[Vec<Value>],
    cx: &mut EvalCx,
    stats: &mut ExecStats,
) -> Vec<bool> {
    let mut flags = Vec::with_capacity(rows.len());
    let mut out = Vec::new();
    let mut refs: Vec<&[Value]> = Vec::with_capacity(BATCH_SIZE);
    for chunk in rows.chunks(BATCH_SIZE) {
        refs.clear();
        refs.extend(chunk.iter().map(|r| r.as_slice()));
        prog.eval_batch(&refs, cx, &mut out);
        stats.batches += 1;
        flags.extend(out.iter().map(|v| v.is_truthy()));
    }
    flags
}

/// Retain rows (and their tags, if tracked) flagged true.
fn retain_rows(rows: &mut Vec<Vec<Value>>, tags: &mut Option<Vec<Vec<u32>>>, flags: &[bool]) {
    let mut it = flags.iter();
    rows.retain(|_| *it.next().unwrap_or(&false));
    if let Some(t) = tags {
        let mut it = flags.iter();
        t.retain(|_| *it.next().unwrap_or(&false));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_query_interpreted;
    use squ_parser::parse_query;

    fn db() -> Database {
        let mut db = Database::new("t");
        db.insert_table(
            "users",
            Relation::new(
                vec!["id".into(), "name".into(), "dept".into()],
                (0..12)
                    .map(|i| {
                        vec![
                            Value::num(i as f64),
                            Value::str(&format!("user{i}")),
                            Value::num((i % 3) as f64),
                        ]
                    })
                    .collect(),
            ),
        );
        db.insert_table(
            "depts",
            Relation::new(
                vec!["dept".into(), "label".into()],
                (0..3)
                    .map(|i| vec![Value::num(i as f64), Value::str(&format!("d{i}"))])
                    .collect(),
            ),
        );
        db.insert_table(
            "logs",
            Relation::new(
                vec!["uid".into(), "level".into()],
                (0..30)
                    .map(|i| vec![Value::num((i % 12) as f64), Value::num((i % 5) as f64)])
                    .collect(),
            ),
        );
        db
    }

    /// Compile must succeed, and compiled output (columns, rows, *order*)
    /// must match the interpreter exactly.
    fn parity(sql: &str) -> ExecStats {
        let q = parse_query(sql).unwrap();
        let db = db();
        let cq = compile_query(&q, &db).unwrap_or_else(|| panic!("did not compile: {sql}"));
        let (got, stats) = cq.execute(&db).unwrap();
        let (want, _) = execute_query_interpreted(&q, &db).unwrap();
        assert_eq!(got.columns, want.columns, "columns for {sql}");
        assert_eq!(got.rows, want.rows, "rows for {sql}");
        assert_eq!(stats.compiled, 1);
        stats
    }

    #[test]
    fn simple_filter_compiles_and_agrees() {
        let stats = parity("SELECT name FROM users WHERE dept = 1 AND id > 3");
        assert!(stats.batches > 0, "vectorized path not exercised");
    }

    #[test]
    fn provably_empty_where_short_circuits() {
        // contradictory range: the analyzer proves the block empty, so the
        // compiled engine skips the scan entirely (and still agrees with
        // the interpreter, which runs unpruned)
        let stats = parity("SELECT name FROM users WHERE id > 5 AND id < 3");
        assert_eq!(stats.empty_prunes, 1);
        assert_eq!(stats.rows_scanned, 0, "prune must skip the scan");

        // NULL comparisons never evaluate to TRUE either
        let stats = parity("SELECT name FROM users WHERE dept = NULL");
        assert_eq!(stats.empty_prunes, 1);

        // a satisfiable WHERE must not prune
        let stats = parity("SELECT name FROM users WHERE id > 3 AND id < 5");
        assert_eq!(stats.empty_prunes, 0);
        assert!(stats.rows_scanned > 0);

        // aggregates produce their empty-input row, so grouped blocks are
        // exempt even when the WHERE is contradictory
        let stats = parity("SELECT COUNT(*) FROM users WHERE id > 5 AND id < 3");
        assert_eq!(stats.empty_prunes, 0);
    }

    #[test]
    fn projection_wildcards_and_distinct_agree() {
        parity("SELECT * FROM users WHERE id < 5");
        parity("SELECT u.* FROM users u WHERE u.dept = 2");
        parity("SELECT DISTINCT dept FROM users ORDER BY dept DESC");
        parity("SELECT DISTINCT dept FROM users LIMIT 2");
    }

    #[test]
    fn correlated_subquery_falls_back_to_interpreter() {
        let q = parse_query(
            "SELECT id FROM users u WHERE EXISTS (SELECT 1 FROM logs WHERE uid = u.id)",
        )
        .unwrap();
        let db = db();
        assert!(compile_query(&q, &db).is_none(), "correlation must reject");
        let (rel, stats) = crate::exec::execute_query(&q, &db).unwrap();
        let (want, _) = execute_query_interpreted(&q, &db).unwrap();
        assert_eq!(rel.rows, want.rows);
        assert_eq!(stats.fallbacks, 1);
        assert_eq!(stats.compiled, 0);
    }

    #[test]
    fn uncorrelated_subqueries_are_hoisted_into_slots() {
        let stats =
            parity("SELECT name FROM users WHERE dept IN (SELECT dept FROM depts WHERE dept > 0)");
        assert!(stats.subquery_evals >= 1);
        parity("SELECT name FROM users WHERE id = (SELECT MAX(dept) FROM depts)");
        parity("SELECT id FROM users WHERE EXISTS (SELECT dept FROM depts WHERE dept = 99)");
    }

    #[test]
    fn index_probe_fetches_only_matching_rows() {
        let stats = parity("SELECT name FROM users WHERE id = 7");
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.index_hits, 1);
        assert_eq!(stats.rows_scanned, 1, "probe must not scan the table");
    }

    #[test]
    fn explicit_joins_agree() {
        parity("SELECT u.name, d.label FROM users u JOIN depts d ON u.dept = d.dept");
        parity(
            "SELECT u.name, l.level FROM users u LEFT JOIN logs l ON u.id = l.uid AND l.level > 2",
        );
        parity("SELECT u.name, d.label FROM users u CROSS JOIN depts d WHERE u.id < 2");
    }

    #[test]
    fn grouped_aggregates_agree() {
        parity(
            "SELECT dept, COUNT(*), AVG(id) FROM users GROUP BY dept \
             HAVING COUNT(*) > 3 ORDER BY dept DESC",
        );
        parity("SELECT COUNT(*), MIN(id), MAX(id) FROM users WHERE id > 100");
        parity("SELECT dept, COUNT(DISTINCT level) FROM logs l, users u WHERE l.uid = u.id GROUP BY dept");
    }

    #[test]
    fn reordered_comma_join_preserves_interpreter_row_order() {
        // three units with equi chains: the greedy planner starts at the
        // smallest table and deviates from declaration order, so the tag
        // restore path must put rows back exactly
        let sql = "SELECT u.id, l.level, d.label FROM logs l, users u, depts d \
                   WHERE l.uid = u.id AND u.dept = d.dept";
        let q = parse_query(sql).unwrap();
        let db = db();
        let cq = compile_query(&q, &db).unwrap();
        assert!(cq.phys_reordered(), "planner should reorder this query");
        parity(sql);
    }

    #[test]
    fn ctes_and_set_ops_agree() {
        parity(
            "WITH big AS (SELECT id, dept FROM users WHERE id > 5) \
             SELECT dept FROM big UNION SELECT dept FROM depts ORDER BY dept",
        );
        parity(
            "WITH a AS (SELECT id FROM users), b AS (SELECT id FROM a WHERE id < 4) \
             SELECT id FROM b",
        );
        parity("SELECT dept FROM users INTERSECT SELECT dept FROM depts");
    }

    #[test]
    fn wildcard_with_aliased_order_key_rejects() {
        // the interpreter resolves `k` against item positions that don't
        // line up once the wildcard expands — safest to fall back
        let q = parse_query("SELECT *, id AS k FROM users ORDER BY k").unwrap();
        assert!(compile_query(&q, &db()).is_none());
    }

    impl CompiledQuery {
        fn phys_reordered(&self) -> bool {
            match &self.phys.body {
                PhysSet::Select(s) => s.reordered,
                PhysSet::SetOp { .. } => false,
            }
        }
    }
}
