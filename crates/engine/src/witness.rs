//! Witness-database generation.
//!
//! A *witness database* is a small random instance of a [`Schema`] used for
//! differential testing: an equivalence-preserving transformation must give
//! identical results on every witness, and a non-equivalence transformation
//! should give a different result on at least one witness. Witnesses are
//! deliberately adversarial for that purpose:
//!
//! * id-like columns draw from a small domain (`1..=ID_DOMAIN`) so joins
//!   both hit *and* miss — `LEFT JOIN` vs `INNER JOIN` differ;
//! * a fraction of nullable values are NULL so null semantics matter;
//! * numeric columns span `0..1000`, the same range the workload
//!   generators draw comparison literals from, so predicates have
//!   mid-range selectivity;
//! * text columns draw from a small shared vocabulary so string equality
//!   predicates can match.

use crate::{Database, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use squ_schema::{Schema, SqlType};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Domain size for id-like columns; small enough that equi-joins on ids
/// produce both matches and misses at witness scale.
const ID_DOMAIN: u64 = 12;

/// Probability that a nullable (non-id) value is NULL.
const NULL_PROB: f64 = 0.08;

/// Shared text vocabulary. Includes the words the workload generators use
/// in string predicates so equality filters can be non-empty.
pub const TEXT_VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "high", "low", "north", "south", "east", "west",
    "GALAXY", "STAR", "QSO", "volvo", "ford", "red", "blue", "green", "open",
];

/// Is a column id-like (participates in joins)? Heuristic: name is `id`,
/// ends in `id`, or ends in `_id`.
pub fn is_id_column(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower == "id" || lower.ends_with("id")
}

/// Generate one witness database for `schema` with the given seed.
/// Table sizes are drawn from `min_rows..=max_rows` (dimension tables with
/// tiny declared cardinality stay tiny).
pub fn witness_database(schema: &Schema, seed: u64, min_rows: usize, max_rows: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5157_4E45_5353u64); // "WITNESS"
    let mut db = Database::new(&schema.name);
    for table in &schema.tables {
        let declared = table.row_count as usize;
        let n = rng.gen_range(min_rows..=max_rows).min(declared.max(2));
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(table.columns.len());
            for col in &table.columns {
                row.push(random_value(&mut rng, &col.name, col.ty));
            }
            rows.push(row);
        }
        let rel = Relation::new(table.columns.iter().map(|c| c.name.clone()).collect(), rows);
        db.insert_table(&table.name, rel);
    }
    db
}

/// A standard batch of witnesses for differential testing. Five witnesses
/// with varied sizes give non-equivalence checks enough diversity to
/// distinguish every transformation type in the benchmark.
pub fn witness_batch(schema: &Schema, seed: u64) -> Vec<Database> {
    (0..5)
        .map(|i| {
            let (lo, hi) = match i {
                0 => (2, 5),   // tiny: edge cases (empty-ish groups)
                1 => (6, 12),  // small
                _ => (10, 24), // medium
            };
            witness_database(schema, seed.wrapping_add(i as u64 * 7919), lo, hi)
        })
        .collect()
}

/// Memoized [`witness_batch`]: one generation per distinct
/// `(schema, seed)` pair, shared through an [`Arc`].
///
/// Differential testing re-uses the *same* witness batch for every
/// transformation pair derived from one schema, so callers that key their
/// witness seed by schema (rather than by query) hit this cache on all but
/// the first call. The cache is process-global and thread-safe; generation
/// happens outside the lock so concurrent first requests never serialize
/// behind each other (a lost race costs one redundant generation, and both
/// results are identical by determinism of [`witness_batch`]).
pub fn witness_batch_cached(schema: &Schema, seed: u64) -> Arc<Vec<Database>> {
    type Cache = Mutex<HashMap<(u64, u64), Arc<Vec<Database>>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = (schema_fingerprint(schema), seed);
    let guard = cache.lock().expect("witness cache lock"); // lint:allow: poisoned only if a worker already panicked
    if let Some(hit) = guard.get(&key) {
        return Arc::clone(hit);
    }
    drop(guard);
    let batch = Arc::new(witness_batch(schema, seed));
    let mut guard = cache.lock().expect("witness cache lock"); // lint:allow: poisoned only if a worker already panicked
    Arc::clone(guard.entry(key).or_insert(batch))
}

/// Structural fingerprint of a schema (name, tables, columns, types),
/// used as the cache key so same-named but different schemas never alias.
fn schema_fingerprint(schema: &Schema) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{schema:?}").hash(&mut h);
    h.finish()
}

fn random_value(rng: &mut StdRng, col_name: &str, ty: SqlType) -> Value {
    if is_id_column(col_name) {
        // ids: never NULL, small domain
        return Value::Num(rng.gen_range(1..=ID_DOMAIN) as f64);
    }
    if rng.gen_bool(NULL_PROB) {
        return Value::Null;
    }
    match ty {
        SqlType::Int => Value::Num(rng.gen_range(0..1000) as f64),
        SqlType::Float => {
            // one decimal place keeps printing/parsing of literals exact
            Value::Num((rng.gen_range(0.0..1000.0_f64) * 10.0).round() / 10.0)
        }
        SqlType::Text => Value::Str(TEXT_VOCAB[rng.gen_range(0..TEXT_VOCAB.len())].to_string()),
        SqlType::Bool => Value::Bool(rng.gen_bool(0.5)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_schema::schemas::sdss;

    #[test]
    fn witness_is_deterministic() {
        let schema = sdss();
        let a = witness_database(&schema, 42, 5, 10);
        let b = witness_database(&schema, 42, 5, 10);
        for (name, rel) in a.tables() {
            assert_eq!(Some(rel), b.table(name));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let schema = sdss();
        let a = witness_database(&schema, 1, 5, 10);
        let b = witness_database(&schema, 2, 5, 10);
        let differs = a
            .tables()
            .any(|(name, rel)| b.table(name).map(|r| r != rel).unwrap_or(true));
        assert!(differs);
    }

    #[test]
    fn every_table_materialized_with_bounded_rows() {
        let schema = sdss();
        let db = witness_database(&schema, 7, 5, 10);
        assert_eq!(db.table_count(), schema.tables.len());
        for (_, rel) in db.tables() {
            assert!(rel.len() >= 2 && rel.len() <= 10);
        }
    }

    #[test]
    fn id_columns_never_null_and_small_domain() {
        let schema = sdss();
        let db = witness_database(&schema, 9, 10, 20);
        let spec = db.table("SpecObj").unwrap();
        let idx = spec.column_index("bestobjid").unwrap();
        for row in &spec.rows {
            match &row[idx] {
                Value::Num(v) => assert!(*v >= 1.0 && *v <= ID_DOMAIN as f64),
                other => panic!("id column contained {other:?}"),
            }
        }
    }

    #[test]
    fn id_heuristic() {
        assert!(is_id_column("id"));
        assert!(is_id_column("objid"));
        assert!(is_id_column("movie_id"));
        assert!(!is_id_column("plate"));
        assert!(!is_id_column("idx"));
    }

    #[test]
    fn batch_has_varied_sizes() {
        let batch = witness_batch(&sdss(), 3);
        assert_eq!(batch.len(), 5);
        let t0 = batch[0].table("SpecObj").unwrap().len();
        let t4 = batch[4].table("SpecObj").unwrap().len();
        assert!(t0 <= 5 && t4 >= 10);
    }

    #[test]
    fn cached_batch_matches_uncached() {
        let schema = sdss();
        let direct = witness_batch(&schema, 77);
        let cached = witness_batch_cached(&schema, 77);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.iter().zip(cached.iter()) {
            for (name, rel) in a.tables() {
                assert_eq!(Some(rel), b.table(name));
            }
        }
        // second call is served from the cache: same allocation
        let again = witness_batch_cached(&schema, 77);
        assert!(Arc::ptr_eq(&cached, &again));
        // a different seed is a different entry
        let other = witness_batch_cached(&schema, 78);
        assert!(!Arc::ptr_eq(&cached, &other));
    }
}
