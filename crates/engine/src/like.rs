//! Pre-compiled `LIKE` pattern matching.
//!
//! The naive matcher re-walks the pattern for every candidate string and
//! backtracks exponentially on stacked `%` wildcards. [`LikeMatcher`]
//! parses the pattern once into `%`-separated segments (each a byte
//! sequence where `_` matches any single byte) and then matches in a
//! single forward pass: the first segment is anchored at the start unless
//! the pattern opens with `%`, the last is anchored at the end unless it
//! closes with `%`, and interior segments are found greedily
//! left-to-right. Greedy placement of interior segments is complete for
//! this pattern language — taking the leftmost occurrence only ever
//! leaves *more* room for the segments that follow.
//!
//! The compiled engine builds one matcher per constant `LIKE` pattern at
//! query-compile time ([`crate::physical`]); the interpreter's
//! [`crate::like_match`] builds one per call, which is still cheaper than
//! the old recursive walk.

/// One compiled `LIKE` pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LikeMatcher {
    /// `%`-separated pattern pieces; `b'_'` inside a piece matches any
    /// single byte. Empty pieces (from `%%`) are dropped.
    segments: Vec<Vec<u8>>,
    /// Pattern does not start with `%`: the first segment must match at
    /// the start of the input.
    anchored_start: bool,
    /// Pattern does not end with `%`: the last segment must match at the
    /// end of the input.
    anchored_end: bool,
}

impl LikeMatcher {
    /// Compile `pattern` (with `%` / `_` wildcards, case-sensitive).
    pub fn new(pattern: &str) -> LikeMatcher {
        let bytes = pattern.as_bytes();
        LikeMatcher {
            segments: bytes
                .split(|b| *b == b'%')
                .filter(|seg| !seg.is_empty())
                .map(|seg| seg.to_vec())
                .collect(),
            anchored_start: !bytes.first().is_some_and(|b| *b == b'%'),
            anchored_end: !bytes.last().is_some_and(|b| *b == b'%'),
        }
    }

    /// Does `s` match the compiled pattern?
    pub fn matches(&self, s: &str) -> bool {
        let s = s.as_bytes();
        let n = self.segments.len();
        if n == 0 {
            // pattern was empty (matches only "") or all-'%' (matches all)
            return !self.anchored_start || s.is_empty();
        }
        let mut pos = 0;
        let mut idx = 0;
        if self.anchored_start {
            let seg = &self.segments[0];
            if s.len() < seg.len() || !seg_match_at(seg, s, 0) {
                return false;
            }
            pos = seg.len();
            idx = 1;
            if idx == n {
                return !self.anchored_end || pos == s.len();
            }
        }
        // interior segments: greedy leftmost placement
        let last_floating = if self.anchored_end { n - 1 } else { n };
        while idx < last_floating {
            let seg = &self.segments[idx];
            match find_from(seg, s, pos) {
                Some(at) => pos = at + seg.len(),
                None => return false,
            }
            idx += 1;
        }
        if self.anchored_end {
            let seg = &self.segments[n - 1];
            if s.len() < seg.len() {
                return false;
            }
            let start = s.len() - seg.len();
            start >= pos && seg_match_at(seg, s, start)
        } else {
            true
        }
    }
}

/// Does `seg` match the bytes of `s` starting at `at`? (`at + seg.len()`
/// must be in bounds.)
fn seg_match_at(seg: &[u8], s: &[u8], at: usize) -> bool {
    seg.iter().zip(&s[at..]).all(|(p, b)| *p == b'_' || p == b)
}

/// Leftmost position `>= from` where `seg` matches inside `s`.
fn find_from(seg: &[u8], s: &[u8], from: usize) -> Option<usize> {
    if s.len() < seg.len() {
        return None;
    }
    (from..=s.len() - seg.len()).find(|&at| seg_match_at(seg, s, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original recursive matcher, kept verbatim as the test oracle.
    fn naive(s: &str, pattern: &str) -> bool {
        fn rec(s: &[u8], p: &[u8]) -> bool {
            match p.split_first() {
                None => s.is_empty(),
                Some((b'%', rest)) => (0..=s.len()).any(|i| rec(&s[i..], rest)),
                Some((b'_', rest)) => !s.is_empty() && rec(&s[1..], rest),
                Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
            }
        }
        rec(s.as_bytes(), pattern.as_bytes())
    }

    #[test]
    fn edge_cases_match_the_naive_semantics() {
        let strings = [
            "", "a", "ab", "abc", "aabbcc", "galaxy", "gal_xy", "g%y", "%", "_", "aaa", "abab",
            "xbarx", "bar", "ba", "aXbXc",
        ];
        let patterns = [
            "", "%", "%%", "%%%", "_", "__", "a", "a%", "%a", "%a%", "a%c", "a_c", "_b_", "ab",
            "%ab", "ab%", "%ab%", "a%b%c", "%b%b%", "___", "%_", "_%", "a__%", "%__a", "ba_",
            "b_r", "%bar", "bar%", "%bar%", "g_l%y", "%%a%%", "a%a%a",
        ];
        for s in strings {
            for p in patterns {
                assert_eq!(
                    LikeMatcher::new(p).matches(s),
                    naive(s, p),
                    "compiled and naive LIKE disagree on {s:?} LIKE {p:?}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_small_alphabet_agreement() {
        // every string and pattern up to length 4 over {a, b} ∪ {%, _}
        fn all(alphabet: &[char], len: usize, out: &mut Vec<String>) {
            if len == 0 {
                return;
            }
            let start = out.len();
            for c in alphabet {
                out.push(c.to_string());
            }
            let mut prev: Vec<String> = out[start..].to_vec();
            for _ in 1..len {
                let mut next = Vec::new();
                for p in &prev {
                    for c in alphabet {
                        next.push(format!("{p}{c}"));
                    }
                }
                out.extend(next.iter().cloned());
                prev = next;
            }
        }
        let mut strings = vec![String::new()];
        all(&['a', 'b'], 3, &mut strings);
        let mut patterns = vec![String::new()];
        all(&['a', 'b', '%', '_'], 4, &mut patterns);
        for s in &strings {
            for p in &patterns {
                assert_eq!(
                    LikeMatcher::new(p).matches(s),
                    naive(s, p),
                    "disagree on {s:?} LIKE {p:?}"
                );
            }
        }
    }

    #[test]
    fn pathological_percent_stacks_terminate_quickly() {
        // the naive matcher is exponential here; the compiled one is linear
        let s = "a".repeat(2000);
        let m = LikeMatcher::new("%a%a%a%a%a%a%a%a%b");
        assert!(!m.matches(&s));
        let m = LikeMatcher::new("a%a%a%a%a%a%a%a%a%");
        assert!(m.matches(&s));
    }

    #[test]
    fn anchoring_and_underscore_boundaries() {
        assert!(LikeMatcher::new("_bc").matches("abc"));
        assert!(LikeMatcher::new("ab_").matches("abc"));
        assert!(!LikeMatcher::new("_abc").matches("abc"));
        assert!(!LikeMatcher::new("abc_").matches("abc"));
        assert!(LikeMatcher::new("%_").matches("x"));
        assert!(!LikeMatcher::new("%_").matches(""));
        assert!(LikeMatcher::new("_%").matches("xyz"));
        assert!(LikeMatcher::new("a%").matches("a"));
        assert!(LikeMatcher::new("%a").matches("a"));
    }
}
