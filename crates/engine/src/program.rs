//! Flat postfix predicate/expression programs for the compiled engine.
//!
//! [`crate::physical`] lowers each scalar [`squ_parser::ast::Expr`] into a
//! [`Program`]: a vector of stack operations with column references
//! resolved to row offsets, `LIKE` patterns pre-compiled
//! ([`crate::like::LikeMatcher`]), function names pre-uppercased, `CAST`
//! targets pre-parsed, and constant subtrees folded at compile time.
//!
//! Programs are **total**: the compiler only emits operations that cannot
//! fail at runtime (unknown columns, unknown functions, aggregates out of
//! place, and fallible subqueries all reject compilation instead), so
//! evaluation returns a plain [`Value`]. Totality is also what makes the
//! eager stack discipline sound — SQL's `AND`/`OR` short-circuits are
//! observable only through side effects (errors), so evaluating both
//! operands and combining with three-valued logic yields the same value
//! the tree-walking interpreter produces.
//!
//! Uncorrelated subqueries are hoisted: the physical layer evaluates them
//! once per (query, database) into [`SlotVal`]s, and programs reference
//! the results by slot index.
//!
//! Hot filter passes use [`Program::eval_batch`], which interprets each
//! operation once per fixed-size chunk over a stack of value *vectors*
//! instead of once per row — the dispatch cost of the op loop is
//! amortized across [`BATCH_SIZE`] rows.

use crate::exec::{
    and3, arith, cast_typed, compare, from_tri, not3, or3, scalar_function_upper, tri,
};
use crate::like::LikeMatcher;
use crate::Value;
use squ_parser::CompareOp;
use squ_schema::SqlType;

/// Rows are processed in chunks of this many rows by the batch evaluator;
/// each chunk feeds [`crate::ExecStats::batches`].
pub(crate) const BATCH_SIZE: usize = 1024;

/// One postfix stack operation.
#[derive(Debug, Clone)]
pub(crate) enum POp {
    /// Push `row[i]`.
    Col(usize),
    /// Push a constant.
    Const(Value),
    /// Pop r, l; push `compare(op, l, r)`.
    Cmp(CompareOp),
    /// Pop b, a; push three-valued AND.
    And3,
    /// Pop b, a; push three-valued OR.
    Or3,
    /// Pop a; push three-valued NOT.
    Not3,
    /// Pop v; push `v IS [NOT] NULL`.
    IsNull {
        /// `IS NOT NULL` when set.
        negated: bool,
    },
    /// Pop hi, lo, v; push `v [NOT] BETWEEN lo AND hi`.
    Between {
        /// `NOT BETWEEN` when set.
        negated: bool,
    },
    /// Pop `n` list items then v; push `v [NOT] IN (items)`.
    InList {
        /// `NOT IN` when set.
        negated: bool,
        /// Number of list items on the stack.
        n: usize,
    },
    /// Pop v; push `v [NOT] LIKE <constant pattern>`.
    LikeConst {
        /// `NOT LIKE` when set.
        negated: bool,
        /// Pattern compiled once per query.
        matcher: LikeMatcher,
    },
    /// Pop pattern, v; push `v [NOT] LIKE pattern` (non-constant pattern:
    /// the matcher is built per evaluation, mirroring the interpreter).
    LikeDyn {
        /// `NOT LIKE` when set.
        negated: bool,
    },
    /// Pop r, l; push `l <op> r`.
    Arith(char),
    /// Pop v; push numeric negation (NULL for non-numbers).
    Neg,
    /// Pop `argc` arguments; push the scalar-function result.
    Call {
        /// Upper-cased function name, validated at compile time.
        name: String,
        /// Argument count.
        argc: usize,
    },
    /// Pop the CASE operands (pushed as `[operand?] w1 t1 … wk tk
    /// [else?]`); push the selected branch value.
    Case {
        /// Simple (`CASE x WHEN …`) vs searched (`CASE WHEN …`) form.
        has_operand: bool,
        /// Number of WHEN/THEN branches.
        branches: usize,
        /// Whether an ELSE value was pushed.
        has_else: bool,
    },
    /// Pop v; push `CAST(v AS <type>)` with the type pre-resolved.
    Cast(SqlType),
    /// Push the pre-evaluated scalar-subquery result for a slot.
    ScalarSlot(usize),
    /// Pop v; push `v [NOT] IN (<pre-evaluated subquery rows>)`.
    InSlot {
        /// `NOT IN` when set.
        negated: bool,
        /// Subquery slot index.
        slot: usize,
    },
    /// Push `[NOT] EXISTS (<pre-evaluated subquery>)`.
    ExistsSlot {
        /// `NOT EXISTS` when set.
        negated: bool,
        /// Subquery slot index.
        slot: usize,
    },
    /// If the current group is empty, push NULL and skip the next `n`
    /// operations (the interpreter short-circuits whole non-aggregate
    /// subtrees to NULL on empty groups, *before* evaluating leaves).
    SkipIfEmptyGroup(usize),
    /// Push the group's aggregate value for slot `i` (grouped programs
    /// only; the physical layer computes aggregates per group).
    Agg(usize),
}

/// A pre-evaluated uncorrelated subquery result.
#[derive(Debug, Clone)]
pub(crate) enum SlotVal {
    /// Scalar subquery: its single value (NULL for zero rows).
    Scalar(Value),
    /// `IN` / `EXISTS` subquery: first-column values of every result row.
    Set(Vec<Value>),
}

/// Shared evaluation state: pre-evaluated subquery slots, the grouped
/// empty-group flag, per-group aggregate values, and a reusable stack.
pub(crate) struct EvalCx<'a> {
    /// Subquery results, indexed by slot.
    pub slots: &'a [SlotVal],
    /// Set while evaluating a grouped program over an empty group.
    pub empty_group: bool,
    /// Reused across rows to keep the hot loop allocation-free.
    pub stack: Vec<Value>,
    /// Aggregate results for the current group (grouped programs only).
    pub aggs: Vec<Value>,
}

impl<'a> EvalCx<'a> {
    /// A context with no aggregates and the given subquery slots.
    pub fn plain(slots: &'a [SlotVal]) -> EvalCx<'a> {
        EvalCx {
            slots,
            empty_group: false,
            stack: Vec::with_capacity(8),
            aggs: Vec::new(),
        }
    }
}

/// A compiled expression: postfix ops over a fixed row layout.
#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub(crate) ops: Vec<POp>,
}

impl Program {
    /// Wrap raw ops, folding the whole program to a constant when it
    /// reads neither columns, slots, aggregates, nor the group flag.
    pub fn new(ops: Vec<POp>) -> Program {
        let mut p = Program { ops };
        if p.is_const() {
            let mut cx = EvalCx::plain(&[]);
            let v = p.eval(&[], &mut cx);
            p.ops = vec![POp::Const(v)];
        }
        p
    }

    /// No runtime inputs: safe to evaluate at compile time.
    fn is_const(&self) -> bool {
        !self.ops.iter().any(|op| {
            matches!(
                op,
                POp::Col(_)
                    | POp::ScalarSlot(_)
                    | POp::InSlot { .. }
                    | POp::ExistsSlot { .. }
                    | POp::SkipIfEmptyGroup(_)
                    | POp::Agg(_)
            )
        })
    }

    /// The column offsets this program reads.
    pub fn cols(&self) -> impl Iterator<Item = usize> + '_ {
        self.ops.iter().filter_map(|op| match op {
            POp::Col(i) => Some(*i),
            _ => None,
        })
    }

    /// Evaluate on one row. Total: never errors (see module docs).
    pub fn eval(&self, row: &[Value], cx: &mut EvalCx) -> Value {
        cx.stack.clear();
        let mut i = 0;
        while i < self.ops.len() {
            match &self.ops[i] {
                POp::Col(idx) => cx.stack.push(row.get(*idx).cloned().unwrap_or(Value::Null)),
                POp::Const(v) => cx.stack.push(v.clone()),
                POp::Cmp(op) => {
                    let r = pop(&mut cx.stack);
                    let l = pop(&mut cx.stack);
                    cx.stack.push(compare(*op, &l, &r));
                }
                POp::And3 => {
                    let b = tri(&pop(&mut cx.stack));
                    let a = tri(&pop(&mut cx.stack));
                    cx.stack.push(from_tri(and3(a, b)));
                }
                POp::Or3 => {
                    let b = tri(&pop(&mut cx.stack));
                    let a = tri(&pop(&mut cx.stack));
                    cx.stack.push(from_tri(or3(a, b)));
                }
                POp::Not3 => {
                    let a = tri(&pop(&mut cx.stack));
                    cx.stack.push(from_tri(not3(a)));
                }
                POp::IsNull { negated } => {
                    let v = pop(&mut cx.stack);
                    cx.stack.push(Value::Bool(v.is_null() != *negated));
                }
                POp::Between { negated } => {
                    let hi = pop(&mut cx.stack);
                    let lo = pop(&mut cx.stack);
                    let v = pop(&mut cx.stack);
                    cx.stack.push(between_value(&v, &lo, &hi, *negated));
                }
                POp::InList { negated, n } => {
                    let base = cx.stack.len().saturating_sub(*n);
                    let v_at = base.saturating_sub(1);
                    let mut hit: Option<bool> = Some(false);
                    for k in base..cx.stack.len() {
                        match cx.stack[v_at].sql_eq(&cx.stack[k]) {
                            Some(true) => {
                                hit = Some(true);
                                break;
                            }
                            None => hit = None,
                            Some(false) => {}
                        }
                    }
                    cx.stack.truncate(v_at);
                    cx.stack
                        .push(from_tri(if *negated { not3(hit) } else { hit }));
                }
                POp::LikeConst { negated, matcher } => {
                    let v = pop(&mut cx.stack);
                    cx.stack.push(like_const_value(&v, matcher, *negated));
                }
                POp::LikeDyn { negated } => {
                    let p = pop(&mut cx.stack);
                    let v = pop(&mut cx.stack);
                    cx.stack.push(like_dyn_value(&v, &p, *negated));
                }
                POp::Arith(op) => {
                    let r = pop(&mut cx.stack);
                    let l = pop(&mut cx.stack);
                    cx.stack.push(arith(*op, &l, &r));
                }
                POp::Neg => {
                    let v = pop(&mut cx.stack);
                    cx.stack.push(neg_value(v));
                }
                POp::Call { name, argc } => {
                    let base = cx.stack.len().saturating_sub(*argc);
                    let v = scalar_function_upper(name, &cx.stack[base..]).unwrap_or(Value::Null);
                    cx.stack.truncate(base);
                    cx.stack.push(v);
                }
                POp::Case {
                    has_operand,
                    branches,
                    has_else,
                } => {
                    let total = usize::from(*has_operand) + 2 * branches + usize::from(*has_else);
                    let base = cx.stack.len().saturating_sub(total);
                    let v = case_value(&cx.stack[base..], *has_operand, *branches, *has_else);
                    cx.stack.truncate(base);
                    cx.stack.push(v);
                }
                POp::Cast(ty) => {
                    let v = pop(&mut cx.stack);
                    cx.stack.push(cast_typed(&v, *ty));
                }
                POp::ScalarSlot(slot) => cx.stack.push(match cx.slots.get(*slot) {
                    Some(SlotVal::Scalar(v)) => v.clone(),
                    _ => Value::Null,
                }),
                POp::InSlot { negated, slot } => {
                    let v = pop(&mut cx.stack);
                    let r = in_slot_value(&v, cx.slots.get(*slot), *negated);
                    cx.stack.push(r);
                }
                POp::ExistsSlot { negated, slot } => {
                    cx.stack.push(match cx.slots.get(*slot) {
                        Some(SlotVal::Set(vals)) => Value::Bool(vals.is_empty() == *negated),
                        _ => Value::Null,
                    });
                }
                POp::SkipIfEmptyGroup(n) => {
                    if cx.empty_group {
                        cx.stack.push(Value::Null);
                        i += n;
                    }
                }
                POp::Agg(idx) => cx
                    .stack
                    .push(cx.aggs.get(*idx).cloned().unwrap_or(Value::Null)),
            }
            i += 1;
        }
        cx.stack.pop().unwrap_or(Value::Null)
    }

    /// Evaluate over a batch of rows, pushing one value per row into
    /// `out` (cleared first). Each op runs once per batch over a stack of
    /// value vectors. Grouped programs (empty-group guards / aggregate
    /// refs) fall back to per-row evaluation — they only ever run
    /// per-group anyway.
    pub fn eval_batch(&self, rows: &[&[Value]], cx: &mut EvalCx, out: &mut Vec<Value>) {
        out.clear();
        if self
            .ops
            .iter()
            .any(|op| matches!(op, POp::SkipIfEmptyGroup(_) | POp::Agg(_)))
        {
            for r in rows {
                out.push(self.eval(r, cx));
            }
            return;
        }
        let n = rows.len();
        let mut stack: Vec<Vec<Value>> = Vec::new();
        let mut pool: Vec<Vec<Value>> = Vec::new();
        for op in &self.ops {
            match op {
                POp::Col(idx) => {
                    let mut c = take(&mut pool, n);
                    for r in rows {
                        c.push(r.get(*idx).cloned().unwrap_or(Value::Null));
                    }
                    stack.push(c);
                }
                POp::Const(v) => {
                    let mut c = take(&mut pool, n);
                    c.resize(n, v.clone());
                    stack.push(c);
                }
                POp::Cmp(opc) => {
                    let r = vpop(&mut stack, n);
                    let mut l = vpop(&mut stack, n);
                    for i in 0..n {
                        l[i] = compare(*opc, &l[i], &r[i]);
                    }
                    pool.push(r);
                    stack.push(l);
                }
                POp::And3 => {
                    let b = vpop(&mut stack, n);
                    let mut a = vpop(&mut stack, n);
                    for i in 0..n {
                        a[i] = from_tri(and3(tri(&a[i]), tri(&b[i])));
                    }
                    pool.push(b);
                    stack.push(a);
                }
                POp::Or3 => {
                    let b = vpop(&mut stack, n);
                    let mut a = vpop(&mut stack, n);
                    for i in 0..n {
                        a[i] = from_tri(or3(tri(&a[i]), tri(&b[i])));
                    }
                    pool.push(b);
                    stack.push(a);
                }
                POp::Not3 => {
                    let mut a = vpop(&mut stack, n);
                    for v in a.iter_mut() {
                        *v = from_tri(not3(tri(v)));
                    }
                    stack.push(a);
                }
                POp::IsNull { negated } => {
                    let mut a = vpop(&mut stack, n);
                    for v in a.iter_mut() {
                        *v = Value::Bool(v.is_null() != *negated);
                    }
                    stack.push(a);
                }
                POp::Between { negated } => {
                    let hi = vpop(&mut stack, n);
                    let lo = vpop(&mut stack, n);
                    let mut v = vpop(&mut stack, n);
                    for i in 0..n {
                        v[i] = between_value(&v[i], &lo[i], &hi[i], *negated);
                    }
                    pool.push(hi);
                    pool.push(lo);
                    stack.push(v);
                }
                POp::InList { negated, n: ln } => {
                    let mut items: Vec<Vec<Value>> = Vec::with_capacity(*ln);
                    for _ in 0..*ln {
                        items.push(vpop(&mut stack, n));
                    }
                    let mut v = vpop(&mut stack, n);
                    for i in 0..n {
                        let mut hit: Option<bool> = Some(false);
                        for item in &items {
                            match v[i].sql_eq(&item[i]) {
                                Some(true) => {
                                    hit = Some(true);
                                    break;
                                }
                                None => hit = None,
                                Some(false) => {}
                            }
                        }
                        v[i] = from_tri(if *negated { not3(hit) } else { hit });
                    }
                    pool.extend(items);
                    stack.push(v);
                }
                POp::LikeConst { negated, matcher } => {
                    let mut v = vpop(&mut stack, n);
                    for x in v.iter_mut() {
                        *x = like_const_value(x, matcher, *negated);
                    }
                    stack.push(v);
                }
                POp::LikeDyn { negated } => {
                    let p = vpop(&mut stack, n);
                    let mut v = vpop(&mut stack, n);
                    for i in 0..n {
                        v[i] = like_dyn_value(&v[i], &p[i], *negated);
                    }
                    pool.push(p);
                    stack.push(v);
                }
                POp::Arith(opc) => {
                    let r = vpop(&mut stack, n);
                    let mut l = vpop(&mut stack, n);
                    for i in 0..n {
                        l[i] = arith(*opc, &l[i], &r[i]);
                    }
                    pool.push(r);
                    stack.push(l);
                }
                POp::Neg => {
                    let mut v = vpop(&mut stack, n);
                    for x in v.iter_mut() {
                        *x = neg_value(std::mem::replace(x, Value::Null));
                    }
                    stack.push(v);
                }
                POp::Call { name, argc } => {
                    let mut args: Vec<Vec<Value>> = Vec::with_capacity(*argc);
                    for _ in 0..*argc {
                        args.push(vpop(&mut stack, n));
                    }
                    args.reverse();
                    let mut c = take(&mut pool, n);
                    let mut buf: Vec<Value> = Vec::with_capacity(*argc);
                    for i in 0..n {
                        buf.clear();
                        buf.extend(args.iter().map(|a| a[i].clone()));
                        c.push(scalar_function_upper(name, &buf).unwrap_or(Value::Null));
                    }
                    pool.extend(args);
                    stack.push(c);
                }
                POp::Case {
                    has_operand,
                    branches,
                    has_else,
                } => {
                    let total = usize::from(*has_operand) + 2 * branches + usize::from(*has_else);
                    let mut parts: Vec<Vec<Value>> = Vec::with_capacity(total);
                    for _ in 0..total {
                        parts.push(vpop(&mut stack, n));
                    }
                    parts.reverse();
                    let mut c = take(&mut pool, n);
                    let mut buf: Vec<Value> = Vec::with_capacity(total);
                    for i in 0..n {
                        buf.clear();
                        buf.extend(parts.iter().map(|p| p[i].clone()));
                        c.push(case_value(&buf, *has_operand, *branches, *has_else));
                    }
                    pool.extend(parts);
                    stack.push(c);
                }
                POp::Cast(ty) => {
                    let mut v = vpop(&mut stack, n);
                    for x in v.iter_mut() {
                        *x = cast_typed(x, *ty);
                    }
                    stack.push(v);
                }
                POp::ScalarSlot(slot) => {
                    let val = match cx.slots.get(*slot) {
                        Some(SlotVal::Scalar(v)) => v.clone(),
                        _ => Value::Null,
                    };
                    let mut c = take(&mut pool, n);
                    c.resize(n, val);
                    stack.push(c);
                }
                POp::InSlot { negated, slot } => {
                    let mut v = vpop(&mut stack, n);
                    for x in v.iter_mut() {
                        *x = in_slot_value(x, cx.slots.get(*slot), *negated);
                    }
                    stack.push(v);
                }
                POp::ExistsSlot { negated, slot } => {
                    let val = match cx.slots.get(*slot) {
                        Some(SlotVal::Set(vals)) => Value::Bool(vals.is_empty() == *negated),
                        _ => Value::Null,
                    };
                    let mut c = take(&mut pool, n);
                    c.resize(n, val);
                    stack.push(c);
                }
                // unreachable: guarded by the per-row fallback above
                POp::SkipIfEmptyGroup(_) | POp::Agg(_) => {}
            }
        }
        match stack.pop() {
            Some(top) => out.extend(top),
            None => out.resize(n, Value::Null),
        }
    }

    /// Clone with every column reference rewritten through `f` (used when
    /// a filter compiled against the canonical layout is applied to a
    /// reordered working layout).
    pub fn remap_cols(&self, f: impl Fn(usize) -> usize) -> Program {
        Program {
            ops: self
                .ops
                .iter()
                .map(|op| match op {
                    POp::Col(i) => POp::Col(f(*i)),
                    other => other.clone(),
                })
                .collect(),
        }
    }
}

/// Pop with a NULL default — unreachable for compiler-emitted programs,
/// but keeps evaluation total.
fn pop(stack: &mut Vec<Value>) -> Value {
    stack.pop().unwrap_or(Value::Null)
}

/// Batch-stack pop with an all-NULL default.
fn vpop(stack: &mut Vec<Vec<Value>>, n: usize) -> Vec<Value> {
    stack.pop().unwrap_or_else(|| vec![Value::Null; n])
}

/// Grab a cleared vector from the pool (or a fresh one).
fn take(pool: &mut Vec<Vec<Value>>, n: usize) -> Vec<Value> {
    let mut v = pool.pop().unwrap_or_default();
    v.clear();
    v.reserve(n);
    v
}

pub(crate) fn between_value(v: &Value, lo: &Value, hi: &Value, negated: bool) -> Value {
    let ge = v.sql_cmp(lo).map(|o| o != std::cmp::Ordering::Less);
    let le = v.sql_cmp(hi).map(|o| o != std::cmp::Ordering::Greater);
    let inside = and3(ge, le);
    from_tri(if negated { not3(inside) } else { inside })
}

pub(crate) fn like_const_value(v: &Value, matcher: &LikeMatcher, negated: bool) -> Value {
    match v {
        Value::Str(s) => Value::Bool(matcher.matches(s) != negated),
        Value::Null => Value::Null,
        _ => Value::Bool(false),
    }
}

fn like_dyn_value(v: &Value, p: &Value, negated: bool) -> Value {
    match (v, p) {
        (Value::Str(s), Value::Str(pat)) => {
            Value::Bool(LikeMatcher::new(pat).matches(s) != negated)
        }
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        _ => Value::Bool(false),
    }
}

fn neg_value(v: Value) -> Value {
    match v {
        Value::Num(x) => Value::Num(-x),
        _ => Value::Null,
    }
}

/// CASE over a stack slice laid out as `[operand?] w1 t1 … wk tk [else?]`.
fn case_value(parts: &[Value], has_operand: bool, branches: usize, has_else: bool) -> Value {
    let pairs = usize::from(has_operand);
    for k in 0..branches {
        let w = match parts.get(pairs + 2 * k) {
            Some(w) => w,
            None => return Value::Null,
        };
        let hit = if has_operand {
            parts.first().and_then(|op| op.sql_eq(w)) == Some(true)
        } else {
            w.is_truthy()
        };
        if hit {
            return parts.get(pairs + 2 * k + 1).cloned().unwrap_or(Value::Null);
        }
    }
    if has_else {
        parts
            .get(pairs + 2 * branches)
            .cloned()
            .unwrap_or(Value::Null)
    } else {
        Value::Null
    }
}

pub(crate) fn in_slot_value(v: &Value, slot: Option<&SlotVal>, negated: bool) -> Value {
    let mut hit: Option<bool> = Some(false);
    if let Some(SlotVal::Set(vals)) = slot {
        for x in vals {
            match v.sql_eq(x) {
                Some(true) => {
                    hit = Some(true);
                    break;
                }
                None => hit = None,
                Some(false) => {}
            }
        }
    }
    from_tri(if negated { not3(hit) } else { hit })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(ops: Vec<POp>) -> Value {
        let p = Program::new(ops);
        let mut cx = EvalCx::plain(&[]);
        p.eval(&[], &mut cx)
    }

    #[test]
    fn constant_folding_collapses_pure_programs() {
        let p = Program::new(vec![
            POp::Const(Value::Num(2.0)),
            POp::Const(Value::Num(3.0)),
            POp::Arith('+'),
        ]);
        assert!(matches!(p.ops.as_slice(), [POp::Const(Value::Num(x))] if *x == 5.0));
        // a column reference blocks folding
        let p = Program::new(vec![
            POp::Col(0),
            POp::Const(Value::Num(3.0)),
            POp::Arith('+'),
        ]);
        assert_eq!(p.ops.len(), 3);
    }

    #[test]
    fn three_valued_logic_matches_sql() {
        let null = POp::Const(Value::Null);
        let t = POp::Const(Value::Bool(true));
        let f = POp::Const(Value::Bool(false));
        assert_eq!(
            eval(vec![null.clone(), f.clone(), POp::And3]),
            Value::Bool(false)
        );
        assert_eq!(eval(vec![null.clone(), t.clone(), POp::And3]), Value::Null);
        assert_eq!(
            eval(vec![null.clone(), t.clone(), POp::Or3]),
            Value::Bool(true)
        );
        assert_eq!(eval(vec![null.clone(), f.clone(), POp::Or3]), Value::Null);
        assert_eq!(eval(vec![null.clone(), POp::Not3]), Value::Null);
        assert_eq!(
            eval(vec![null, POp::IsNull { negated: false }]),
            Value::Bool(true)
        );
    }

    #[test]
    fn in_list_has_unknown_semantics() {
        // 2 IN (1, NULL) is UNKNOWN; 1 IN (1, NULL) is TRUE
        let prog = |v: f64| {
            vec![
                POp::Const(Value::Num(v)),
                POp::Const(Value::Num(1.0)),
                POp::Const(Value::Null),
                POp::InList {
                    negated: false,
                    n: 2,
                },
            ]
        };
        assert_eq!(eval(prog(2.0)), Value::Null);
        assert_eq!(eval(prog(1.0)), Value::Bool(true));
    }

    #[test]
    fn empty_group_guard_skips_the_subtree() {
        // guard(Col 0 + 1) over an empty group yields NULL, not an eval
        let p = Program::new(vec![
            POp::SkipIfEmptyGroup(3),
            POp::Col(0),
            POp::Const(Value::Num(1.0)),
            POp::Arith('+'),
        ]);
        let mut cx = EvalCx::plain(&[]);
        cx.empty_group = true;
        assert_eq!(p.eval(&[], &mut cx), Value::Null);
        cx.empty_group = false;
        assert_eq!(p.eval(&[Value::Num(4.0)], &mut cx), Value::Num(5.0));
    }

    #[test]
    fn case_selects_the_first_hit_branch() {
        // CASE WHEN false THEN 1 WHEN true THEN 2 ELSE 3 END
        let v = eval(vec![
            POp::Const(Value::Bool(false)),
            POp::Const(Value::Num(1.0)),
            POp::Const(Value::Bool(true)),
            POp::Const(Value::Num(2.0)),
            POp::Const(Value::Num(3.0)),
            POp::Case {
                has_operand: false,
                branches: 2,
                has_else: true,
            },
        ]);
        assert_eq!(v, Value::Num(2.0));
    }

    #[test]
    fn batch_evaluation_agrees_with_scalar() {
        // (col0 + 2) > 3 AND col1 LIKE 'a%'
        let p = Program::new(vec![
            POp::Col(0),
            POp::Const(Value::Num(2.0)),
            POp::Arith('+'),
            POp::Const(Value::Num(3.0)),
            POp::Cmp(CompareOp::Gt),
            POp::Col(1),
            POp::LikeConst {
                negated: false,
                matcher: LikeMatcher::new("a%"),
            },
            POp::And3,
        ]);
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Num(5.0), Value::str("abc")],
            vec![Value::Num(0.0), Value::str("abc")],
            vec![Value::Null, Value::str("xyz")],
            vec![Value::Num(9.0), Value::Null],
        ];
        let refs: Vec<&[Value]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut cx = EvalCx::plain(&[]);
        let mut out = Vec::new();
        p.eval_batch(&refs, &mut cx, &mut out);
        let scalar: Vec<Value> = rows.iter().map(|r| p.eval(r, &mut cx)).collect();
        assert_eq!(out, scalar);
        assert_eq!(out[0], Value::Bool(true));
    }
}
