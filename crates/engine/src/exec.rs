//! Tree-walking SQL executor.
//!
//! Executes the parsed AST directly against an in-memory [`Database`]. The
//! engine exists to *verify labels*: equivalence transforms must preserve
//! results and non-equivalence transforms must change them on witness
//! databases, and the cost model is sanity-checked against row counting.
//! Witness databases are small (tens of rows), so the executor favours
//! clarity over performance: nested-loop joins, per-row expression
//! interpretation, full materialization.
//!
//! Supported: implicit/explicit joins (inner, left, right, full, cross,
//! `USING`), `WHERE`, `GROUP BY` + aggregates, `HAVING`, `DISTINCT`,
//! `ORDER BY`/`LIMIT`/`TOP`, set operations, CTEs, correlated subqueries
//! (scalar, `IN`, `EXISTS`), `CASE`, `CAST`, `LIKE`, `BETWEEN`, arithmetic,
//! and a library of scalar functions.

use crate::{Database, Relation, Value};
use squ_parser::ast::*;
use squ_parser::CompareOp;
use std::collections::HashMap;

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Referenced table missing from the database.
    UnknownTable(String),
    /// Referenced column not found in scope.
    UnknownColumn(String),
    /// A scalar subquery returned more than one row.
    ScalarSubqueryMultiRow,
    /// Feature not covered by the engine.
    Unsupported(String),
    /// An intermediate result exceeded the executor's row budget (the
    /// guard that turns accidental cross-product blow-ups into clean
    /// errors instead of hangs).
    ResourceLimit,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExecError::ScalarSubqueryMultiRow => {
                f.write_str("scalar subquery returned more than one row")
            }
            ExecError::Unsupported(s) => write!(f, "unsupported: {s}"),
            ExecError::ResourceLimit => f.write_str("intermediate result exceeded the row budget"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Counters accumulated during execution; input to cost-model validation
/// and the Criterion benchmarks.
///
/// The compiled engine ([`crate::physical`]) fills the same counters with
/// compiled-path meanings (an index probe counts only the fetched rows as
/// scanned, a consumed hash-equi filter skips its join pairs), plus the
/// compiled-only counters below. All counters are deterministic for a
/// given (query, database) — independent of cache warmth or thread
/// count — so fuzz reports stay byte-identical across `--jobs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Base-table rows materialized into the pipeline.
    pub rows_scanned: u64,
    /// Row pairs considered by join loops.
    pub join_pairs: u64,
    /// Rows in the final result.
    pub rows_output: u64,
    /// Subquery (re-)executions, counting correlated re-evaluation.
    pub subquery_evals: u64,
    /// Operator batches evaluated by the vectorized filter path.
    pub batches: u64,
    /// Hash-index equality probes issued.
    pub index_probes: u64,
    /// Rows fetched via index probes.
    pub index_hits: u64,
    /// 1 if the query ran on the compiled engine.
    pub compiled: u64,
    /// 1 if compilation was rejected and the interpreter ran instead.
    pub fallbacks: u64,
    /// Select blocks short-circuited because the semantic analyzer proved
    /// their WHERE clause unsatisfiable at compile time (compiled engine
    /// only; the interpreter stays the unoptimized semantics definition).
    pub empty_prunes: u64,
}

/// Execute a statement. `CREATE TABLE … AS` / `CREATE VIEW` execute their
/// defining query (the relation that *would* be stored).
pub fn execute(stmt: &Statement, db: &Database) -> Result<Relation, ExecError> {
    let q = stmt
        .query()
        .ok_or_else(|| ExecError::Unsupported("CREATE TABLE without AS SELECT".into()))?;
    execute_query(q, db).map(|(rel, _)| rel)
}

/// Execute a query, returning the result relation and execution statistics.
///
/// Hybrid entry point: the query is first lowered by
/// [`crate::physical::compile_query`]; any construct the compiler does not
/// cover rejects compilation and the whole query falls back to the
/// tree-walking interpreter ([`execute_query_interpreted`]), which remains
/// the semantics definition. [`ExecStats::compiled`] /
/// [`ExecStats::fallbacks`] record which path ran.
pub fn execute_query(q: &Query, db: &Database) -> Result<(Relation, ExecStats), ExecError> {
    if let Some(cq) = crate::physical::compile_query(q, db) {
        return cq.execute(db);
    }
    let (rel, mut stats) = execute_query_interpreted(q, db)?;
    stats.fallbacks = 1;
    Ok((rel, stats))
}

/// Execute a query on the tree-walking interpreter, bypassing the
/// compiled engine. This is the executable semantics the compiled path is
/// differentially verified against (and the baseline for perf ratios).
pub fn execute_query_interpreted(
    q: &Query,
    db: &Database,
) -> Result<(Relation, ExecStats), ExecError> {
    let mut cx = Cx {
        db,
        ctes: Vec::new(),
        stats: ExecStats::default(),
    };
    let rel = cx.query(q, &[])?;
    cx.stats.rows_output = rel.rows.len() as u64;
    Ok((rel, cx.stats))
}

/// A qualified column in a working row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QCol {
    pub(crate) binding: Option<String>,
    pub(crate) name: String,
}

/// One working relation: qualified columns + rows.
#[derive(Debug, Clone)]
struct Working {
    cols: Vec<QCol>,
    rows: Vec<Vec<Value>>,
}

/// A correlation frame: the columns and the current row of an enclosing
/// query, visible to subqueries.
struct Frame<'a> {
    cols: &'a [QCol],
    row: &'a [Value],
}

struct Cx<'a> {
    db: &'a Database,
    /// CTE environments (stack; inner queries see outer CTEs).
    ctes: Vec<HashMap<String, Relation>>,
    stats: ExecStats,
}

impl<'a> Cx<'a> {
    fn lookup_cte(&self, name: &str) -> Option<&Relation> {
        self.ctes
            .iter()
            .rev()
            .find_map(|env| env.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)))
            .map(|(_, v)| v)
    }

    fn query(&mut self, q: &Query, env: &[Frame]) -> Result<Relation, ExecError> {
        self.ctes.push(HashMap::new());
        let result = (|| {
            for cte in &q.ctes {
                let rel = self.query(&cte.query, env)?;
                self.ctes
                    .last_mut()
                    .expect("pushed above") // lint:allow: pushed earlier in this function
                    .insert(cte.name.clone(), rel);
            }
            let mut rel = self.set_expr(&q.body, &q.order_by, env)?;
            // LIMIT / TOP (TOP binds to the outermost select of the body).
            let effective_limit = q.limit.or(match &q.body {
                SetExpr::Select(s) => s.top,
                _ => None,
            });
            if let Some(n) = effective_limit {
                rel.rows.truncate(n as usize);
            }
            Ok(rel)
        })();
        self.ctes.pop();
        result
    }

    fn set_expr(
        &mut self,
        body: &SetExpr,
        order_by: &[OrderItem],
        env: &[Frame],
    ) -> Result<Relation, ExecError> {
        match body {
            SetExpr::Select(s) => self.select(s, order_by, env),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.set_expr(left, &[], env)?;
                let r = self.set_expr(right, &[], env)?;
                let mut rel = combine_set(op, *all, l, r);
                if !order_by.is_empty() {
                    // set-op ORDER BY references output column positions/names
                    sort_by_output_columns(&mut rel, order_by)?;
                }
                Ok(rel)
            }
        }
    }

    fn select(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Frame],
    ) -> Result<Relation, ExecError> {
        // Split WHERE into conjuncts so filters can be applied as soon as
        // their columns become available during FROM accumulation — without
        // this, comma-joined FROM lists (the Join-Order workload joins up
        // to 12 tables implicitly) would materialize the full cross
        // product before filtering.
        let mut conjuncts: Vec<&Expr> = Vec::new();
        if let Some(pred) = &s.selection {
            split_conjuncts(pred, &mut conjuncts);
        }
        let mut applied = vec![false; conjuncts.len()];

        // FROM
        let mut working = Working {
            cols: Vec::new(),
            rows: vec![Vec::new()], // one empty row for table-less SELECT
        };
        for (i, tr) in s.from.iter().enumerate() {
            let next = self.table_ref(tr, env)?;
            working = if i == 0 && working.cols.is_empty() {
                next
            } else {
                cross_product(&mut self.stats, working, next)?
            };
            // eagerly apply every not-yet-applied conjunct whose columns
            // (and subqueries — deferred) are now resolvable
            for (ci, c) in conjuncts.iter().enumerate() {
                if !applied[ci] && conjunct_resolvable(c, &working.cols) {
                    working.rows = self.filter_rows(c, working.cols.clone(), working.rows, env)?;
                    applied[ci] = true;
                }
            }
        }

        // WHERE: remaining conjuncts (correlated / subquery-bearing ones)
        for (ci, c) in conjuncts.iter().enumerate() {
            if !applied[ci] {
                working.rows = self.filter_rows(c, working.cols.clone(), working.rows, env)?;
            }
        }

        // grouping?
        let has_aggregate = s
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(|h| h.contains_aggregate())
            || order_by.iter().any(|o| o.expr.contains_aggregate());

        let (out_cols, mut out_rows) = if !s.group_by.is_empty() || has_aggregate {
            self.grouped_projection(s, order_by, env, &working)?
        } else {
            self.plain_projection(s, order_by, env, &working)?
        };

        // DISTINCT (keys kept alongside rows: Vec<(row, sortkeys)>)
        if s.distinct {
            let mut seen = std::collections::HashSet::new();
            out_rows.retain(|(row, _)| seen.insert(row.clone()));
        }

        // ORDER BY via the carried sort keys
        if !order_by.is_empty() {
            out_rows.sort_by(|(_, ka), (_, kb)| {
                for ((va, item), vb) in ka.iter().zip(order_by).zip(kb.iter()) {
                    let ord = va.total_cmp(vb);
                    let ord = if item.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        Ok(Relation::new(
            out_cols,
            out_rows.into_iter().map(|(r, _)| r).collect(),
        ))
    }

    /// Project without grouping. Returns output columns plus
    /// `(row, sort_keys)` pairs.
    #[allow(clippy::type_complexity)]
    fn plain_projection(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Frame],
        working: &Working,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>), ExecError> {
        let out_cols = projection_names(s, &working.cols);
        let mut out = Vec::with_capacity(working.rows.len());
        for row in &working.rows {
            let mut frames: Vec<Frame> = env
                .iter()
                .map(|f| Frame {
                    cols: f.cols,
                    row: f.row,
                })
                .collect();
            frames.push(Frame {
                cols: &working.cols,
                row,
            });
            let mut vals = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard => vals.extend(row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        for (c, v) in working.cols.iter().zip(row) {
                            if c.binding
                                .as_deref()
                                .is_some_and(|b| b.eq_ignore_ascii_case(q))
                            {
                                vals.push(v.clone());
                            }
                        }
                    }
                    SelectItem::Expr { expr, .. } => vals.push(self.expr_single(expr, &frames)?),
                }
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for o in order_by {
                keys.push(self.order_key(&o.expr, &frames, s, &vals)?);
            }
            out.push((vals, keys));
        }
        Ok((out_cols, out))
    }

    /// Project with grouping and aggregates.
    #[allow(clippy::type_complexity)]
    fn grouped_projection(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        env: &[Frame],
        working: &Working,
    ) -> Result<(Vec<String>, Vec<(Vec<Value>, Vec<Value>)>), ExecError> {
        // group rows by the GROUP BY key (empty key = single global group)
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (ri, row) in working.rows.iter().enumerate() {
            let mut frames: Vec<Frame> = env
                .iter()
                .map(|f| Frame {
                    cols: f.cols,
                    row: f.row,
                })
                .collect();
            frames.push(Frame {
                cols: &working.cols,
                row,
            });
            let mut key = Vec::with_capacity(s.group_by.len());
            for g in &s.group_by {
                key.push(self.expr_single(g, &frames)?);
            }
            match index.get(&key) {
                Some(&gi) => groups[gi].1.push(ri),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![ri]));
                }
            }
        }
        // a global aggregate over zero rows still yields one group
        if groups.is_empty() && s.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let out_cols = projection_names(s, &working.cols);
        let mut out = Vec::with_capacity(groups.len());
        for (_key, row_ids) in &groups {
            let rows: Vec<&Vec<Value>> = row_ids.iter().map(|&i| &working.rows[i]).collect();
            // HAVING
            if let Some(h) = &s.having {
                let v = self.expr_grouped(h, env, &working.cols, &rows)?;
                if !v.is_truthy() {
                    continue;
                }
            }
            let mut vals = Vec::with_capacity(s.items.len());
            for item in &s.items {
                match item {
                    SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                        return Err(ExecError::Unsupported(
                            "wildcard projection with GROUP BY".into(),
                        ))
                    }
                    SelectItem::Expr { expr, .. } => {
                        vals.push(self.expr_grouped(expr, env, &working.cols, &rows)?)
                    }
                }
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for o in order_by {
                // alias fast-path first, else grouped evaluation
                if let Some(v) = alias_key(&o.expr, s, &vals) {
                    keys.push(v);
                } else {
                    keys.push(self.expr_grouped(&o.expr, env, &working.cols, &rows)?);
                }
            }
            out.push((vals, keys));
        }
        Ok((out_cols, out))
    }

    /// Evaluate an ORDER BY key for a plain (non-grouped) row.
    fn order_key(
        &mut self,
        expr: &Expr,
        frames: &[Frame],
        s: &Select,
        out_vals: &[Value],
    ) -> Result<Value, ExecError> {
        if let Some(v) = alias_key(expr, s, out_vals) {
            return Ok(v);
        }
        self.expr_single(expr, frames)
    }

    // ----- FROM handling -----

    fn table_ref(&mut self, tr: &TableRef, env: &[Frame]) -> Result<Working, ExecError> {
        match tr {
            TableRef::Named { name, alias } => {
                let rel = if let Some(r) = self.lookup_cte(name) {
                    r.clone()
                } else {
                    self.db
                        .table(name)
                        .ok_or_else(|| ExecError::UnknownTable(name.clone()))?
                        .clone()
                };
                self.stats.rows_scanned += rel.rows.len() as u64;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                Ok(Working {
                    cols: rel
                        .columns
                        .iter()
                        .map(|c| QCol {
                            binding: Some(binding.clone()),
                            name: c.clone(),
                        })
                        .collect(),
                    rows: rel.rows,
                })
            }
            TableRef::Derived { query, alias } => {
                let rel = self.query(query, env)?;
                let binding = alias.clone().unwrap_or_default();
                Ok(Working {
                    cols: rel
                        .columns
                        .iter()
                        .map(|c| QCol {
                            binding: Some(binding.clone()),
                            name: c.clone(),
                        })
                        .collect(),
                    rows: rel.rows,
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                constraint,
            } => {
                let l = self.table_ref(left, env)?;
                let r = self.table_ref(right, env)?;
                self.join(l, r, *kind, constraint, env)
            }
        }
    }

    fn join(
        &mut self,
        l: Working,
        r: Working,
        kind: JoinKind,
        constraint: &JoinConstraint,
        env: &[Frame],
    ) -> Result<Working, ExecError> {
        let mut cols = l.cols.clone();
        cols.extend(r.cols.clone());

        let on_matches = |cx: &mut Cx, lrow: &[Value], rrow: &[Value]| -> Result<bool, ExecError> {
            match constraint {
                JoinConstraint::None => Ok(true),
                JoinConstraint::On(e) => {
                    let mut combined = lrow.to_vec();
                    combined.extend(rrow.iter().cloned());
                    let mut frames: Vec<Frame> = env
                        .iter()
                        .map(|f| Frame {
                            cols: f.cols,
                            row: f.row,
                        })
                        .collect();
                    frames.push(Frame {
                        cols: &cols,
                        row: &combined,
                    });
                    Ok(cx.expr_single(e, &frames)?.is_truthy())
                }
                JoinConstraint::Using(names) => {
                    for n in names {
                        let li = l
                            .cols
                            .iter()
                            .position(|c| c.name.eq_ignore_ascii_case(n))
                            .ok_or_else(|| ExecError::UnknownColumn(n.clone()))?;
                        let ri = r
                            .cols
                            .iter()
                            .position(|c| c.name.eq_ignore_ascii_case(n))
                            .ok_or_else(|| ExecError::UnknownColumn(n.clone()))?;
                        if lrow[li].sql_eq(&rrow[ri]) != Some(true) {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
            }
        };

        if l.rows.len().saturating_mul(r.rows.len()) > MAX_INTERMEDIATE_ROWS {
            return Err(ExecError::ResourceLimit);
        }

        // Hash fast path: a single-equality ON clause between one column of
        // each side turns the O(|L|·|R|) nested loop into O(|L|+|R|). Only
        // taken past a small size product — below it the loop is cheaper
        // than building the table, and per-pair stats stay exact for tests.
        let hash_cols = match constraint {
            JoinConstraint::On(e) => equi_join_columns(e, &l.cols, &r.cols),
            _ => None,
        };
        if let Some((li, ri_col)) = hash_cols {
            if l.rows.len().saturating_mul(r.rows.len()) > 4096 {
                return Ok(self.hash_join(l, r, kind, cols, li, ri_col));
            }
        }

        let mut rows = Vec::new();
        let mut right_matched = vec![false; r.rows.len()];
        for lrow in &l.rows {
            let mut matched = false;
            for (ri, rrow) in r.rows.iter().enumerate() {
                self.stats.join_pairs += 1;
                if on_matches(self, lrow, rrow)? {
                    matched = true;
                    right_matched[ri] = true;
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut row = lrow.clone();
                row.extend(std::iter::repeat(Value::Null).take(r.cols.len()));
                rows.push(row);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in r.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut row: Vec<Value> =
                        std::iter::repeat(Value::Null).take(l.cols.len()).collect();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
        }
        Ok(Working { cols, rows })
    }

    /// Equi-join via a hash table on the right side. Preserves left-row
    /// order (and right-row order within a key), so output is deterministic.
    fn hash_join(
        &mut self,
        l: Working,
        r: Working,
        kind: JoinKind,
        cols: Vec<QCol>,
        li: usize,
        ri_col: usize,
    ) -> Working {
        let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
        for (i, rrow) in r.rows.iter().enumerate() {
            let key = &rrow[ri_col];
            if !key.is_null() {
                table.entry(key).or_default().push(i);
            }
        }
        let mut rows = Vec::new();
        let mut right_matched = vec![false; r.rows.len()];
        for lrow in &l.rows {
            let key = &lrow[li];
            let matches = if key.is_null() { None } else { table.get(key) };
            match matches {
                Some(idxs) => {
                    self.stats.join_pairs += idxs.len() as u64;
                    for &ri in idxs {
                        right_matched[ri] = true;
                        let mut row = lrow.clone();
                        row.extend(r.rows[ri].iter().cloned());
                        rows.push(row);
                    }
                }
                None => {
                    if matches!(kind, JoinKind::Left | JoinKind::Full) {
                        let mut row = lrow.clone();
                        row.extend(std::iter::repeat(Value::Null).take(r.cols.len()));
                        rows.push(row);
                    }
                }
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in r.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut row: Vec<Value> =
                        std::iter::repeat(Value::Null).take(l.cols.len()).collect();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
        }
        Working { cols, rows }
    }

    // ----- expression evaluation -----

    /// Evaluate an expression against a single-row context.
    fn expr_single(&mut self, e: &Expr, frames: &[Frame]) -> Result<Value, ExecError> {
        match e {
            Expr::Column(c) => resolve_value(c, frames),
            Expr::Literal(l) => Ok(match l {
                Literal::Number(v) => Value::Num(*v),
                Literal::String(s) => Value::Str(s.clone()),
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Null => Value::Null,
            }),
            Expr::Compare { op, left, right } => {
                let l = self.expr_single(left, frames)?;
                let r = self.expr_single(right, frames)?;
                Ok(compare(*op, &l, &r))
            }
            Expr::And(a, b) => {
                let ta = tri(&self.expr_single(a, frames)?);
                if ta == Some(false) {
                    return Ok(Value::Bool(false)); // short-circuit
                }
                let tb = tri(&self.expr_single(b, frames)?);
                Ok(from_tri(and3(ta, tb)))
            }
            Expr::Or(a, b) => {
                let ta = tri(&self.expr_single(a, frames)?);
                if ta == Some(true) {
                    return Ok(Value::Bool(true)); // short-circuit
                }
                let tb = tri(&self.expr_single(b, frames)?);
                Ok(from_tri(or3(ta, tb)))
            }
            Expr::Not(inner) => {
                let t = tri(&self.expr_single(inner, frames)?);
                Ok(from_tri(not3(t)))
            }
            Expr::IsNull { expr, negated } => {
                let v = self.expr_single(expr, frames)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.expr_single(expr, frames)?;
                let lo = self.expr_single(low, frames)?;
                let hi = self.expr_single(high, frames)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                let inside = and3(ge, le);
                Ok(from_tri(if *negated { not3(inside) } else { inside }))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.expr_single(expr, frames)?;
                // x IN (…): TRUE on a match, UNKNOWN if no match but some
                // comparison was NULL, else FALSE; NOT IN negates in 3VL
                let mut base: Option<bool> = Some(false);
                for item in list {
                    let iv = self.expr_single(item, frames)?;
                    match v.sql_eq(&iv) {
                        Some(true) => {
                            base = Some(true);
                            break;
                        }
                        None => base = None,
                        Some(false) => {}
                    }
                }
                Ok(from_tri(if *negated { not3(base) } else { base }))
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let v = self.expr_single(expr, frames)?;
                self.stats.subquery_evals += 1;
                let rel = self.query(subquery, frames)?;
                let mut base: Option<bool> = Some(false);
                for r in &rel.rows {
                    match r.first().map(|x| v.sql_eq(x)) {
                        Some(Some(true)) => {
                            base = Some(true);
                            break;
                        }
                        Some(None) | None => base = None,
                        Some(Some(false)) => {}
                    }
                }
                Ok(from_tri(if *negated { not3(base) } else { base }))
            }
            Expr::Exists { subquery, negated } => {
                self.stats.subquery_evals += 1;
                let rel = self.query(subquery, frames)?;
                Ok(Value::Bool(rel.rows.is_empty() == *negated))
            }
            Expr::ScalarSubquery(q) => {
                self.stats.subquery_evals += 1;
                let rel = self.query(q, frames)?;
                match rel.rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rel.rows[0].first().cloned().unwrap_or(Value::Null)),
                    _ => Err(ExecError::ScalarSubqueryMultiRow),
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.expr_single(expr, frames)?;
                let p = self.expr_single(pattern, frames)?;
                match (&v, &p) {
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(s, pat) != *negated))
                    }
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    _ => Ok(Value::Bool(false)),
                }
            }
            Expr::Function { name, args, .. } => {
                if is_aggregate_name(name) {
                    // aggregate in a single-row context: treat the row as a
                    // one-row group (occurs in ORDER BY of grouped selects
                    // handled elsewhere; here be lenient)
                    return Err(ExecError::Unsupported(format!(
                        "aggregate {name} outside GROUP BY context"
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr_single(a, frames)?);
                }
                scalar_function(name, &vals)
            }
            Expr::Wildcard => Err(ExecError::Unsupported("bare * in expression".into())),
            Expr::Arith { op, left, right } => {
                let l = self.expr_single(left, frames)?;
                let r = self.expr_single(right, frames)?;
                Ok(arith(*op, &l, &r))
            }
            Expr::Neg(inner) => {
                let v = self.expr_single(inner, frames)?;
                Ok(match v {
                    Value::Num(x) => Value::Num(-x),
                    _ => Value::Null,
                })
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let op_val = match operand {
                    Some(op) => Some(self.expr_single(op, frames)?),
                    None => None,
                };
                for (w, t) in branches {
                    let wv = self.expr_single(w, frames)?;
                    let hit = match &op_val {
                        Some(ov) => ov.sql_eq(&wv) == Some(true),
                        None => wv.is_truthy(),
                    };
                    if hit {
                        return self.expr_single(t, frames);
                    }
                }
                match else_expr {
                    Some(e) => self.expr_single(e, frames),
                    None => Ok(Value::Null),
                }
            }
            Expr::Cast { expr, type_name } => {
                let v = self.expr_single(expr, frames)?;
                Ok(cast_value(&v, type_name))
            }
        }
    }

    /// Evaluate an expression in a grouped context: aggregates run over
    /// `rows`, other column references use the first row of the group.
    fn expr_grouped(
        &mut self,
        e: &Expr,
        env: &[Frame],
        cols: &[QCol],
        rows: &[&Vec<Value>],
    ) -> Result<Value, ExecError> {
        match e {
            Expr::Function {
                name,
                args,
                distinct,
            } if is_aggregate_name(name) => self.aggregate(name, args, *distinct, env, cols, rows),
            Expr::And(a, b) => {
                let ta = tri(&self.expr_grouped(a, env, cols, rows)?);
                if ta == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let tb = tri(&self.expr_grouped(b, env, cols, rows)?);
                Ok(from_tri(and3(ta, tb)))
            }
            Expr::Or(a, b) => {
                let ta = tri(&self.expr_grouped(a, env, cols, rows)?);
                if ta == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let tb = tri(&self.expr_grouped(b, env, cols, rows)?);
                Ok(from_tri(or3(ta, tb)))
            }
            Expr::Not(inner) => {
                let t = tri(&self.expr_grouped(inner, env, cols, rows)?);
                Ok(from_tri(not3(t)))
            }
            Expr::Compare { op, left, right } => {
                let l = self.expr_grouped(left, env, cols, rows)?;
                let r = self.expr_grouped(right, env, cols, rows)?;
                Ok(compare(*op, &l, &r))
            }
            Expr::Arith { op, left, right } => {
                let l = self.expr_grouped(left, env, cols, rows)?;
                let r = self.expr_grouped(right, env, cols, rows)?;
                Ok(arith(*op, &l, &r))
            }
            other => {
                // non-aggregate leaf: evaluate against the group's first row
                match rows.first() {
                    Some(first) => {
                        let mut frames: Vec<Frame> = env
                            .iter()
                            .map(|f| Frame {
                                cols: f.cols,
                                row: f.row,
                            })
                            .collect();
                        frames.push(Frame { cols, row: first });
                        self.expr_single(other, &frames)
                    }
                    None => Ok(Value::Null),
                }
            }
        }
    }

    fn aggregate(
        &mut self,
        name: &str,
        args: &[Expr],
        distinct: bool,
        env: &[Frame],
        cols: &[QCol],
        rows: &[&Vec<Value>],
    ) -> Result<Value, ExecError> {
        let upper = name.to_ascii_uppercase();
        // COUNT(*) — group size
        if upper == "COUNT" && matches!(args.first(), Some(Expr::Wildcard) | None) {
            return Ok(Value::Num(rows.len() as f64));
        }
        let arg = args
            .first()
            .ok_or_else(|| ExecError::Unsupported(format!("{name}()")))?;
        let mut vals = Vec::with_capacity(rows.len());
        for row in rows {
            let mut frames: Vec<Frame> = env
                .iter()
                .map(|f| Frame {
                    cols: f.cols,
                    row: f.row,
                })
                .collect();
            frames.push(Frame { cols, row });
            let v = self.expr_single(arg, &frames)?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if distinct {
            let mut seen = std::collections::HashSet::new();
            vals.retain(|v| seen.insert(v.clone()));
        }
        aggregate_value(&upper, &vals)
            .ok_or_else(|| ExecError::Unsupported(format!("aggregate {name}")))
    }
}

/// Finish an aggregate over the non-null (and, if requested, deduplicated)
/// argument values. `None` for an unrecognized aggregate name — callers
/// produce the interpreter's `Unsupported` error (the compiled engine
/// rejects unknown aggregates at compile time instead). Shared by both
/// engines so the leaf arithmetic is not part of the differential surface.
pub(crate) fn aggregate_value(upper: &str, vals: &[Value]) -> Option<Value> {
    Some(match upper {
        "COUNT" => Value::Num(vals.len() as f64),
        "SUM" => {
            if vals.is_empty() {
                Value::Null
            } else {
                Value::Num(vals.iter().filter_map(|v| v.as_num()).sum())
            }
        }
        "AVG" => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_num()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Num(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        "MIN" => vals
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        "MAX" => vals
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null),
        "STDEV" | "STDDEV" | "VAR" | "VARIANCE" => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_num()).collect();
            if nums.len() < 2 {
                Value::Null
            } else {
                let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                let var =
                    nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (nums.len() - 1) as f64;
                if upper.starts_with("VAR") {
                    Value::Num(var)
                } else {
                    Value::Num(var.sqrt())
                }
            }
        }
        _ => return None,
    })
}

impl<'a> Cx<'a> {
    /// Keep rows on which the conjunct is truthy.
    fn filter_rows(
        &mut self,
        pred: &Expr,
        cols: Vec<QCol>,
        rows: Vec<Vec<Value>>,
        env: &[Frame],
    ) -> Result<Vec<Vec<Value>>, ExecError> {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            let mut frames: Vec<Frame> = Vec::with_capacity(env.len() + 1);
            frames.extend(env.iter().map(|f| Frame {
                cols: f.cols,
                row: f.row,
            }));
            frames.push(Frame {
                cols: &cols,
                row: &row,
            });
            if self.expr_single(pred, &frames)?.is_truthy() {
                kept.push(row);
            }
        }
        Ok(kept)
    }
}

/// If `e` is a single equality between one column of `lcols` and one of
/// `rcols`, return their indices (left, right).
pub(crate) fn equi_join_columns(
    e: &Expr,
    lcols: &[QCol],
    rcols: &[QCol],
) -> Option<(usize, usize)> {
    let Expr::Compare {
        op: CompareOp::Eq,
        left,
        right,
    } = e
    else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) else {
        return None;
    };
    // only qualified references take the fast path: an unqualified name
    // could resolve into either side, and expression evaluation always
    // picks the leftmost occurrence — the hash path must not diverge
    let find = |cols: &[QCol], c: &ColumnRef| -> Option<usize> {
        let q = c.qualifier.as_deref()?;
        cols.iter().position(|qc| {
            qc.name.eq_ignore_ascii_case(&c.name)
                && qc
                    .binding
                    .as_deref()
                    .is_some_and(|bn| bn.eq_ignore_ascii_case(q))
        })
    };
    match (find(lcols, a), find(rcols, b)) {
        (Some(li), Some(ri)) => Some((li, ri)),
        _ => match (find(lcols, b), find(rcols, a)) {
            (Some(li), Some(ri)) => Some((li, ri)),
            _ => None,
        },
    }
}

/// Flatten a WHERE tree into its top-level AND conjuncts.
pub(crate) fn split_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::And(a, b) => {
            split_conjuncts(a, out);
            split_conjuncts(b, out);
        }
        other => out.push(other),
    }
}

/// Can the conjunct be evaluated with only `cols` available? Conjuncts
/// containing subqueries are deferred to the end (they may be correlated
/// against columns of later FROM items).
fn conjunct_resolvable(e: &Expr, cols: &[QCol]) -> bool {
    fn check(e: &Expr, cols: &[QCol], ok: &mut bool) {
        if !*ok {
            return;
        }
        match e {
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => *ok = false,
            Expr::Column(c) => {
                let hit = cols.iter().any(|qc| {
                    qc.name.eq_ignore_ascii_case(&c.name)
                        && match &c.qualifier {
                            Some(q) => qc
                                .binding
                                .as_deref()
                                .is_some_and(|b| b.eq_ignore_ascii_case(q)),
                            None => true,
                        }
                });
                if !hit {
                    *ok = false;
                }
            }
            other => other.for_each_child(&mut |ch| check(ch, cols, ok)),
        }
    }
    let mut ok = true;
    check(e, cols, &mut ok);
    ok
}

// ----- helpers -----

pub(crate) fn projection_names(s: &Select, working_cols: &[QCol]) -> Vec<String> {
    let mut out = Vec::new();
    for item in &s.items {
        match item {
            SelectItem::Wildcard => out.extend(working_cols.iter().map(|c| c.name.clone())),
            SelectItem::QualifiedWildcard(q) => out.extend(
                working_cols
                    .iter()
                    .filter(|c| {
                        c.binding
                            .as_deref()
                            .is_some_and(|b| b.eq_ignore_ascii_case(q))
                    })
                    .map(|c| c.name.clone()),
            ),
            SelectItem::Expr { expr, alias } => {
                out.push(alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.name.clone(),
                    Expr::Function { name, .. } => name.clone(),
                    _ => "expr".to_string(),
                }))
            }
        }
    }
    out
}

/// If `expr` is a bare column naming a projection alias (or the projected
/// column itself), return the already-computed output value.
fn alias_key(expr: &Expr, s: &Select, out_vals: &[Value]) -> Option<Value> {
    if let Expr::Column(c) = expr {
        if c.qualifier.is_none() {
            for (i, item) in s.items.iter().enumerate() {
                if let SelectItem::Expr { alias: Some(a), .. } = item {
                    if a.eq_ignore_ascii_case(&c.name) {
                        return out_vals.get(i).cloned();
                    }
                }
            }
        }
    }
    // expression identical to a projected expression (e.g. ORDER BY count(*))
    for (i, item) in s.items.iter().enumerate() {
        if let SelectItem::Expr { expr: pe, .. } = item {
            if exprs_equal_modulo_case(pe, expr) {
                return out_vals.get(i).cloned();
            }
        }
    }
    None
}

/// Structural equality with case-insensitive function names (ORDER BY
/// `count(*)` must match projected `COUNT(*)`).
pub(crate) fn exprs_equal_modulo_case(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (
            Expr::Function {
                name: n1,
                args: a1,
                distinct: d1,
            },
            Expr::Function {
                name: n2,
                args: a2,
                distinct: d2,
            },
        ) => {
            n1.eq_ignore_ascii_case(n2)
                && d1 == d2
                && a1.len() == a2.len()
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(x, y)| exprs_equal_modulo_case(x, y))
        }
        _ => a == b,
    }
}

fn resolve_value(c: &ColumnRef, frames: &[Frame]) -> Result<Value, ExecError> {
    for frame in frames.iter().rev() {
        for (qc, v) in frame.cols.iter().zip(frame.row.iter()) {
            let name_ok = qc.name.eq_ignore_ascii_case(&c.name);
            if !name_ok {
                continue;
            }
            match &c.qualifier {
                Some(q) => {
                    if qc
                        .binding
                        .as_deref()
                        .is_some_and(|b| b.eq_ignore_ascii_case(q))
                    {
                        return Ok(v.clone());
                    }
                }
                None => return Ok(v.clone()),
            }
        }
    }
    Err(ExecError::UnknownColumn(format!("{c}")))
}

/// Three-valued (Kleene) boolean view of a value: `Some(bool)` or `None`
/// for NULL/unknown. Non-boolean values are falsy.
pub(crate) fn tri(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => Some(false),
    }
}

pub(crate) fn from_tri(t: Option<bool>) -> Value {
    match t {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

pub(crate) fn not3(t: Option<bool>) -> Option<bool> {
    t.map(|b| !b)
}

pub(crate) fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

pub(crate) fn compare(op: CompareOp, l: &Value, r: &Value) -> Value {
    let res = match op {
        CompareOp::Eq => l.sql_eq(r),
        CompareOp::NotEq => l.sql_eq(r).map(|b| !b),
        CompareOp::Lt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Less),
        CompareOp::LtEq => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Greater),
        CompareOp::Gt => l.sql_cmp(r).map(|o| o == std::cmp::Ordering::Greater),
        CompareOp::GtEq => l.sql_cmp(r).map(|o| o != std::cmp::Ordering::Less),
    };
    // SQL three-valued logic: NULL / incomparable comparisons are UNKNOWN
    from_tri(res)
}

pub(crate) fn arith(op: char, l: &Value, r: &Value) -> Value {
    match (l.as_num(), r.as_num()) {
        (Some(a), Some(b)) => match op {
            '+' => Value::Num(a + b),
            '-' => Value::Num(a - b),
            '*' => Value::Num(a * b),
            '/' => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Num(a / b)
                }
            }
            '%' => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Num(a % b)
                }
            }
            _ => Value::Null,
        },
        _ => Value::Null,
    }
}

/// CAST semantics, shared with the reference interpreter (the leaf value
/// conversions are deliberately not part of the differential surface).
pub(crate) fn cast_value(v: &Value, type_name: &str) -> Value {
    cast_typed(v, squ_schema::SqlType::from_name(type_name))
}

/// CAST with the target type already resolved (`SqlType::from_name` is
/// total, so the compiled engine resolves it once at compile time).
pub(crate) fn cast_typed(v: &Value, ty: squ_schema::SqlType) -> Value {
    use squ_schema::SqlType;
    match ty {
        SqlType::Int => match v {
            Value::Num(x) => Value::Num(x.trunc()),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(|x| Value::Num(x.trunc()))
                .unwrap_or(Value::Null),
            _ => Value::Null,
        },
        SqlType::Float => match v {
            Value::Num(x) => Value::Num(*x),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Num)
                .unwrap_or(Value::Null),
            _ => Value::Null,
        },
        SqlType::Text => Value::Str(v.to_string()),
        SqlType::Bool => match v {
            Value::Bool(b) => Value::Bool(*b),
            Value::Num(x) => Value::Bool(*x != 0.0),
            _ => Value::Null,
        },
    }
}

/// SQL LIKE with `%` and `_` wildcards (case-sensitive). Builds a
/// [`crate::like::LikeMatcher`] per call; hot paths (the compiled engine,
/// and any caller matching one pattern against many strings) should build
/// the matcher once instead.
pub fn like_match(s: &str, pattern: &str) -> bool {
    crate::like::LikeMatcher::new(pattern).matches(s)
}

/// Scalar-function library, shared with the reference interpreter (the
/// leaf functions are deliberately not part of the differential surface).
pub(crate) fn scalar_function(name: &str, vals: &[Value]) -> Result<Value, ExecError> {
    scalar_function_upper(&name.to_ascii_uppercase(), vals)
}

/// Names [`scalar_function`] implements, upper-cased — the compiled
/// engine's whitelist (any other name must reject compilation so the
/// interpreter's `Unsupported` error is preserved).
pub(crate) fn is_supported_scalar(upper: &str) -> bool {
    matches!(
        upper,
        "UPPER"
            | "UCASE"
            | "LOWER"
            | "LCASE"
            | "LEN"
            | "LENGTH"
            | "DATALENGTH"
            | "ABS"
            | "ROUND"
            | "FLOOR"
            | "CEILING"
            | "CEIL"
            | "SQRT"
            | "POWER"
            | "POW"
            | "LOG"
            | "LOG10"
            | "EXP"
            | "SUBSTR"
            | "SUBSTRING"
            | "LEFT"
            | "RIGHT"
            | "TRIM"
            | "LTRIM"
            | "RTRIM"
            | "CONCAT"
            | "REPLACE"
            | "COALESCE"
            | "NULLIF"
            | "STR"
            | "SIGN"
    )
}

/// [`scalar_function`] with the name pre-uppercased (the compiled engine
/// uppercases once at compile time).
pub(crate) fn scalar_function_upper(upper: &str, vals: &[Value]) -> Result<Value, ExecError> {
    let s0 = || match vals.first() {
        Some(Value::Str(s)) => Some(s.clone()),
        Some(v) if !v.is_null() => Some(v.to_string()),
        _ => None,
    };
    let n0 = || vals.first().and_then(|v| v.as_num());
    let n = |i: usize| vals.get(i).and_then(|v| v.as_num());
    Ok(match upper {
        "UPPER" | "UCASE" => s0()
            .map(|s| Value::Str(s.to_uppercase()))
            .unwrap_or(Value::Null),
        "LOWER" | "LCASE" => s0()
            .map(|s| Value::Str(s.to_lowercase()))
            .unwrap_or(Value::Null),
        "LEN" | "LENGTH" | "DATALENGTH" => s0()
            .map(|s| Value::Num(s.chars().count() as f64))
            .unwrap_or(Value::Null),
        "ABS" => n0().map(|x| Value::Num(x.abs())).unwrap_or(Value::Null),
        "ROUND" => match (n0(), n(1)) {
            (Some(x), Some(d)) => {
                let m = 10f64.powi(d as i32);
                Value::Num((x * m).round() / m)
            }
            (Some(x), None) => Value::Num(x.round()),
            _ => Value::Null,
        },
        "FLOOR" => n0().map(|x| Value::Num(x.floor())).unwrap_or(Value::Null),
        "CEILING" | "CEIL" => n0().map(|x| Value::Num(x.ceil())).unwrap_or(Value::Null),
        "SQRT" => n0()
            .filter(|x| *x >= 0.0)
            .map(|x| Value::Num(x.sqrt()))
            .unwrap_or(Value::Null),
        "POWER" | "POW" => match (n0(), n(1)) {
            (Some(x), Some(y)) => Value::Num(x.powf(y)),
            _ => Value::Null,
        },
        "LOG" | "LOG10" => n0()
            .filter(|x| *x > 0.0)
            .map(|x| Value::Num(x.log10()))
            .unwrap_or(Value::Null),
        "EXP" => n0().map(|x| Value::Num(x.exp())).unwrap_or(Value::Null),
        "SUBSTR" | "SUBSTRING" => match (s0(), n(1), n(2)) {
            (Some(s), Some(start), len) => {
                let start = (start.max(1.0) as usize).saturating_sub(1);
                let chars: Vec<char> = s.chars().collect();
                let end = match len {
                    Some(l) => (start + l.max(0.0) as usize).min(chars.len()),
                    None => chars.len(),
                };
                if start >= chars.len() {
                    Value::Str(String::new())
                } else {
                    Value::Str(chars[start..end].iter().collect())
                }
            }
            _ => Value::Null,
        },
        "LEFT" => match (s0(), n(1)) {
            (Some(s), Some(k)) => Value::Str(s.chars().take(k.max(0.0) as usize).collect()),
            _ => Value::Null,
        },
        "RIGHT" => match (s0(), n(1)) {
            (Some(s), Some(k)) => {
                let chars: Vec<char> = s.chars().collect();
                let k = (k.max(0.0) as usize).min(chars.len());
                Value::Str(chars[chars.len() - k..].iter().collect())
            }
            _ => Value::Null,
        },
        "TRIM" => s0()
            .map(|s| Value::Str(s.trim().to_string()))
            .unwrap_or(Value::Null),
        "LTRIM" => s0()
            .map(|s| Value::Str(s.trim_start().to_string()))
            .unwrap_or(Value::Null),
        "RTRIM" => s0()
            .map(|s| Value::Str(s.trim_end().to_string()))
            .unwrap_or(Value::Null),
        "CONCAT" => {
            let mut out = String::new();
            for v in vals {
                if !v.is_null() {
                    out.push_str(&v.to_string());
                }
            }
            Value::Str(out)
        }
        "REPLACE" => match (vals.first(), vals.get(1), vals.get(2)) {
            (Some(Value::Str(s)), Some(Value::Str(from)), Some(Value::Str(to))) => {
                Value::Str(s.replace(from.as_str(), to))
            }
            _ => Value::Null,
        },
        "COALESCE" => vals
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        "NULLIF" => match (vals.first(), vals.get(1)) {
            (Some(a), Some(b)) if a.sql_eq(b) == Some(true) => Value::Null,
            (Some(a), _) => a.clone(),
            _ => Value::Null,
        },
        "STR" => vals
            .first()
            .map(|v| Value::Str(v.to_string()))
            .unwrap_or(Value::Null),
        "SIGN" => n0().map(|x| Value::Num(x.signum())).unwrap_or(Value::Null),
        other => return Err(ExecError::Unsupported(format!("function {other}"))),
    })
}

/// Hard ceiling on any intermediate relation. Witness databases have tens
/// of rows per table, so legitimate plans stay far below this; only
/// accidental cross products (e.g. a rewrite that destroys predicate
/// pushdown on a 12-table Join-Order query) can reach it.
pub(crate) const MAX_INTERMEDIATE_ROWS: usize = 120_000;

fn cross_product(stats: &mut ExecStats, l: Working, r: Working) -> Result<Working, ExecError> {
    if l.rows.len().saturating_mul(r.rows.len()) > MAX_INTERMEDIATE_ROWS {
        return Err(ExecError::ResourceLimit);
    }
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut rows = Vec::with_capacity(l.rows.len() * r.rows.len());
    for lrow in &l.rows {
        for rrow in &r.rows {
            stats.join_pairs += 1;
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            rows.push(row);
        }
    }
    Ok(Working { cols, rows })
}

pub(crate) fn combine_set(op: &SetOp, all: bool, l: Relation, r: Relation) -> Relation {
    use std::collections::HashSet;
    let cols = l.columns.clone();
    match op {
        SetOp::Union => {
            let mut rows = l.rows;
            rows.extend(r.rows);
            if !all {
                let mut seen = HashSet::new();
                rows.retain(|row| seen.insert(row.clone()));
            }
            Relation::new(cols, rows)
        }
        SetOp::Intersect => {
            let rset: HashSet<Vec<Value>> = r.rows.into_iter().collect();
            let mut seen = HashSet::new();
            let rows = l
                .rows
                .into_iter()
                .filter(|row| rset.contains(row) && (all || seen.insert(row.clone())))
                .collect();
            Relation::new(cols, rows)
        }
        SetOp::Except => {
            let rset: HashSet<Vec<Value>> = r.rows.into_iter().collect();
            let mut seen = HashSet::new();
            let rows = l
                .rows
                .into_iter()
                .filter(|row| !rset.contains(row) && (all || seen.insert(row.clone())))
                .collect();
            Relation::new(cols, rows)
        }
    }
}

fn sort_by_output_columns(rel: &mut Relation, order_by: &[OrderItem]) -> Result<(), ExecError> {
    let mut keys = Vec::new();
    for item in order_by {
        match &item.expr {
            Expr::Column(c) if c.qualifier.is_none() => {
                let idx = rel
                    .column_index(&c.name)
                    .ok_or_else(|| ExecError::UnknownColumn(c.name.clone()))?;
                keys.push((idx, item.desc));
            }
            other => {
                return Err(ExecError::Unsupported(format!(
                    "set-operation ORDER BY on expression {}",
                    squ_parser::print_expr(other)
                )))
            }
        }
    }
    rel.rows.sort_by(|a, b| {
        for (idx, desc) in &keys {
            let ord = a[*idx].total_cmp(&b[*idx]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}
