//! In-memory relations and databases.

use crate::index::IndexCache;
use crate::Value;
use std::collections::HashMap;

/// A materialized relation: named columns plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Column names (case preserved; lookups are case-insensitive).
    pub columns: Vec<String>,
    /// Row data; every row has `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Construct a relation, checking row arity in debug builds.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        Relation { columns, rows }
    }

    /// An empty relation with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// Case-insensitive index of a column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows as a canonically sorted multiset — the comparison form used for
    /// result equivalence (row order is irrelevant unless ORDER BY is the
    /// outermost operator, and the benchmark's equivalence notion follows
    /// the paper in comparing result *contents*).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// Multiset equality of results, ignoring row order and column-name
    /// case. Column *order* must match — equivalent queries must produce
    /// the same output schema (paper §3.1: "same schema and … same results").
    pub fn result_equal(&self, other: &Relation) -> bool {
        self.columns.len() == other.columns.len() && self.sorted_rows() == other.sorted_rows()
    }

    /// Canonical form of the result: same columns, rows sorted into the
    /// total order used by [`Relation::sorted_rows`]. Two relations are
    /// [`Relation::result_equal`] iff their canonical forms have equal
    /// column counts and identical row vectors — the form the differential
    /// oracle compares and reports.
    pub fn canonical(&self) -> Relation {
        Relation {
            columns: self.columns.clone(),
            rows: self.sorted_rows(),
        }
    }

    /// Stable 64-bit FNV-1a digest of the canonical form. Independent of
    /// row order and of `HashMap` iteration; used by fuzz reports to name
    /// a result compactly.
    pub fn canonical_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.columns.len() as u64).to_le_bytes());
        for row in self.sorted_rows() {
            eat(&[0xFE]); // row separator
            for v in row {
                match v {
                    Value::Null => eat(&[0]),
                    Value::Num(x) => {
                        eat(&[1]);
                        // normalize -0.0 so equal numbers digest equally
                        let x = if x == 0.0 { 0.0 } else { x };
                        eat(&x.to_bits().to_le_bytes());
                    }
                    Value::Str(s) => {
                        eat(&[2]);
                        eat(&(s.len() as u64).to_le_bytes());
                        eat(s.as_bytes());
                    }
                    Value::Bool(b) => eat(&[3, u8::from(b)]),
                }
            }
        }
        h
    }
}

/// A named database instance: tables with data.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// Database name.
    pub name: String,
    tables: HashMap<String, Relation>,
    /// Lazily-built equality indexes (cleared whenever tables change;
    /// clones start cold — see [`crate::index`]).
    indexes: IndexCache,
}

impl Database {
    /// Construct an empty database.
    pub fn new(name: &str) -> Self {
        Database {
            name: name.to_string(),
            tables: HashMap::new(),
            indexes: IndexCache::default(),
        }
    }

    /// Insert (or replace) a table.
    pub fn insert_table(&mut self, name: &str, rel: Relation) {
        self.indexes.invalidate();
        self.tables.insert(name.to_ascii_lowercase(), rel);
    }

    /// The database's equality-index cache.
    pub(crate) fn indexes(&self) -> &IndexCache {
        &self.indexes
    }

    /// Case-insensitive table lookup.
    pub fn table(&self, name: &str) -> Option<&Relation> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Iterate over `(name, relation)` pairs (names lower-cased).
    pub fn tables(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![Value::num(2.0), Value::str("y")],
                vec![Value::num(1.0), Value::str("x")],
            ],
        )
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let r = rel();
        assert_eq!(r.column_index("A"), Some(0));
        assert_eq!(r.column_index("b"), Some(1));
        assert_eq!(r.column_index("c"), None);
    }

    #[test]
    fn result_equality_ignores_row_order() {
        let r1 = rel();
        let mut r2 = rel();
        r2.rows.reverse();
        assert!(r1.result_equal(&r2));
    }

    #[test]
    fn result_equality_respects_content() {
        let r1 = rel();
        let mut r2 = rel();
        r2.rows[0][0] = Value::num(99.0);
        assert!(!r1.result_equal(&r2));
    }

    #[test]
    fn database_case_insensitive() {
        let mut db = Database::new("t");
        db.insert_table("SpecObj", rel());
        assert!(db.table("specobj").is_some());
        assert!(db.table("SPECOBJ").is_some());
        assert_eq!(db.table_count(), 1);
    }
}
