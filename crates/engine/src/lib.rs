//! # squ-engine — in-memory SQL execution, witnesses, and cost model
//!
//! Three substrates the benchmark needs from a database engine:
//!
//! * an **executor** ([`execute_query`]) — a hybrid engine: queries are
//!   lowered by [`compile_query`] into a compiled plan of columnar batch
//!   operators (vectorized filters, hash joins, hash-index probes, a
//!   cost-driven join order), and anything the compiler does not cover
//!   falls back to the tree-walking interpreter
//!   ([`execute_query_interpreted`]), which remains the executable
//!   semantics. Both paths are differentially verified against each other
//!   and used to verify every equivalence / non-equivalence label the
//!   benchmark produces;
//! * a **witness-database generator** ([`witness_batch`]) — small,
//!   adversarial random instances of a schema on which transformed query
//!   pairs are compared;
//! * an analytical **cost model** ([`CostModel`]) — the source of the SDSS
//!   elapsed-time ground truth for the `performance_pred` task (the paper's
//!   Figure 5 distribution).
//!
//! ```
//! use squ_engine::{execute_query, witness_database};
//! use squ_schema::schemas::sdss;
//!
//! let db = witness_database(&sdss(), 42, 8, 16);
//! let q = squ_parser::parse_query("SELECT plate FROM SpecObj WHERE z > 500").unwrap();
//! let (rel, stats) = execute_query(&q, &db).unwrap();
//! assert_eq!(rel.columns, vec!["plate"]);
//! assert!(stats.rows_scanned > 0);
//! ```

#![warn(missing_docs)]

mod cost;
mod exec;
mod index;
mod like;
mod physical;
mod plan;
mod program;
mod reference;
mod table;
mod value;
mod witness;

pub use cost::{runtime_bucket, CostModel, RUNTIME_BUCKET_EDGES_MS};
pub use exec::{
    execute, execute_query, execute_query_interpreted, like_match, ExecError, ExecStats,
};
pub use index::{indexes_enabled, set_indexes_enabled};
pub use like::LikeMatcher;
pub use physical::{compile_query, CompiledQuery};
pub use plan::{explain, greedy_join_order, plan_query, Plan};
pub use reference::{reference_execute, reference_query};
pub use table::{Database, Relation};
pub use value::Value;
pub use witness::{
    is_id_column, witness_batch, witness_batch_cached, witness_database, TEXT_VOCAB,
};
