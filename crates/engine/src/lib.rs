//! # squ-engine — in-memory SQL execution, witnesses, and cost model
//!
//! Three substrates the benchmark needs from a database engine:
//!
//! * an **executor** ([`execute_query`]) — a tree-walking interpreter over
//!   the `squ-parser` AST with joins, grouping, correlated subqueries,
//!   CTEs, and set operations, used to *differentially verify* every
//!   equivalence / non-equivalence label the benchmark produces;
//! * a **witness-database generator** ([`witness_batch`]) — small,
//!   adversarial random instances of a schema on which transformed query
//!   pairs are compared;
//! * an analytical **cost model** ([`CostModel`]) — the source of the SDSS
//!   elapsed-time ground truth for the `performance_pred` task (the paper's
//!   Figure 5 distribution).
//!
//! ```
//! use squ_engine::{execute_query, witness_database};
//! use squ_schema::schemas::sdss;
//!
//! let db = witness_database(&sdss(), 42, 8, 16);
//! let q = squ_parser::parse_query("SELECT plate FROM SpecObj WHERE z > 500").unwrap();
//! let (rel, stats) = execute_query(&q, &db).unwrap();
//! assert_eq!(rel.columns, vec!["plate"]);
//! assert!(stats.rows_scanned > 0);
//! ```

#![warn(missing_docs)]

mod cost;
mod exec;
mod plan;
mod reference;
mod table;
mod value;
mod witness;

pub use cost::CostModel;
pub use exec::{execute, execute_query, like_match, ExecError, ExecStats};
pub use plan::{explain, plan_query, Plan};
pub use reference::{reference_execute, reference_query};
pub use table::{Database, Relation};
pub use value::Value;
pub use witness::{
    is_id_column, witness_batch, witness_batch_cached, witness_database, TEXT_VOCAB,
};
