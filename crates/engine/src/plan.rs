//! Logical plan construction and `EXPLAIN`-style rendering.
//!
//! Builds the tree of logical operators the executor walks (scans, joins,
//! filters, grouping, sorting, limits) with cardinality estimates from the
//! schema and the cost model's selectivity constants — the "why is this
//! query costly" companion to [`crate::CostModel`].

use crate::CostModel;
use squ_parser::ast::*;
use squ_schema::Schema;

/// A node of the logical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan.
    Scan {
        /// Table name.
        table: String,
        /// Binding name (alias if present).
        binding: String,
        /// Estimated rows.
        rows: f64,
    },
    /// Derived table / CTE body.
    Subquery {
        /// Binding name.
        binding: String,
        /// The sub-plan.
        input: Box<Plan>,
    },
    /// Join of two inputs.
    Join {
        /// `JOIN`, `LEFT JOIN`, …; `,` for implicit joins.
        kind: String,
        /// Join condition rendered as SQL, if any.
        condition: Option<String>,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Estimated output rows.
        rows: f64,
    },
    /// Row filter.
    Filter {
        /// Predicate rendered as SQL.
        predicate: String,
        /// Number of atomic conjunct/disjunct leaves.
        predicates: usize,
        /// Input plan.
        input: Box<Plan>,
        /// Estimated output rows.
        rows: f64,
    },
    /// Grouping / aggregation.
    Aggregate {
        /// Group-key expressions rendered as SQL.
        keys: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
        /// Estimated output rows (groups).
        rows: f64,
    },
    /// Projection.
    Project {
        /// Projected items rendered as SQL.
        items: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// DISTINCT deduplication.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// Sort.
    Sort {
        /// Sort keys rendered as SQL with direction.
        keys: Vec<String>,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Row-count limit (`LIMIT` / `TOP`).
    Limit {
        /// Maximum rows.
        n: u64,
        /// Input plan.
        input: Box<Plan>,
    },
    /// Set operation over two inputs.
    SetOp {
        /// `UNION`, `INTERSECT`, `EXCEPT` (± ` ALL`).
        op: String,
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
}

impl Plan {
    /// Estimated output rows of this node.
    pub fn rows(&self) -> f64 {
        match self {
            Plan::Scan { rows, .. }
            | Plan::Join { rows, .. }
            | Plan::Filter { rows, .. }
            | Plan::Aggregate { rows, .. } => *rows,
            Plan::Subquery { input, .. }
            | Plan::Project { input, .. }
            | Plan::Sort { input, .. } => input.rows(),
            Plan::Distinct { input } => input.rows() * 0.8,
            Plan::Limit { n, input } => (*n as f64).min(input.rows()),
            Plan::SetOp { left, right, .. } => left.rows() + right.rows(),
        }
    }
}

/// Build the logical plan of a query against a schema.
pub fn plan_query(q: &Query, schema: &Schema) -> Plan {
    let model = CostModel::default();
    let mut p = plan_set_expr(&q.body, schema, &model);
    if !q.order_by.is_empty() {
        let keys = q
            .order_by
            .iter()
            .map(|o| {
                format!(
                    "{} {}",
                    squ_parser::print_expr(&o.expr),
                    if o.desc { "DESC" } else { "ASC" }
                )
            })
            .collect();
        p = Plan::Sort {
            keys,
            input: Box::new(p),
        };
    }
    let limit = q.limit.or(match &q.body {
        SetExpr::Select(s) => s.top,
        _ => None,
    });
    if let Some(n) = limit {
        p = Plan::Limit {
            n,
            input: Box::new(p),
        };
    }
    p
}

fn plan_set_expr(body: &SetExpr, schema: &Schema, model: &CostModel) -> Plan {
    match body {
        SetExpr::Select(s) => plan_select(s, schema, model),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => Plan::SetOp {
            op: format!("{}{}", op.as_str(), if *all { " ALL" } else { "" }),
            left: Box::new(plan_set_expr(left, schema, model)),
            right: Box::new(plan_set_expr(right, schema, model)),
        },
    }
}

fn plan_select(s: &Select, schema: &Schema, model: &CostModel) -> Plan {
    // FROM: fold the items into a join tree (implicit joins as `,`)
    let mut input: Option<Plan> = None;
    for tr in &s.from {
        let right = plan_table_ref(tr, schema, model);
        input = Some(match input {
            None => right,
            Some(left) => {
                let rows = join_estimate(left.rows(), right.rows());
                Plan::Join {
                    kind: ",".to_string(),
                    condition: None,
                    left: Box::new(left),
                    right: Box::new(right),
                    rows,
                }
            }
        });
    }
    let mut p = input.unwrap_or(Plan::Scan {
        table: "<dual>".into(),
        binding: "<dual>".into(),
        rows: 1.0,
    });

    if let Some(w) = &s.selection {
        let n = leaf_count(w);
        let rows = p.rows() * model.predicate_selectivity.powi(n.min(12) as i32);
        p = Plan::Filter {
            predicate: squ_parser::print_expr(w),
            predicates: n,
            input: Box::new(p),
            rows: rows.max(1.0),
        };
    }

    let has_agg = s
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.having.is_some();
    if !s.group_by.is_empty() || has_agg {
        let keys: Vec<String> = s.group_by.iter().map(squ_parser::print_expr).collect();
        let groups = if keys.is_empty() {
            1.0
        } else {
            (p.rows().sqrt() * keys.len() as f64).max(1.0)
        };
        p = Plan::Aggregate {
            keys,
            input: Box::new(p),
            rows: groups,
        };
    }

    let items: Vec<String> = s
        .items
        .iter()
        .map(|i| match i {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", squ_parser::print_expr(expr)),
                None => squ_parser::print_expr(expr),
            },
        })
        .collect();
    p = Plan::Project {
        items,
        input: Box::new(p),
    };
    if s.distinct {
        p = Plan::Distinct { input: Box::new(p) };
    }
    p
}

fn plan_table_ref(tr: &TableRef, schema: &Schema, model: &CostModel) -> Plan {
    match tr {
        TableRef::Named { name, alias } => Plan::Scan {
            table: name.clone(),
            binding: alias.clone().unwrap_or_else(|| name.clone()),
            rows: schema
                .table(name)
                .map(|t| t.row_count as f64)
                .unwrap_or(model.default_card),
        },
        TableRef::Derived { query, alias } => Plan::Subquery {
            binding: alias.clone().unwrap_or_else(|| "<derived>".into()),
            input: Box::new(plan_query(query, schema)),
        },
        TableRef::Join {
            left,
            right,
            kind,
            constraint,
        } => {
            let l = plan_table_ref(left, schema, model);
            let r = plan_table_ref(right, schema, model);
            let rows = join_estimate(l.rows(), r.rows());
            Plan::Join {
                kind: kind.as_str().to_string(),
                condition: match constraint {
                    JoinConstraint::On(e) => Some(squ_parser::print_expr(e)),
                    JoinConstraint::Using(cols) => Some(format!("USING ({})", cols.join(", "))),
                    JoinConstraint::None => None,
                },
                left: Box::new(l),
                right: Box::new(r),
                rows,
            }
        }
    }
}

/// Greedy cost-driven join order for implicit (comma) joins, used by the
/// compiled engine ([`crate::physical`]).
///
/// `cards[i]` estimates the cardinality of FROM unit `i`; `edges` lists
/// unit pairs connected by an equality predicate. Starts from the
/// smallest unit, then repeatedly appends the unit with the lowest
/// [`CostModel::comma_join_estimate`] against the accumulated prefix (a
/// unit counts as connected once any edge links it to a placed unit).
/// All ties keep the lowest index, so the result is deterministic and is
/// the identity order whenever the estimates give no reason to deviate.
pub fn greedy_join_order(model: &CostModel, cards: &[f64], edges: &[(usize, usize)]) -> Vec<usize> {
    let n = cards.len();
    if n == 0 {
        return Vec::new();
    }
    let mut start = 0;
    for (i, c) in cards.iter().enumerate().skip(1) {
        if *c < cards[start] {
            start = i;
        }
    }
    let mut placed = vec![false; n];
    placed[start] = true;
    let mut order = vec![start];
    let mut acc = cards[start].max(1.0);
    while order.len() < n {
        let mut best: Option<(usize, f64)> = None;
        for (j, c) in cards.iter().enumerate() {
            if placed[j] {
                continue;
            }
            let connected = edges
                .iter()
                .any(|&(a, b)| (a == j && placed[b]) || (b == j && placed[a]));
            let est = model.comma_join_estimate(acc, c.max(1.0), connected);
            match best {
                Some((_, b)) if est >= b => {}
                _ => best = Some((j, est)),
            }
        }
        let Some((j, est)) = best else { break };
        placed[j] = true;
        order.push(j);
        acc = est;
    }
    order
}

/// Equi-join cardinality estimate matching the cost model's damping:
/// larger side × √(smaller side).
fn join_estimate(l: f64, r: f64) -> f64 {
    let (big, small) = if l >= r { (l, r) } else { (r, l) };
    (big * small.sqrt().max(1.0)).min(1e13)
}

fn leaf_count(e: &Expr) -> usize {
    match e {
        Expr::And(a, b) | Expr::Or(a, b) => leaf_count(a) + leaf_count(b),
        Expr::Not(x) => leaf_count(x),
        _ => 1,
    }
}

/// Render a statement's plan as an `EXPLAIN`-style indented tree with
/// row estimates and the total cost estimate.
pub fn explain(stmt: &Statement, schema: &Schema) -> String {
    let Some(q) = stmt.query() else {
        return "CREATE TABLE (no query plan)".to_string();
    };
    let plan = plan_query(q, schema);
    let cost = CostModel::default().estimate_ms(stmt, schema);
    let mut out = format!("estimated cost: {cost:.1} ms\n");
    render(&plan, 0, &mut out);
    out
}

fn fmt_rows(rows: f64) -> String {
    if rows >= 1e6 {
        format!("{:.1}M", rows / 1e6)
    } else if rows >= 1e3 {
        format!("{:.1}K", rows / 1e3)
    } else {
        format!("{rows:.0}")
    }
}

fn render(p: &Plan, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    let line = match p {
        Plan::Scan {
            table,
            binding,
            rows,
        } => {
            if table.eq_ignore_ascii_case(binding) {
                format!("Scan {table}  (~{} rows)", fmt_rows(*rows))
            } else {
                format!("Scan {table} AS {binding}  (~{} rows)", fmt_rows(*rows))
            }
        }
        Plan::Subquery { binding, .. } => format!("Subquery AS {binding}"),
        Plan::Join {
            kind,
            condition,
            rows,
            ..
        } => match condition {
            Some(c) => format!("Join [{kind}] ON {c}  (~{} rows)", fmt_rows(*rows)),
            None => format!("Join [{kind}] (cross)  (~{} rows)", fmt_rows(*rows)),
        },
        Plan::Filter {
            predicate,
            predicates,
            rows,
            ..
        } => format!(
            "Filter ({predicates} predicate{}) {predicate}  (~{} rows)",
            if *predicates == 1 { "" } else { "s" },
            fmt_rows(*rows)
        ),
        Plan::Aggregate { keys, rows, .. } => {
            if keys.is_empty() {
                format!("Aggregate (global)  (~{} rows)", fmt_rows(*rows))
            } else {
                format!(
                    "Aggregate BY {}  (~{} rows)",
                    keys.join(", "),
                    fmt_rows(*rows)
                )
            }
        }
        Plan::Project { items, .. } => format!("Project [{}]", items.join(", ")),
        Plan::Distinct { .. } => "Distinct".to_string(),
        Plan::Sort { keys, .. } => format!("Sort [{}]", keys.join(", ")),
        Plan::Limit { n, .. } => format!("Limit {n}"),
        Plan::SetOp { op, .. } => format!("SetOp [{op}]"),
    };
    out.push_str(&pad);
    out.push_str(&line);
    out.push('\n');
    match p {
        Plan::Scan { .. } => {}
        Plan::Subquery { input, .. }
        | Plan::Filter { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Project { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => render(input, depth + 1, out),
        Plan::Join { left, right, .. } | Plan::SetOp { left, right, .. } => {
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse;
    use squ_schema::schemas::sdss;

    fn ex(sql: &str) -> String {
        explain(&parse(sql).unwrap(), &sdss())
    }

    #[test]
    fn scan_filter_project() {
        let e = ex("SELECT plate, mjd FROM SpecObj WHERE z > 0.5");
        assert!(e.contains("Scan SpecObj"), "{e}");
        assert!(e.contains("Filter (1 predicate)"), "{e}");
        assert!(e.contains("Project [plate, mjd]"), "{e}");
        assert!(e.contains("~2.0M rows"), "{e}");
    }

    #[test]
    fn join_plan_shows_condition_and_estimate() {
        let e = ex("SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid");
        assert!(e.contains("Join [JOIN] ON s.bestobjid = p.objid"), "{e}");
        assert!(e.contains("Scan SpecObj AS s"), "{e}");
        assert!(e.contains("Scan PhotoObj AS p"), "{e}");
    }

    #[test]
    fn aggregate_sort_limit_nodes() {
        let e =
            ex("SELECT class, COUNT(*) FROM SpecObj GROUP BY class ORDER BY class DESC LIMIT 5");
        assert!(e.contains("Aggregate BY class"), "{e}");
        assert!(e.contains("Sort [class DESC]"), "{e}");
        assert!(e.contains("Limit 5"), "{e}");
    }

    #[test]
    fn implicit_join_renders_comma_kind() {
        let e = ex("SELECT s.plate FROM SpecObj AS s, PhotoObj AS p WHERE s.bestobjid = p.objid");
        assert!(e.contains("Join [,]"), "{e}");
    }

    #[test]
    fn set_op_plan() {
        let e = ex("SELECT plate FROM SpecObj INTERSECT SELECT plate FROM SpecObj WHERE z > 1");
        assert!(e.contains("SetOp [INTERSECT]"), "{e}");
    }

    #[test]
    fn derived_table_plan() {
        let e = ex("SELECT d.plate FROM (SELECT plate FROM SpecObj) AS d");
        assert!(e.contains("Subquery AS d"), "{e}");
    }

    #[test]
    fn cost_header_present_and_create_handled() {
        let e = ex("SELECT plate FROM SpecObj");
        assert!(e.starts_with("estimated cost:"), "{e}");
        let c = explain(&parse("CREATE TABLE t (id INT)").unwrap(), &sdss());
        assert!(c.contains("no query plan"));
    }

    #[test]
    fn greedy_order_is_identity_without_a_reason_to_deviate() {
        let m = CostModel::default();
        // equal cards, no edges: every tie keeps the lowest index
        assert_eq!(
            greedy_join_order(&m, &[100.0, 100.0, 100.0], &[]),
            vec![0, 1, 2]
        );
        assert_eq!(greedy_join_order(&m, &[5.0], &[]), vec![0]);
        assert_eq!(greedy_join_order(&m, &[], &[]), Vec::<usize>::new());
    }

    #[test]
    fn greedy_order_starts_small_and_follows_equi_edges() {
        let m = CostModel::default();
        // unit 2 is tiny; unit 0 is equi-connected to 2, unit 1 is not —
        // damping makes the connected unit the cheaper next step
        let cards = [10_000.0, 9_000.0, 10.0];
        let order = greedy_join_order(&m, &cards, &[(0, 2)]);
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn greedy_order_is_a_permutation() {
        let m = CostModel::default();
        let cards = [40.0, 10.0, 90.0, 20.0, 70.0];
        let mut order = greedy_join_order(&m, &cards, &[(0, 1), (2, 3)]);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn row_estimates_monotone_under_filters() {
        let q =
            squ_parser::parse_query("SELECT plate FROM SpecObj WHERE z > 1 AND ra > 2").unwrap();
        let p = plan_query(&q, &sdss());
        // the filter node's estimate is below its input scan's
        fn find_filter(p: &Plan) -> Option<(f64, f64)> {
            match p {
                Plan::Filter { input, rows, .. } => Some((*rows, input.rows())),
                Plan::Project { input, .. } | Plan::Distinct { input } => find_filter(input),
                _ => None,
            }
        }
        let (out, inp) = find_filter(&p).expect("has filter");
        assert!(out < inp);
    }
}
