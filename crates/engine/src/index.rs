//! Lazily-built hash secondary indexes over base tables.
//!
//! The compiled engine ([`crate::physical`]) turns a `col = constant`
//! predicate on a base-table scan into an index probe when the cost model
//! says the table is big enough to repay the build. Indexes are built on
//! first use and cached per `(table, column)` inside the owning
//! [`crate::Database`], so repeated executions over the same witness
//! database (the fuzzer runs every query against five of them, and every
//! transform pair re-runs the originals) amortize one build across many
//! probes.
//!
//! **Equivalence with filtering.** A probe must return exactly the rows a
//! full scan plus `sql_eq`-filter would keep, in the same order. Postings
//! are stored in ascending row order, which is scan order. `NULL` cells
//! are never indexed and `NULL` probe keys never match (SQL `=` is
//! UNKNOWN on NULL). For same-class non-null values, [`Value`]'s `Eq`
//! agrees with `sql_eq`; for cross-class pairs `Eq` is `false` and
//! `sql_eq` is `None` — both reject. (`NaN` never equals itself under
//! either relation, and `-0.0` hashes like `0.0`.)
//!
//! The global [`set_indexes_enabled`] switch exists for the
//! index-correctness test: with indexes disabled, the same compiled plan
//! degrades to scan-and-filter, and results must be identical.

use crate::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

static INDEXES_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable index probes (they degrade to filtered full
/// scans when disabled). Used by tests to pin index correctness.
pub fn set_indexes_enabled(enabled: bool) {
    INDEXES_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Are index probes currently enabled?
pub fn indexes_enabled() -> bool {
    INDEXES_ENABLED.load(Ordering::SeqCst)
}

/// Value → ascending row indexes for one `(table, column)`.
pub(crate) type Postings = Arc<HashMap<Value, Vec<usize>>>;

/// Per-database cache of equality indexes, keyed by lower-cased table
/// name and column offset.
///
/// The cache is interior-mutable so index builds work through `&Database`
/// (execution never takes `&mut`). Cloning a database intentionally
/// yields an *empty* cache: clones are cheap-by-design snapshots, and the
/// fuzzer's determinism requirements forbid any observable difference
/// between warm and cold caches anyway.
#[derive(Default)]
pub(crate) struct IndexCache {
    map: Mutex<HashMap<(String, usize), Postings>>,
}

impl Clone for IndexCache {
    fn clone(&self) -> IndexCache {
        IndexCache::default()
    }
}

impl std::fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IndexCache")
    }
}

impl IndexCache {
    /// Drop every cached index (tables changed).
    pub fn invalidate(&self) {
        lock_ok(&self.map).clear();
    }

    /// Fetch the equality index for `(table, col)`, building it from
    /// `rows` on first use. `NULL` cells are skipped; postings are in
    /// ascending row order.
    pub fn equality_index(&self, table: &str, col: usize, rows: &[Vec<Value>]) -> Postings {
        let key = (table.to_ascii_lowercase(), col);
        if let Some(idx) = lock_ok(&self.map).get(&key) {
            return Arc::clone(idx);
        }
        let mut built: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            match row.get(col) {
                Some(Value::Null) | None => {}
                Some(v) => built.entry(v.clone()).or_default().push(i),
            }
        }
        let built = Arc::new(built);
        lock_ok(&self.map)
            .entry(key)
            .or_insert_with(|| Arc::clone(&built));
        built
    }
}

/// Lock, recovering from poisoning (the guarded map is always in a
/// consistent state between operations).
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::num(1.0), Value::str("a")],
            vec![Value::Null, Value::str("b")],
            vec![Value::num(1.0), Value::str("c")],
            vec![Value::num(2.0), Value::str("d")],
        ]
    }

    #[test]
    fn postings_are_in_scan_order_and_skip_nulls() {
        let cache = IndexCache::default();
        let idx = cache.equality_index("t", 0, &rows());
        assert_eq!(idx.get(&Value::num(1.0)), Some(&vec![0, 2]));
        assert_eq!(idx.get(&Value::num(2.0)), Some(&vec![3]));
        assert_eq!(idx.get(&Value::Null), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn cache_is_reused_and_cleared_on_invalidate() {
        let cache = IndexCache::default();
        let a = cache.equality_index("T", 0, &rows());
        let b = cache.equality_index("t", 0, &[]); // cached: rows ignored
        assert!(Arc::ptr_eq(&a, &b));
        cache.invalidate();
        let c = cache.equality_index("t", 0, &[]);
        assert!(c.is_empty());
    }

    #[test]
    fn clones_start_cold() {
        let cache = IndexCache::default();
        cache.equality_index("t", 0, &rows());
        let cold = cache.clone();
        assert!(lock_ok(&cold.map).is_empty());
    }
}
