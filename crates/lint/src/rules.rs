//! The `SQU0xx` rule registry.
//!
//! Every diagnostic the analyzer can emit has a stable code here, so audit
//! reports, CI gates, and downstream consumers can match on codes instead
//! of message text. Codes are grouped by layer:
//!
//! | range | layer |
//! |---|---|
//! | `SQU00x` | lexer / parser |
//! | `SQU01x` | name resolution (binder) |
//! | `SQU02x` | aggregation / grouping (binder) |
//! | `SQU03x` | types and cardinality (binder) |
//! | `SQU10x` | style advisories (warnings, never audit failures) |
//! | `SQU11x` | semantic advisories from `squ-sema` (warnings) |
//! | `SQU12x` | dialect-conformance advisories (warnings, via `lint_dialect`) |

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Style advisory; the query is still well-formed and analyzable.
    Warning,
    /// The query is malformed or semantically invalid.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code, e.g. `SQU020`.
    pub code: &'static str,
    /// Severity of every diagnostic carrying this code.
    pub severity: Severity,
    /// The paper's error-category label, for the six studied categories.
    pub paper_label: Option<&'static str>,
    /// One-line summary.
    pub summary: &'static str,
}

/// All rules, sorted by code.
pub const REGISTRY: &[RuleInfo] = &[
    RuleInfo {
        code: "SQU001",
        severity: Severity::Error,
        paper_label: None,
        summary: "lexical error (unterminated literal/comment, bad character)",
    },
    RuleInfo {
        code: "SQU002",
        severity: Severity::Error,
        paper_label: None,
        summary: "parse error (unexpected, missing, or trailing token)",
    },
    RuleInfo {
        code: "SQU010",
        severity: Severity::Error,
        paper_label: None,
        summary: "table not found in schema",
    },
    RuleInfo {
        code: "SQU011",
        severity: Severity::Error,
        paper_label: None,
        summary: "column not found in any table in scope",
    },
    RuleInfo {
        code: "SQU012",
        severity: Severity::Error,
        paper_label: Some("alias-undefined"),
        summary: "qualifier names no table or alias in scope",
    },
    RuleInfo {
        code: "SQU013",
        severity: Severity::Error,
        paper_label: Some("alias-ambiguous"),
        summary: "unqualified column name matches several tables in scope",
    },
    RuleInfo {
        code: "SQU020",
        severity: Severity::Error,
        paper_label: Some("aggr-attr"),
        summary: "non-aggregated column outside GROUP BY in an aggregate query",
    },
    RuleInfo {
        code: "SQU021",
        severity: Severity::Error,
        paper_label: Some("aggr-having"),
        summary: "HAVING references a column that is neither aggregated nor grouped",
    },
    RuleInfo {
        code: "SQU030",
        severity: Severity::Error,
        paper_label: Some("nested-mismatch"),
        summary: "scalar subquery may return more than one row",
    },
    RuleInfo {
        code: "SQU031",
        severity: Severity::Error,
        paper_label: Some("condition-mismatch"),
        summary: "comparison between incompatible types",
    },
    RuleInfo {
        code: "SQU100",
        severity: Severity::Warning,
        paper_label: None,
        summary: "SELECT * projection (schema-dependent output shape)",
    },
    RuleInfo {
        code: "SQU101",
        severity: Severity::Warning,
        paper_label: None,
        summary: "implicit cross join (comma-separated FROM items)",
    },
    RuleInfo {
        code: "SQU102",
        severity: Severity::Warning,
        paper_label: None,
        summary: "LIMIT/TOP without ORDER BY (non-deterministic row choice)",
    },
    RuleInfo {
        code: "SQU110",
        severity: Severity::Warning,
        paper_label: None,
        summary: "query result is provably empty (contradictory predicates or empty input)",
    },
    RuleInfo {
        code: "SQU111",
        severity: Severity::Warning,
        paper_label: None,
        summary: "WHERE conjunct is provably true on every row (redundant)",
    },
    RuleInfo {
        code: "SQU112",
        severity: Severity::Warning,
        paper_label: None,
        summary: "comparison against a NULL literal never evaluates to TRUE",
    },
    RuleInfo {
        code: "SQU113",
        severity: Severity::Warning,
        paper_label: None,
        summary: "BETWEEN range is empty (lower bound exceeds upper bound)",
    },
    RuleInfo {
        code: "SQU120",
        severity: Severity::Warning,
        paper_label: None,
        summary: "identifier quote style not accepted by the target dialect",
    },
    RuleInfo {
        code: "SQU121",
        severity: Severity::Warning,
        paper_label: None,
        summary: "row-bound form (LIMIT/TOP) not supported by the target dialect",
    },
    RuleInfo {
        code: "SQU122",
        severity: Severity::Warning,
        paper_label: None,
        summary: "function spelling unknown to the target dialect's catalog",
    },
    RuleInfo {
        code: "SQU123",
        severity: Severity::Warning,
        paper_label: None,
        summary: "identifier collides with a reserved word of the target dialect",
    },
];

/// Look up a rule by code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    REGISTRY.iter().find(|r| r.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        let codes: Vec<&str> = REGISTRY.iter().map(|r| r.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted, "codes must be sorted and unique");
    }

    #[test]
    fn severity_follows_code_range() {
        for r in REGISTRY {
            let expect = if r.code < "SQU100" {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(r.severity, expect, "{}", r.code);
        }
    }

    #[test]
    fn paper_categories_all_present() {
        for label in [
            "aggr-attr",
            "aggr-having",
            "nested-mismatch",
            "condition-mismatch",
            "alias-undefined",
            "alias-ambiguous",
        ] {
            assert!(
                REGISTRY.iter().any(|r| r.paper_label == Some(label)),
                "missing paper category {label}"
            );
        }
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(rule("SQU020").map(|r| r.severity), Some(Severity::Error));
        assert!(rule("SQU999").is_none());
    }
}
