//! `squ-lint`: span-precise static analysis for benchmark SQL.
//!
//! A thin rule-registry layer over the existing lexer → parser →
//! `squ-schema` binder pipeline. Every problem is reported as a
//! [`LintDiagnostic`] with a stable `SQU0xx` code (see [`rules::REGISTRY`]),
//! a [`Severity`], and — whenever the underlying AST node carries a
//! position — a byte [`Span`] into the analyzed SQL text.
//!
//! The primary consumer is the dataset auditor (`squ::audit`), which uses
//! [`lint`] to *prove* ground-truth labels: injected errors must produce a
//! diagnostic of the expected paper category overlapping the labeled span,
//! and correct samples must produce no error-severity diagnostics at all.
//! Warnings (`SQU1xx`) are style advisories (`SQU10x`) and `squ-sema`
//! semantic advisories (`SQU11x`, e.g. a provably-empty result); they never
//! fail an audit.

#![warn(missing_docs)]

pub mod rules;

pub use rules::{rule, RuleInfo, Severity, REGISTRY};
pub use squ_dialect::Dialect as LintDialect;

use squ_dialect::Dialect;
use squ_lexer::{tokenize, Span, TokenKind};
use squ_parser::{parse, ParseError};
use squ_schema::{analyze_statement, ResolutionSignature, Schema};

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Stable rule code (`SQU0xx`).
    pub code: &'static str,
    /// Severity (fixed per code).
    pub severity: Severity,
    /// Byte span in the analyzed SQL, when the source position is known.
    pub span: Option<Span>,
    /// Human-readable explanation.
    pub message: String,
}

impl LintDiagnostic {
    /// Does this diagnostic's span overlap the half-open byte range
    /// `[start, end)`? `false` when the diagnostic carries no span.
    pub fn overlaps(&self, start: usize, end: usize) -> bool {
        match self.span {
            Some(s) => s.start < end && start < s.end,
            None => false,
        }
    }
}

/// Everything one [`lint`] pass produced.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, in pipeline order (lex, parse, then binder).
    pub diagnostics: Vec<LintDiagnostic>,
    /// Resolution signature of the statement; `None` when it did not parse.
    pub resolution: Option<ResolutionSignature>,
}

impl LintReport {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &LintDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True when no error-severity finding exists (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }
}

/// Analyze one SQL statement against `schema` through the whole pipeline.
///
/// Stops at the first failing layer: a lexical error yields a single
/// `SQU001`, a structural parse error a single `SQU002`; otherwise the
/// binder runs and its diagnostics are mapped to their stable codes, then
/// the style advisories (`SQU1xx`) are appended.
pub fn lint(sql: &str, schema: &Schema) -> LintReport {
    let mut report = LintReport::default();

    // Lex first so parse errors can be located via token spans.
    let tokens = match tokenize(sql) {
        Ok(t) => t,
        Err(e) => {
            let at = e.offset().min(sql.len());
            report.diagnostics.push(LintDiagnostic {
                code: "SQU001",
                severity: Severity::Error,
                span: Some(Span::new(at, sql.len())),
                message: format!("lex error: {e}"),
            });
            return report;
        }
    };

    let stmt = match parse(sql) {
        Ok(s) => s,
        Err(e) => {
            // locate the failure at the reported word's first token, or at
            // end of input for EOF errors
            let span = e
                .word_index()
                .and_then(|wi| tokens.iter().find(|t| t.word_index == wi).map(|t| t.span));
            let span = span.or_else(|| {
                matches!(e, ParseError::UnexpectedEof { .. })
                    .then(|| Span::new(sql.len(), sql.len()))
            });
            report.diagnostics.push(LintDiagnostic {
                code: match e {
                    ParseError::Lex(_) => "SQU001",
                    _ => "SQU002",
                },
                severity: Severity::Error,
                span,
                message: format!("parse error: {e}"),
            });
            return report;
        }
    };

    let analysis = analyze_statement(&stmt, schema);
    for d in analysis.diagnostics {
        report.diagnostics.push(LintDiagnostic {
            code: d.kind.code(),
            severity: Severity::Error,
            span: d.span,
            message: d.message,
        });
    }
    report.resolution = Some(analysis.resolution);

    advisories(&stmt, &mut report.diagnostics);

    // semantic advisories run only on queries the binder fully resolved:
    // sema's assumptions (id-column NOT NULL, table shapes) are only
    // meaningful for bound names
    if report.is_clean() {
        if let Some(analysis) = squ_sema::analyze_statement(&stmt, schema) {
            for f in analysis.findings {
                report.diagnostics.push(LintDiagnostic {
                    code: f.code,
                    severity: Severity::Warning,
                    span: f.span,
                    message: f.message,
                });
            }
        }
    }
    report
}

/// [`lint`], then check the SQL's *dialect conformance*: the statement is
/// analyzed through the permissive Squ pipeline as usual, and any
/// construct the target `dialect` would not accept — a foreign quote
/// style, an unsupported `LIMIT`/`TOP` form, a function spelling outside
/// the dialect's catalog, an identifier colliding with one of its
/// reserved words — is reported as an `SQU12x` warning. With
/// `Dialect::Squ` this is exactly [`lint`].
pub fn lint_dialect(sql: &str, schema: &Schema, dialect: Dialect) -> LintReport {
    let mut report = lint(sql, schema);
    if dialect == Dialect::Squ {
        return report;
    }
    dialect_advisories(sql, dialect, &mut report.diagnostics);
    report
}

/// Append the `SQU12x` dialect-conformance advisories for `dialect`.
fn dialect_advisories(sql: &str, dialect: Dialect, out: &mut Vec<LintDiagnostic>) {
    let Ok(tokens) = tokenize(sql) else {
        return; // a lex error is already an SQU001 in the report
    };
    for t in &tokens {
        let span = Some(t.span);
        match &t.kind {
            TokenKind::QuotedIdent => {
                let open = sql[t.span.start..].chars().next().unwrap_or('"');
                if !dialect.accepts_quote(open) {
                    out.push(LintDiagnostic {
                        code: "SQU120",
                        severity: Severity::Warning,
                        span,
                        message: format!(
                            "{open}…-quoted identifier is not valid in {}",
                            dialect.name()
                        ),
                    });
                }
            }
            TokenKind::Keyword(squ_lexer::Keyword::Limit) if !dialect.supports_limit() => {
                out.push(LintDiagnostic {
                    code: "SQU121",
                    severity: Severity::Warning,
                    span,
                    message: format!("{} has no LIMIT clause (use TOP)", dialect.name()),
                });
            }
            TokenKind::Keyword(squ_lexer::Keyword::Top) if !dialect.supports_top() => {
                out.push(LintDiagnostic {
                    code: "SQU121",
                    severity: Severity::Warning,
                    span,
                    message: format!("{} has no TOP clause (use LIMIT)", dialect.name()),
                });
            }
            TokenKind::Ident if dialect.is_reserved(&t.text) => {
                out.push(LintDiagnostic {
                    code: "SQU123",
                    severity: Severity::Warning,
                    span,
                    message: format!(
                        "identifier {:?} is a reserved word in {}",
                        t.text,
                        dialect.name()
                    ),
                });
            }
            _ => {}
        }
        // a function call is an identifier-or-keyword token directly
        // followed by `(`; check its spelling against the catalog
        if matches!(t.kind, TokenKind::Ident | TokenKind::Keyword(_)) {
            let is_call = tokens
                .iter()
                .find(|n| n.span.start >= t.span.end)
                .is_some_and(|n| n.kind == TokenKind::LParen);
            if is_call
                && squ_dialect::lookup_function(&t.text).is_some()
                && !dialect.knows_function(&t.text)
            {
                out.push(LintDiagnostic {
                    code: "SQU122",
                    severity: Severity::Warning,
                    span: Some(t.span),
                    message: format!(
                        "{} spells this function {:?}",
                        dialect.name(),
                        dialect.function_spelling(&t.text).unwrap_or("differently")
                    ),
                });
            }
        }
    }
}

/// Append the `SQU1xx` style advisories for a parsed statement.
fn advisories(stmt: &squ_parser::Statement, out: &mut Vec<LintDiagnostic>) {
    use squ_parser::{SelectItem, SetExpr};
    squ_parser::visit::walk_queries(stmt, &mut |q, _| {
        let span = if q.span.is_empty() {
            None
        } else {
            Some(q.span)
        };
        if let SetExpr::Select(s) = &q.body {
            if s.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
                out.push(LintDiagnostic {
                    code: "SQU100",
                    severity: Severity::Warning,
                    span,
                    message: "SELECT * makes the output shape depend on the schema".into(),
                });
            }
            if s.from.len() > 1 {
                out.push(LintDiagnostic {
                    code: "SQU101",
                    severity: Severity::Warning,
                    span,
                    message: format!(
                        "implicit cross join of {} comma-separated FROM items",
                        s.from.len()
                    ),
                });
            }
            let has_limit = q.limit.is_some() || s.top.is_some();
            if has_limit && q.order_by.is_empty() {
                out.push(LintDiagnostic {
                    code: "SQU102",
                    severity: Severity::Warning,
                    span,
                    message: "LIMIT/TOP without ORDER BY picks rows non-deterministically".into(),
                });
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_schema::schemas::sdss;

    fn codes(sql: &str) -> Vec<&'static str> {
        lint(sql, &sdss())
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_query_is_clean() {
        let r = lint("SELECT plate, mjd FROM SpecObj WHERE z > 0.5", &sdss());
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert!(r.resolution.is_some());
    }

    #[test]
    fn lex_error_reports_squ001_at_offset() {
        let r = lint("SELECT plate FROM SpecObj WHERE class = 'GAL", &sdss());
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "SQU001");
        assert_eq!(d.span.map(|s| s.start), Some(40));
    }

    #[test]
    fn parse_error_reports_squ002_with_span() {
        let sql = "SELECT plate FROM WHERE z > 1";
        let r = lint(sql, &sdss());
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "SQU002");
        let span = d.span.expect("parse errors at a token carry a span");
        assert_eq!(span.slice(sql), "WHERE");
    }

    #[test]
    fn eof_parse_error_spans_end_of_input() {
        let sql = "SELECT plate FROM";
        let r = lint(sql, &sdss());
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "SQU002");
        assert_eq!(d.span, Some(Span::new(sql.len(), sql.len())));
    }

    #[test]
    fn binder_diagnostics_carry_codes_and_spans() {
        let sql = "SELECT plate, mjd, COUNT(*) FROM SpecObj";
        let r = lint(sql, &sdss());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "SQU020")
            .expect("aggr-attr diagnostic");
        assert_eq!(d.span.map(|s| s.slice(sql)), Some("plate"));
    }

    #[test]
    fn advisories_are_warnings() {
        let sql = "SELECT * FROM SpecObj, PhotoObj";
        let r = lint(sql, &sdss());
        let cs = codes(sql);
        assert!(cs.contains(&"SQU100"), "{cs:?}");
        assert!(cs.contains(&"SQU101"), "{cs:?}");
        // warnings never make a query unclean by themselves… but the
        // implicit cross join also trips an ambiguity here, so check a
        // simpler one for cleanliness
        let r2 = lint("SELECT TOP 5 * FROM SpecObj", &sdss());
        assert!(r2.is_clean(), "{:?}", r2.diagnostics);
        assert!(r2.diagnostics.iter().any(|d| d.code == "SQU100"));
        assert!(r2.diagnostics.iter().any(|d| d.code == "SQU102"));
        drop(r);
    }

    #[test]
    fn every_emitted_code_is_registered() {
        for sql in [
            "SELECT plate FROM SpecObj WHERE class = 'GAL",
            "SELECT plate FROM WHERE",
            "SELECT x FROM NoSuchTable",
            "SELECT nosuch FROM SpecObj",
            "SELECT plate, COUNT(*) FROM SpecObj",
            "SELECT * FROM SpecObj, PhotoObj LIMIT 3",
        ] {
            for d in lint(sql, &sdss()).diagnostics {
                let info = rule(d.code).unwrap_or_else(|| panic!("unregistered {}", d.code));
                assert_eq!(info.severity, d.severity, "{}", d.code);
            }
        }
    }

    #[test]
    fn dialect_advisories_squ12x() {
        // wrong quote style for the target dialect
        let sql = r#"SELECT "weird name" FROM SpecObj"#;
        let r = lint_dialect(sql, &sdss(), Dialect::Mysql);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "SQU120")
            .expect("quote-style advisory");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.map(|s| s.slice(sql)), Some("\"weird name\""));

        // LIMIT where the dialect wants TOP, and vice versa
        let r = lint_dialect(
            "SELECT plate FROM SpecObj ORDER BY plate ASC LIMIT 5",
            &sdss(),
            Dialect::Tsql,
        );
        assert!(r.diagnostics.iter().any(|d| d.code == "SQU121"));
        let r = lint_dialect("SELECT TOP 5 plate FROM SpecObj", &sdss(), Dialect::Sqlite);
        assert!(r.diagnostics.iter().any(|d| d.code == "SQU121"));

        // a catalog function under a spelling the dialect lacks
        let sql = "SELECT plate FROM SpecObj WHERE LEN(class) > 3";
        let r = lint_dialect(sql, &sdss(), Dialect::Postgres);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "SQU122")
            .expect("function-spelling advisory");
        assert!(d.message.contains("LENGTH"), "{}", d.message);

        // reserved-word collision
        let r = lint_dialect("SELECT rank FROM SpecObj", &sdss(), Dialect::Mysql);
        assert!(r.diagnostics.iter().any(|d| d.code == "SQU123"));

        // all SQU12x are warnings: the report stays clean
        assert!(r.errors().next().map(|d| d.code) != Some("SQU123"));
    }

    #[test]
    fn squ_dialect_lint_is_plain_lint() {
        let sql = "SELECT TOP 5 \"weird\" FROM SpecObj WHERE LEN(class) > 3";
        let a = lint(sql, &sdss());
        let b = lint_dialect(sql, &sdss(), Dialect::Squ);
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn overlap_predicate() {
        let d = LintDiagnostic {
            code: "SQU011",
            severity: Severity::Error,
            span: Some(Span::new(10, 15)),
            message: String::new(),
        };
        assert!(d.overlaps(12, 13));
        assert!(d.overlaps(0, 11));
        assert!(!d.overlaps(15, 20));
        assert!(!d.overlaps(0, 10));
    }
}
