//! Golden fixtures for the `SQU11x` semantic advisories.
//!
//! Each fixture pins the exact codes *and* the source text their spans
//! cover, so span regressions (not just code regressions) fail loudly.

use squ_lint::lint;
use squ_schema::schemas::sdss;

/// All SQU11x diagnostics for `sql` as `(code, span slice)` pairs, using
/// `"<none>"` when a diagnostic carries no span.
fn sema_codes(sql: &str) -> Vec<(String, String)> {
    lint(sql, &sdss())
        .diagnostics
        .iter()
        .filter(|d| d.code >= "SQU110")
        .map(|d| {
            (
                d.code.to_string(),
                d.span
                    .map(|s| s.slice(sql).to_string())
                    .unwrap_or_else(|| "<none>".to_string()),
            )
        })
        .collect()
}

fn check(sql: &str, expected: &[(&str, &str)]) {
    let got = sema_codes(sql);
    let want: Vec<(String, String)> = expected
        .iter()
        .map(|(c, s)| (c.to_string(), s.to_string()))
        .collect();
    assert_eq!(got, want, "fixture: {sql}");
}

#[test]
fn contradictory_where_is_provably_empty() {
    check(
        "SELECT plate FROM SpecObj WHERE z > 5 AND z < 3",
        &[("SQU110", "z")],
    );
}

#[test]
fn tautological_conjunct_under_id_assumption() {
    check(
        "SELECT plate FROM SpecObj WHERE specobjid = specobjid AND z > 1",
        &[("SQU111", "specobjid")],
    );
}

#[test]
fn nullable_self_comparison_is_not_tautological() {
    // z is not id-like, so `z = z` is UNKNOWN on NULL rows: no finding
    check("SELECT plate FROM SpecObj WHERE z = z AND z > 1", &[]);
}

#[test]
fn null_literal_comparison() {
    check(
        "SELECT plate FROM SpecObj WHERE z = NULL",
        &[("SQU112", "z"), ("SQU110", "z")],
    );
}

#[test]
fn empty_between_range() {
    check(
        "SELECT plate FROM SpecObj WHERE plate BETWEEN 10 AND 5",
        &[("SQU113", "plate"), ("SQU110", "plate")],
    );
}

#[test]
fn ungrouped_aggregate_is_not_empty() {
    // one summary row always comes back, even over an empty input
    check("SELECT COUNT(*) FROM SpecObj WHERE z > 5 AND z < 3", &[]);
}

#[test]
fn limit_zero_is_empty() {
    check(
        "SELECT plate FROM SpecObj WHERE z > 1 LIMIT 0",
        &[("SQU110", "z")],
    );
}

#[test]
fn clean_query_has_no_semantic_findings() {
    check("SELECT plate, mjd FROM SpecObj WHERE z > 0.5", &[]);
}

#[test]
fn sema_advisories_never_make_a_report_unclean() {
    let r = lint("SELECT plate FROM SpecObj WHERE z > 5 AND z < 3", &sdss());
    assert!(r.is_clean(), "{:?}", r.diagnostics);
    assert!(r.diagnostics.iter().any(|d| d.code == "SQU110"));
}

#[test]
fn unresolvable_queries_get_no_sema_pass() {
    // binder errors suppress semantic advisories entirely
    let r = lint("SELECT nosuch FROM SpecObj WHERE z > 5 AND z < 3", &sdss());
    assert!(!r.is_clean());
    assert!(r.diagnostics.iter().all(|d| d.code < "SQU110"));
}

#[test]
fn every_squ11x_code_is_registered_as_warning() {
    use squ_lint::{rule, Severity};
    for code in ["SQU110", "SQU111", "SQU112", "SQU113"] {
        let info = rule(code).unwrap_or_else(|| panic!("unregistered {code}"));
        assert_eq!(info.severity, Severity::Warning, "{code}");
    }
}
