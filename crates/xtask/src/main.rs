//! Repo-level developer tasks, invoked as `cargo run -p xtask -- <task>`.
//!
//! `lint` — forbid `.unwrap()`, `.expect(` and `panic!` in library code,
//! and per-task `match` dispatch in the core crate.
//!
//! `fuzz-smoke` — run the `squ-fuzz` oracles on a small fixed-seed budget
//! (the CI smoke configuration): builds the `repro` binary in release mode
//! and exits non-zero on any oracle violation.
//!
//! `perf-smoke` — seeded 300-case differential fuzz run executed by both
//! the compiled engine and the interpreter on one worker; phase timings
//! and engine counters land in `target/repro/timings.json`, and any
//! compiled-vs-reference divergence fails the task.
//!
//! `sema-smoke` — exercise the `squ-sema` semantic analyzer end to end:
//! `repro --audit` (the static equivalence certifier must convict its
//! non-equivalence floor with zero label contradictions) followed by a
//! seeded fuzz run whose sema oracle cross-checks every analyzer claim
//! against execution. Both reports land in `target/repro/` for CI's
//! artifact upload; any violation exits non-zero.
//!
//! `serve-smoke` — boot the `squ-serve` evaluation server on an ephemeral
//! port over a scratch store and drive it with `servectl`: a cold/warm
//! /eval pair (the warm reply must be a store hit with a byte-identical
//! body), the seeded 50-exchange mixed workload under the heavy
//! wire-fault profile (any 5xx fails), a /statz snapshot written to
//! `target/repro/serve-smoke/statz.json` (any recorded panic fails), a
//! torn-store-entry scan, and a second zero-permit server that must
//! answer a deterministic 429 while /healthz stays reachable.
//!
//! `dialect-smoke` — exercise the multi-dialect frontend end to end:
//! `repro --audit` first (the dialect-translate task's gold translations
//! are differentially verified row-for-row alongside every other
//! family), then a seeded 150-case fuzz run per concrete dialect
//! (sqlite / postgres / mysql / tsql) whose dialect oracle holds every
//! emitted corpus entry to the dialect round-trip law. Each corpus is
//! run twice (`--jobs 2` then `--jobs 1`) and the two reports must be
//! byte-identical; per-dialect reports land in
//! `target/repro/dialect-smoke/` for CI's artifact upload.
//!
//! `synth-smoke` — exercise the streaming synthesis subsystem end to
//! end: a 5 000-query synthesis on 3 shards × 2 jobs whose report must
//! be byte-identical to the 1-shard × 1-job build, an embedded
//! sketch-vs-exact spot check that must pass, and a 4×-larger run whose
//! recorded peak RSS must stay well under 4× the small run's (memory is
//! bounded by the round budget, not by `N`). `synth.json` and the
//! large-run `timings.json` land in `target/repro/synth-smoke/` for
//! CI's artifact upload.
//!
//! The benchmark's library crates must not abort on malformed input: the
//! whole point of the analyzer stack is to turn bad SQL into diagnostics.
//! This pass scans every `crates/*/src` library file (binaries, `main.rs`,
//! and `#[cfg(test)]` modules are exempt) with a comment/string-stripping
//! token matcher — no `syn`, no dependencies — and reports each banned
//! call site. A site that is genuinely infallible can be waived with a
//! `lint:allow` comment on the same line, which doubles as documentation
//! of *why* the panic cannot fire.
//!
//! The second rule guards the task-registry refactor: a `match` in
//! `crates/core/src` whose arms enumerate most of the six task families
//! (syntax / tokens / equivalence / performance / explanation /
//! translation) reintroduces
//! the duplicated per-task drivers the [`DynTask`] registry replaced. Only
//! `crates/core/src/registry.rs` — the one designated enumeration point —
//! is exempt.
//!
//! The third rule keeps the diagnostic-code documentation in sync: every
//! `SQUxxx` code registered in `crates/lint/src/rules.rs::REGISTRY` must
//! have a row in DESIGN.md's diagnostic-code table, and every code the
//! table documents must exist in the registry. A code added on one side
//! only fails `lint` (and therefore CI).
//!
//! The fourth rule guards the dialect matrix the same way the second
//! guards the task registry: a library file outside `crates/dialect`
//! whose non-test code names most of the concrete `Dialect::` variants
//! (Sqlite / Postgres / Mysql / Tsql) is hand-rolling per-dialect
//! dispatch that belongs in the matrix. Consumers are expected to go
//! through the matrix queries (`supports_top()`, `canonical_quote()`,
//! `translate_function()`, …) or iterate `Dialect::CONCRETE`, never to
//! enumerate variants.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Marker comment that waives a banned call on its line.
const WAIVER: &str = "lint:allow";

/// Patterns banned in library code, matched against comment- and
/// string-stripped text. `Option::expect`/`Result::expect` always take a
/// string-literal message in this codebase, so after stripping they read
/// `.expect()` — which cleanly excludes same-named inherent methods with
/// non-string arguments (e.g. the parser's `self.expect(&TokenKind, …)`).
const BANNED: &[&str] = &[".unwrap()", ".expect()", "panic!"];

/// Marker substrings identifying each task family. A `match` block in the
/// core crate that mentions at least [`TASK_MATCH_THRESHOLD`] distinct
/// families is flagged as per-task dispatch that belongs in the registry.
const TASK_FAMILIES: &[(&str, &[&str])] = &[
    (
        "syntax",
        &[
            "TaskId::Syntax",
            "Task::Syntax",
            "SyntaxTask",
            "run_syntax",
            "\"syntax_error\"",
        ],
    ),
    (
        "tokens",
        &[
            "TaskId::MissToken",
            "Task::MissToken",
            "TokenTask",
            "run_token",
            "\"miss_token\"",
        ],
    ),
    (
        "equiv",
        &[
            "TaskId::Equiv",
            "Task::Equiv",
            "EquivTask",
            "run_equiv",
            "\"query_equiv\"",
        ],
    ),
    (
        "perf",
        &[
            "TaskId::Perf",
            "Task::Perf",
            "PerfTask",
            "run_perf",
            "\"performance_pred\"",
        ],
    ),
    (
        "explain",
        &[
            "TaskId::Explain",
            "Task::Explain",
            "ExplainTask",
            "run_explain",
            "\"query_exp\"",
        ],
    ),
    (
        "translate",
        &[
            "TaskId::Translate",
            "Task::Translate",
            "TranslateTask",
            "run_translate",
            "\"dialect_translate\"",
        ],
    ),
];

/// Concrete dialect variants whose joint appearance in one non-test
/// library file outside `crates/dialect` marks hand-rolled per-dialect
/// dispatch that belongs in the dialect matrix.
const DIALECT_VARIANTS: &[&str] = &[
    "Dialect::Sqlite",
    "Dialect::Postgres",
    "Dialect::Mysql",
    "Dialect::Tsql",
];

/// Distinct concrete `Dialect::` variants one file may name before it
/// counts as per-dialect dispatch (near-complete coverage of the four
/// concrete dialects, mirroring [`TASK_MATCH_THRESHOLD`]'s logic).
const DIALECT_DISPATCH_THRESHOLD: usize = 3;

/// Distinct task families one `match` may mention before it counts as a
/// banned five-armed per-task dispatch (arms plus a catch-all `_` arm is
/// how the pre-registry drivers spelled it, so near-complete coverage is
/// already a violation).
const TASK_MATCH_THRESHOLD: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = repo_root();
            let mut findings = lint_repo(&root);
            findings.extend(doc_sync(&root));
            if findings.is_empty() {
                println!("xtask lint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                eprintln!(
                    "xtask lint: {} banned call site(s); add a `// {WAIVER}: why` \
                     comment only when the panic is provably unreachable",
                    findings.len()
                );
                std::process::exit(1);
            }
        }
        Some("fuzz-smoke") => {
            let status = fuzz_smoke(&repo_root());
            std::process::exit(status);
        }
        Some("perf-smoke") => {
            let status = perf_smoke(&repo_root());
            std::process::exit(status);
        }
        Some("sema-smoke") => {
            let status = sema_smoke(&repo_root());
            std::process::exit(status);
        }
        Some("serve-smoke") => {
            let status = serve_smoke(&repo_root());
            std::process::exit(status);
        }
        Some("dialect-smoke") => {
            let status = dialect_smoke(&repo_root());
            std::process::exit(status);
        }
        Some("synth-smoke") => {
            let status = synth_smoke(&repo_root());
            std::process::exit(status);
        }
        Some(other) => {
            eprintln!(
                "unknown task {other:?} (available: lint, fuzz-smoke, perf-smoke, sema-smoke, \
                 serve-smoke, dialect-smoke, synth-smoke)"
            );
            std::process::exit(2);
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 <lint|fuzz-smoke|perf-smoke|sema-smoke|serve-smoke|dialect-smoke|synth-smoke>"
            );
            std::process::exit(2);
        }
    }
}

/// Fixed-seed, fixed-budget fuzz run for CI: small enough to finish well
/// inside a minute, deterministic so a red run is immediately
/// reproducible with the same command line.
const FUZZ_SMOKE_CASES: &str = "150";
/// Seed for the smoke run (matches the documented acceptance seed).
const FUZZ_SMOKE_SEED: &str = "7";

/// Run `repro --fuzz` with the smoke budget; returns the exit code.
fn fuzz_smoke(root: &Path) -> i32 {
    run_repro_fuzz(root, "fuzz-smoke", FUZZ_SMOKE_CASES, &[])
}

/// Case budget for the perf smoke: large enough for the compiled-engine
/// speedup to dominate noise, small enough for CI.
const PERF_SMOKE_CASES: &str = "300";

/// Seeded 300-case differential fuzz run through both engines on one
/// worker. The fuzz mode itself benchmarks compiled vs interpreted over
/// the same stream, writes the phase timings and engine counters to
/// `target/repro/timings.json`, and exits non-zero on any
/// compiled-vs-reference divergence — this wrapper just pins the CI
/// budget and `--jobs 1` (the speedup ratio is a per-core comparison).
fn perf_smoke(root: &Path) -> i32 {
    run_repro_fuzz(
        root,
        "perf-smoke",
        PERF_SMOKE_CASES,
        &["--jobs", "1", "--timings"],
    )
}

/// Fuzz-case budget for the sema smoke: every case runs the sema oracle
/// (emptiness / redundancy / bound claims re-checked by execution,
/// certificates checked against the metamorphic verdict).
const SEMA_SMOKE_CASES: &str = "200";

/// Exercise the semantic analyzer end to end: the audit's static
/// certifier first (`repro --audit` exits non-zero on any label
/// contradiction), then a seeded fuzz run with the sema oracle active.
fn sema_smoke(root: &Path) -> i32 {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-p",
            "squ-bench",
            "--bin",
            "repro",
            "--",
            "--audit",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => return s.code().unwrap_or(1), // lint:allow: cli tool
        Err(e) => {
            eprintln!("sema-smoke: failed to launch cargo: {e}");
            return 1;
        }
    }
    run_repro_fuzz(root, "sema-smoke", SEMA_SMOKE_CASES, &["--timings"])
}

/// Soak budget for the serve smoke: enough exchanges to cycle every
/// load coordinate several times and draw every wire-fault kind from the
/// heavy profile, small enough to finish in seconds against a warm store.
const SERVE_SMOKE_LOAD: &str = "50";
/// Wire-fault profile injected during the soak.
const SERVE_SMOKE_PROFILE: &str = "heavy";
/// Seed for the soak's deterministic fault schedule (the paper seed, so a
/// red run is reproducible with `servectl ADDR load 50 heavy 2023`).
const SERVE_SMOKE_SEED: &str = "2023";

/// The /eval request the cold/warm byte-equality diff replays. Matches
/// one coordinate of the `servectl load` cycle so the soak also replays
/// it as a store hit.
const SERVE_SMOKE_EVAL: &str =
    r#"{"task":"syntax","workload":"joinorder","model":"GPT4","profile":"none","seed":5}"#;

/// End-to-end smoke of the evaluation server over a real socket:
///
/// 1. boot `repro --serve 127.0.0.1:0` on a scratch store and parse the
///    bound address off its stdout;
/// 2. replay one /eval cold then warm — the warm reply must be a store
///    hit with a byte-identical body;
/// 3. drive the seeded 50-exchange mixed workload through the heavy
///    wire-fault profile (`servectl load`, which exits non-zero on any
///    5xx);
/// 4. snapshot /statz to `target/repro/serve-smoke/statz.json` and fail
///    on any recorded panic, then scan the store for torn entries
///    (leftover `.tmp` files from interrupted atomic writes);
/// 5. boot a second server with `--serve-inflight 0` and require the
///    deterministic 429 + Retry-After rejection.
fn serve_smoke(root: &Path) -> i32 {
    // build the server and client binaries once up front so the spawns
    // below run fixed artifacts instead of racing `cargo run` locks
    let build = std::process::Command::new(env!("CARGO"))
        .current_dir(root)
        .args(["build", "--release", "-p", "squ-bench", "--bins"])
        .status();
    match build {
        Ok(s) if s.success() => {}
        Ok(s) => return s.code().unwrap_or(1), // lint:allow: cli tool
        Err(e) => {
            eprintln!("serve-smoke: failed to launch cargo: {e}");
            return 1;
        }
    }

    let out_dir = root.join("target").join("repro").join("serve-smoke");
    let store = out_dir.join("store");
    let _ = std::fs::remove_dir_all(&out_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("serve-smoke: cannot create {}: {e}", out_dir.display());
        return 1;
    }

    let mut server = match spawn_server(root, &store, &[]) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("serve-smoke: {msg}");
            return 1;
        }
    };
    let verdict = drive_serve_smoke(root, &server.addr, &out_dir, &store);
    server.shutdown();
    if let Err(msg) = verdict {
        eprintln!("serve-smoke: {msg}");
        return 1;
    }

    // saturation: a server with zero in-flight permits must turn every
    // evaluation away with a deterministic 429, never an error or a hang
    let sat_store = out_dir.join("sat-store");
    let mut server = match spawn_server(root, &sat_store, &["--serve-inflight", "0"]) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("serve-smoke: {msg}");
            return 1;
        }
    };
    let verdict = expect_saturated_429(root, &server.addr);
    server.shutdown();
    match verdict {
        Ok(()) => {
            println!("serve-smoke: ok");
            0
        }
        Err(msg) => {
            eprintln!("serve-smoke: {msg}");
            1
        }
    }
}

/// A spawned `repro --serve` child plus the address it bound.
struct ServeChild {
    child: std::process::Child,
    addr: String,
}

impl ServeChild {
    fn shutdown(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Boot `repro --serve 127.0.0.1:0 --serve-store <store> [extra…]` and
/// parse the `serving on ADDR` banner off its stdout.
fn spawn_server(root: &Path, store: &Path, extra: &[&str]) -> Result<ServeChild, String> {
    use std::io::BufRead;
    let repro = root.join("target").join("release").join("repro");
    let mut child = std::process::Command::new(&repro)
        .current_dir(root)
        .args(["--serve", "127.0.0.1:0", "--serve-store"])
        .arg(store)
        .args(extra)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", repro.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| "server child has no stdout".to_string())?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.map_err(|e| format!("reading server stdout: {e}"))?;
        if let Some(addr) = line.strip_prefix("serving on ") {
            return Ok(ServeChild {
                child,
                addr: addr.trim().to_string(),
            });
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    Err("server exited before printing its bound address".to_string())
}

/// Run one `servectl` subcommand, capturing stdout (stderr is inherited
/// so failures surface in the CI log). Returns `(exit_code, stdout)`.
fn run_servectl(root: &Path, addr: &str, args: &[&str]) -> Result<(i32, String), String> {
    let ctl = root.join("target").join("release").join("servectl");
    let out = std::process::Command::new(&ctl)
        .current_dir(root)
        .arg(addr)
        .args(args)
        .output()
        .map_err(|e| format!("cannot spawn {}: {e}", ctl.display()))?;
    let code = out.status.code().unwrap_or(1); // lint:allow: cli tool
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    Ok((code, stdout))
}

/// Steps 2–4 of the smoke against the primary server.
fn drive_serve_smoke(root: &Path, addr: &str, out_dir: &Path, store: &Path) -> Result<(), String> {
    let (code, _) = run_servectl(root, addr, &["health"])?;
    if code != 0 {
        return Err(format!("healthz failed with exit code {code}"));
    }

    // cold, then warm: the second reply must come out of the store with a
    // byte-identical body
    let (code, cold) = run_servectl(root, addr, &["eval", SERVE_SMOKE_EVAL])?;
    if code != 0 || !cold.starts_with("HTTP 200 cache=miss") {
        return Err(format!("cold eval: exit {code}, output:\n{cold}"));
    }
    let (code, warm) = run_servectl(root, addr, &["eval", SERVE_SMOKE_EVAL])?;
    if code != 0 || !warm.starts_with("HTTP 200 cache=hit") {
        return Err(format!(
            "warm eval was not a store hit: exit {code}, output:\n{warm}"
        ));
    }
    let body = |s: &str| s.lines().skip(1).collect::<Vec<_>>().join("\n");
    if body(&cold) != body(&warm) {
        return Err(format!(
            "warm body differs from cold body\ncold:\n{cold}\nwarm:\n{warm}"
        ));
    }
    println!("serve-smoke: cold/warm /eval bodies byte-identical (miss → hit)");

    // seeded mixed workload under wire faults; servectl exits non-zero
    // if the server ever answers 5xx
    let (code, load) = run_servectl(
        root,
        addr,
        &[
            "load",
            SERVE_SMOKE_LOAD,
            SERVE_SMOKE_PROFILE,
            SERVE_SMOKE_SEED,
        ],
    )?;
    print!("{load}");
    if code != 0 {
        return Err(format!("fault-injected load failed with exit code {code}"));
    }

    // statz snapshot is the CI artifact; a panicking handler fails the run
    let (code, statz) = run_servectl(root, addr, &["statz"])?;
    if code != 0 {
        return Err(format!("statz failed with exit code {code}"));
    }
    let snapshot = out_dir.join("statz.json");
    std::fs::write(&snapshot, &statz)
        .map_err(|e| format!("writing {}: {e}", snapshot.display()))?;
    println!("serve-smoke: /statz snapshot at {}", snapshot.display());
    if !statz.contains("\"panics\": 0") {
        return Err(format!("statz reports handler panics:\n{statz}"));
    }

    // a torn store entry would strand a `.tmp` file next to the target
    let torn = torn_entries(store)?;
    if !torn.is_empty() {
        return Err(format!("torn store entries after soak: {torn:?}"));
    }
    Ok(())
}

/// Recursively list leftover atomic-write tempfiles under `dir`.
fn torn_entries(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut torn = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| format!("reading {}: {e}", d.display()))?;
        for entry in entries {
            let path = entry
                .map_err(|e| format!("reading {}: {e}", d.display()))?
                .path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "tmp") {
                torn.push(path);
            }
        }
    }
    Ok(torn)
}

/// Against a zero-permit server, /eval must be a deterministic 429 while
/// /healthz stays reachable.
fn expect_saturated_429(root: &Path, addr: &str) -> Result<(), String> {
    let (code, out) = run_servectl(root, addr, &["eval", SERVE_SMOKE_EVAL])?;
    if code != 1 || !out.starts_with("HTTP 429") {
        return Err(format!(
            "saturated server should answer 429 (servectl exit 1), got exit {code}:\n{out}"
        ));
    }
    let (code, _) = run_servectl(root, addr, &["health"])?;
    if code != 0 {
        return Err("healthz must stay reachable on a saturated server".to_string());
    }
    println!("serve-smoke: saturated server rejects /eval with 429, /healthz still up");
    Ok(())
}

/// Case budget per concrete dialect for the dialect smoke: the same
/// budget as `fuzz-smoke`, run once per corpus.
const DIALECT_SMOKE_CASES: &str = "150";

/// The concrete corpora the dialect smoke fuzzes (canonical names as
/// `repro --dialect` accepts them).
const DIALECT_SMOKE_DIALECTS: &[&str] = &["sqlite", "postgres", "mysql", "tsql"];

/// End-to-end smoke of the multi-dialect frontend:
///
/// 1. build the `repro` binary once in release mode;
/// 2. `repro --audit` — the dialect-translate task's gold translations
///    are differentially verified row-for-row against cached witness
///    databases (alongside every other family's certificates);
/// 3. per concrete dialect, a seeded 150-case fuzz run whose dialect
///    oracle holds every corpus entry to the round-trip law, executed
///    with `--jobs 2` and again with `--jobs 1` — the two reports must
///    be byte-identical, and each lands in `target/repro/dialect-smoke/`
///    for CI's artifact upload.
fn dialect_smoke(root: &Path) -> i32 {
    let build = std::process::Command::new(env!("CARGO"))
        .current_dir(root)
        .args(["build", "--release", "-p", "squ-bench", "--bins"])
        .status();
    match build {
        Ok(s) if s.success() => {}
        Ok(s) => return s.code().unwrap_or(1), // lint:allow: cli tool
        Err(e) => {
            eprintln!("dialect-smoke: failed to launch cargo: {e}");
            return 1;
        }
    }

    let repro = root.join("target").join("release").join("repro");
    let audit = std::process::Command::new(&repro)
        .current_dir(root)
        .arg("--audit")
        .status();
    match audit {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("dialect-smoke: audit failed");
            return s.code().unwrap_or(1); // lint:allow: cli tool
        }
        Err(e) => {
            eprintln!("dialect-smoke: cannot spawn {}: {e}", repro.display());
            return 1;
        }
    }

    let out_dir = root.join("target").join("repro").join("dialect-smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("dialect-smoke: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    let report_path = root.join("target").join("repro").join("fuzz.json");

    for dialect in DIALECT_SMOKE_DIALECTS {
        let mut first: Option<String> = None;
        for jobs in ["2", "1"] {
            let status = std::process::Command::new(&repro)
                .current_dir(root)
                .args([
                    "--fuzz",
                    DIALECT_SMOKE_CASES,
                    "--fuzz-seed",
                    FUZZ_SMOKE_SEED,
                    "--dialect",
                    dialect,
                    "--jobs",
                    jobs,
                ])
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(s) => {
                    eprintln!("dialect-smoke: {dialect} corpus failed (--jobs {jobs})");
                    return s.code().unwrap_or(1); // lint:allow: cli tool
                }
                Err(e) => {
                    eprintln!("dialect-smoke: cannot spawn {}: {e}", repro.display());
                    return 1;
                }
            }
            let report = match std::fs::read_to_string(&report_path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("dialect-smoke: reading {}: {e}", report_path.display());
                    return 1;
                }
            };
            match &first {
                None => {
                    let saved = out_dir.join(format!("fuzz-{dialect}.json"));
                    if let Err(e) = std::fs::write(&saved, &report) {
                        eprintln!("dialect-smoke: writing {}: {e}", saved.display());
                        return 1;
                    }
                    first = Some(report);
                }
                Some(baseline) if *baseline == report => {}
                Some(_) => {
                    eprintln!(
                        "dialect-smoke: {dialect} report differs between --jobs 2 and --jobs 1"
                    );
                    return 1;
                }
            }
        }
        println!("dialect-smoke: {dialect} corpus clean, byte-identical across --jobs");
    }
    println!(
        "dialect-smoke: ok ({} dialects × {DIALECT_SMOKE_CASES} cases, reports in {})",
        DIALECT_SMOKE_DIALECTS.len(),
        out_dir.display()
    );
    0
}

/// Small-run query budget for the synth smoke.
const SYNTH_SMOKE_SMALL: &str = "5000";
/// Large-run query budget (4× the small run) for the peak-RSS guard.
const SYNTH_SMOKE_LARGE: &str = "20000";

/// End-to-end smoke of the streaming synthesis subsystem:
///
/// 1. build the `repro` binary once in release mode;
/// 2. `repro --synth 5000 --shards 3 --jobs 2 --timings` — the report
///    must embed a passing sketch-vs-exact spot check (small runs retain
///    exact values precisely so CI can hold the sketch to its documented
///    error bound);
/// 3. the same synthesis on 1 shard × 1 job — `synth.json` must be
///    byte-identical (sharding and parallelism are pure optimizations);
/// 4. `repro --synth 20000` (4× the queries, same shards/jobs) — its
///    recorded peak RSS must stay under 3× the small run's, catching any
///    accidental `O(N)` materialization in the streaming path.
///
/// The small-run `synth.json` and large-run `timings.json` land in
/// `target/repro/synth-smoke/` for CI's artifact upload.
fn synth_smoke(root: &Path) -> i32 {
    let build = std::process::Command::new(env!("CARGO"))
        .current_dir(root)
        .args(["build", "--release", "-p", "squ-bench", "--bins"])
        .status();
    match build {
        Ok(s) if s.success() => {}
        Ok(s) => return s.code().unwrap_or(1), // lint:allow: cli tool
        Err(e) => {
            eprintln!("synth-smoke: failed to launch cargo: {e}");
            return 1;
        }
    }

    let out_dir = root.join("target").join("repro").join("synth-smoke");
    let _ = std::fs::remove_dir_all(&out_dir);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("synth-smoke: cannot create {}: {e}", out_dir.display());
        return 1;
    }
    let repro = root.join("target").join("release").join("repro");
    let report_path = root.join("target").join("repro").join("synth.json");
    let timings_path = root.join("target").join("repro").join("timings.json");

    let run = |n: &str, shards: &str, jobs: &str| -> i32 {
        let status = std::process::Command::new(&repro)
            .current_dir(root)
            .args([
                "--synth",
                n,
                "--shards",
                shards,
                "--jobs",
                jobs,
                "--timings",
            ])
            .status();
        match status {
            Ok(s) if s.success() => 0,
            Ok(s) => {
                eprintln!("synth-smoke: --synth {n} --shards {shards} --jobs {jobs} failed");
                s.code().unwrap_or(1) // lint:allow: cli tool
            }
            Err(e) => {
                eprintln!("synth-smoke: cannot spawn {}: {e}", repro.display());
                1
            }
        }
    };

    // 1) sharded small run: sketch check must be present and passing
    let code = run(SYNTH_SMOKE_SMALL, "3", "2");
    if code != 0 {
        return code;
    }
    let sharded = match std::fs::read_to_string(&report_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synth-smoke: reading {}: {e}", report_path.display());
            return 1;
        }
    };
    if !sharded.contains("\"sketch_check\"") || !sharded.contains("\"pass\": true") {
        eprintln!("synth-smoke: report lacks a passing sketch-vs-exact spot check");
        return 1;
    }
    if let Err(e) = std::fs::write(out_dir.join("synth.json"), &sharded) {
        eprintln!("synth-smoke: writing artifact: {e}");
        return 1;
    }
    let small_rss = read_counter(&timings_path, "synth.peak_rss_kb");
    println!("synth-smoke: {SYNTH_SMOKE_SMALL}-query sharded run clean (sketch check passed)");

    // 2) unsharded, sequential run: must be byte-identical
    let code = run(SYNTH_SMOKE_SMALL, "1", "1");
    if code != 0 {
        return code;
    }
    match std::fs::read_to_string(&report_path) {
        Ok(unsharded) if unsharded == sharded => {
            println!("synth-smoke: report byte-identical across shard and job counts");
        }
        Ok(_) => {
            eprintln!("synth-smoke: report differs between 3 shards × 2 jobs and 1 shard × 1 job");
            return 1;
        }
        Err(e) => {
            eprintln!("synth-smoke: reading {}: {e}", report_path.display());
            return 1;
        }
    }

    // 3) 4×-larger run: peak RSS must stay flat (round-budget bounded)
    let code = run(SYNTH_SMOKE_LARGE, "3", "2");
    if code != 0 {
        return code;
    }
    let large_rss = read_counter(&timings_path, "synth.peak_rss_kb");
    if let Ok(t) = std::fs::read_to_string(&timings_path) {
        let _ = std::fs::write(out_dir.join("timings-large.json"), t);
    }
    match (small_rss, large_rss) {
        (Some(small), Some(large)) if small > 0 && large > 0 => {
            if large > small * 3 {
                eprintln!(
                    "synth-smoke: peak RSS grew {small} kB -> {large} kB over a 4x run \
                     (streaming must keep memory independent of N)"
                );
                return 1;
            }
            println!(
                "synth-smoke: peak RSS flat over a 4x run ({small} kB -> {large} kB, bound 3x)"
            );
        }
        _ => println!("synth-smoke: peak RSS unavailable on this platform, guard skipped"),
    }

    println!("synth-smoke: ok (artifacts in {})", out_dir.display());
    0
}

/// Extract the integer `value` of one named counter from `timings.json`
/// without a JSON parser: finds `"name": "<counter>"` and reads the
/// number after the following `"value":`.
fn read_counter(timings: &Path, counter: &str) -> Option<u64> {
    let text = std::fs::read_to_string(timings).ok()?;
    let at = text.find(&format!("\"{counter}\""))?;
    let rest = &text[at..];
    let val = rest.find("\"value\":")?;
    let digits: String = rest[val + 8..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Launch `repro --fuzz <cases> --fuzz-seed 7 [extra…]`; returns the exit
/// code.
fn run_repro_fuzz(root: &Path, label: &str, cases: &str, extra: &[&str]) -> i32 {
    let status = std::process::Command::new(env!("CARGO"))
        .current_dir(root)
        .args([
            "run",
            "--release",
            "-p",
            "squ-bench",
            "--bin",
            "repro",
            "--",
            "--fuzz",
            cases,
            "--fuzz-seed",
            FUZZ_SMOKE_SEED,
        ])
        .args(extra)
        .status();
    match status {
        Ok(s) => s.code().unwrap_or(1), // lint:allow: cli tool
        Err(e) => {
            eprintln!("{label}: failed to launch cargo: {e}");
            1
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask") // lint:allow: layout is fixed by the workspace
        .to_path_buf()
}

/// Lint every library source file under `crates/*/src`; returns one
/// rendered finding per banned call site.
fn lint_repo(root: &Path) -> Vec<String> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).expect("read crates/"); // lint:allow: cli tool
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_library_sources(&dir.join("src"), &mut files);
    }
    files.sort();
    for file in files {
        let text = std::fs::read_to_string(&file).expect("read source file"); // lint:allow: cli tool
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        for (line_no, pattern, line) in scan_source(&text) {
            let mut f = String::new();
            let _ = write!(f, "{rel}:{line_no}: banned `{pattern}` — {}", line.trim());
            findings.push(f);
        }
        // per-task dispatch belongs in the registry module, nowhere else
        // in the core crate
        if rel.starts_with("crates/core/src") && !rel.ends_with("registry.rs") {
            for (line_no, families) in scan_task_matches(&text) {
                let mut f = String::new();
                let _ = write!(
                    f,
                    "{rel}:{line_no}: per-task `match` spanning {} task families ({}) — \
                     iterate the registry (crates/core/src/registry.rs) instead",
                    families.len(),
                    families.join(", ")
                );
                findings.push(f);
            }
        }
        // per-dialect dispatch belongs in the dialect matrix, nowhere else
        if !rel.starts_with("crates/dialect/src") {
            if let Some((line_no, variants)) = scan_dialect_dispatch(&text) {
                let mut f = String::new();
                let _ = write!(
                    f,
                    "{rel}:{line_no}: per-dialect dispatch naming {} concrete `Dialect::` \
                     variants ({}) — extend the dialect matrix (crates/dialect) instead",
                    variants.len(),
                    variants.join(", ")
                );
                findings.push(f);
            }
        }
    }
    findings
}

/// Diagnostic-code documentation sync: the `SQUxxx` codes registered in
/// `crates/lint/src/rules.rs::REGISTRY` and the rows of DESIGN.md's
/// diagnostic-code table must list exactly the same codes, in both
/// directions. Returns one rendered finding per out-of-sync code.
fn doc_sync(root: &Path) -> Vec<String> {
    let rules_path = root.join("crates/lint/src/rules.rs");
    let design_path = root.join("DESIGN.md");
    let rules = std::fs::read_to_string(&rules_path).expect("read rules.rs"); // lint:allow: cli tool
    let design = std::fs::read_to_string(&design_path).expect("read DESIGN.md"); // lint:allow: cli tool
    let registry = registry_codes(&rules);
    let documented = design_codes(&design);
    let mut findings = Vec::new();
    for code in &registry {
        if !documented.contains(code) {
            findings.push(format!(
                "DESIGN.md: code `{code}` is in crates/lint/src/rules.rs::REGISTRY \
                 but missing from the diagnostic-code table"
            ));
        }
    }
    for code in &documented {
        if !registry.contains(code) {
            findings.push(format!(
                "DESIGN.md: code `{code}` is documented in the diagnostic-code table \
                 but not registered in crates/lint/src/rules.rs::REGISTRY"
            ));
        }
    }
    findings
}

/// Extract the `SQUxxx` codes of every `RuleInfo` in the registry source:
/// `code: "SQUxxx"` fields between the `REGISTRY` declaration and its
/// closing `];`.
fn registry_codes(rules_src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_registry = false;
    for line in rules_src.lines() {
        if line.contains("REGISTRY") && line.contains("&[RuleInfo]") {
            in_registry = true;
            continue;
        }
        if !in_registry {
            continue;
        }
        if line.trim_start().starts_with("];") {
            break;
        }
        if let Some(rest) = line.trim_start().strip_prefix("code: \"") {
            if let Some(code) = rest.split('"').next() {
                out.push(code.to_string());
            }
        }
    }
    out
}

/// Extract the codes documented in DESIGN.md's diagnostic-code table:
/// rows of the form `` | `SQUxxx` | … `` anywhere in the document.
fn design_codes(design_src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in design_src.lines() {
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("| `SQU") {
            if let Some(digits) = rest.split('`').next() {
                out.push(format!("SQU{digits}"));
            }
        }
    }
    out
}

/// Scan one core-crate source text for `match` blocks whose raw text
/// mentions at least [`TASK_MATCH_THRESHOLD`] distinct task families.
/// Yields `(1-based line of the match, family names)` per violation.
/// A `lint:allow` comment on the `match` line waives it.
fn scan_task_matches(text: &str) -> Vec<(usize, Vec<&'static str>)> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // (start line, brace depth, waived, per-family seen flags)
    let mut block: Option<(usize, i64, bool, [bool; 6])> = None;
    for (idx, raw) in text.lines().enumerate() {
        let code = strip_noncode(raw, &mut in_block_comment);
        if let Some((start, depth, waived, seen)) = &mut block {
            if !code.trim().is_empty() {
                mark_families(raw, seen);
            }
            *depth += code.matches('{').count() as i64 - code.matches('}').count() as i64;
            if *depth <= 0 {
                let families: Vec<&'static str> = TASK_FAMILIES
                    .iter()
                    .zip(seen.iter())
                    .filter(|(_, hit)| **hit)
                    .map(|((name, _), _)| *name)
                    .collect();
                if families.len() >= TASK_MATCH_THRESHOLD && !*waived {
                    out.push((*start, families));
                }
                block = None;
            }
            continue;
        }
        if let Some(at) = find_match_keyword(&code) {
            let after = &code[at..];
            let opens = after.matches('{').count() as i64;
            let closes = after.matches('}').count() as i64;
            let mut seen = [false; 6];
            if !code.trim().is_empty() {
                mark_families(raw, &mut seen);
            }
            if opens > closes {
                block = Some((idx + 1, opens - closes, raw.contains(WAIVER), seen));
            }
        }
    }
    out
}

/// Set the seen-flag of every task family whose marker appears in `line`.
fn mark_families(line: &str, seen: &mut [bool; 6]) {
    for (i, (_, markers)) in TASK_FAMILIES.iter().enumerate() {
        if markers.iter().any(|m| line.contains(m)) {
            seen[i] = true;
        }
    }
}

/// Byte offset of a `match` keyword in comment/string-stripped code, if
/// present as a standalone token.
fn find_match_keyword(code: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find("match") {
        let at = from + rel;
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric()
                && code.as_bytes()[at - 1] != b'_'
                && code.as_bytes()[at - 1] != b'.';
        let after = code.as_bytes().get(at + 5);
        let after_ok = !after.is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 5;
    }
    None
}

/// Recursively collect `.rs` files under `src`, skipping `bin/` trees and
/// `main.rs` (binaries may abort; libraries must not).
fn collect_library_sources(src: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(src) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_library_sources(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs")
            && p.file_name().is_some_and(|n| n != "main.rs")
        {
            out.push(p);
        }
    }
}

/// Comment/string-stripped code lines of one source text with
/// `#[cfg(test)]` regions removed: `(1-based line, stripped code, raw
/// line)` per surviving line.
fn library_code_lines(text: &str) -> Vec<(usize, String, &str)> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    // Depth of the `#[cfg(test)]`-gated item we are inside, if any:
    // `None` outside, `Some(depth)` counts unclosed braces of the region.
    let mut test_region: Option<i64> = None;
    let mut pending_cfg_test = false;
    for (idx, raw) in text.lines().enumerate() {
        let code = strip_noncode(raw, &mut in_block_comment);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if let Some(depth) = &mut test_region {
            *depth += opens - closes;
            if *depth <= 0 {
                test_region = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            // the attribute's item starts here; its region lasts until the
            // braces it opens are closed again
            if opens > closes {
                test_region = Some(opens - closes);
            } else if !code.trim().is_empty() && opens == 0 {
                // single-line gated item (e.g. `mod tests;`)
                pending_cfg_test = false;
            }
            if test_region.is_some() {
                pending_cfg_test = false;
            }
            continue;
        }
        out.push((idx + 1, code, raw));
    }
    out
}

/// Scan one source text; yields `(1-based line, pattern, line text)` for
/// every banned call outside comments, strings, and `#[cfg(test)]` regions.
fn scan_source(text: &str) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    for (line_no, code, raw) in library_code_lines(text) {
        if raw.contains(WAIVER) {
            continue;
        }
        for pattern in BANNED {
            if code.contains(pattern) {
                out.push((line_no, *pattern, raw.to_string()));
            }
        }
    }
    out
}

/// Scan one non-dialect library source for per-dialect dispatch: when at
/// least [`DIALECT_DISPATCH_THRESHOLD`] distinct concrete `Dialect::`
/// variants appear in its non-test code, returns the first offending line
/// and the variants seen. A `lint:allow` comment exempts its line.
fn scan_dialect_dispatch(text: &str) -> Option<(usize, Vec<&'static str>)> {
    let mut seen: Vec<(&'static str, usize)> = Vec::new();
    for (line_no, code, raw) in library_code_lines(text) {
        if raw.contains(WAIVER) {
            continue;
        }
        for v in DIALECT_VARIANTS {
            if code.contains(v) && !seen.iter().any(|(s, _)| s == v) {
                seen.push((v, line_no));
            }
        }
    }
    (seen.len() >= DIALECT_DISPATCH_THRESHOLD).then(|| {
        let first = seen.iter().map(|(_, l)| *l).min().unwrap_or(1);
        (first, seen.iter().map(|(v, _)| *v).collect())
    })
}

/// Remove comments and string/char-literal contents from one line,
/// carrying block-comment state across lines. The goal is token-accurate
/// matching of the banned patterns, not full Rust lexing: string contents
/// are blanked so `"panic!"` in a message never matches.
fn strip_noncode(line: &str, in_block_comment: &mut bool) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if *in_block_comment {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break, // line comment
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                *in_block_comment = true;
                i += 2;
            }
            b'r' if bytes.get(i + 1) == Some(&b'"') || bytes.get(i + 1) == Some(&b'#') => {
                // raw string: r"…" or r#"…"# (single hash level is enough
                // for this codebase)
                let hashes = if bytes.get(i + 1) == Some(&b'#') {
                    1
                } else {
                    0
                };
                let open = i + 1 + hashes;
                if bytes.get(open) == Some(&b'"') {
                    let close: &[u8] = if hashes == 1 { b"\"#" } else { b"\"" };
                    let rest = &bytes[open + 1..];
                    let end = rest
                        .windows(close.len())
                        .position(|w| w == close)
                        .map(|p| open + 1 + p + close.len())
                        .unwrap_or(bytes.len());
                    i = end;
                } else {
                    out.push('r');
                    i += 1;
                }
            }
            b'"' => {
                // ordinary string with escapes
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // char literal `'x'` / `'\n'`; anything else (lifetime)
                // passes through
                let is_char = match bytes.get(i + 1) {
                    Some(b'\\') => true,
                    Some(_) => bytes.get(i + 2) == Some(&b'\''),
                    None => false,
                };
                if is_char {
                    i += if bytes[i + 1] == b'\\' { 4 } else { 3 };
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<(usize, &'static str)> {
        scan_source(text)
            .into_iter()
            .map(|(l, p, _)| (l, p))
            .collect()
    }

    #[test]
    fn flags_banned_calls() {
        let found =
            scan("fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"no\");\n}\n");
        assert_eq!(
            found,
            vec![(2, ".unwrap()"), (3, ".expect()"), (4, "panic!")]
        );
    }

    #[test]
    fn error_returning_expect_methods_are_not_flagged() {
        // an inherent `expect` taking a non-string argument is the
        // parser's fallible helper, not Option::expect
        let text = "fn f() { self.expect(&TokenKind::LParen, \"msg\")?; }\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_match() {
        let text = "fn f() {\n    // x.unwrap() in a comment\n    let s = \"panic! .unwrap()\";\n    /* .expect( */\n}\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn block_comment_state_spans_lines() {
        let text = "/*\n x.unwrap()\n*/\nfn g() { h.unwrap(); }\n";
        assert_eq!(scan(text), vec![(4, ".unwrap()")]);
    }

    #[test]
    fn waiver_comment_exempts_the_line() {
        let text =
            "fn f() {\n    x.unwrap(); // lint:allow: index checked above\n    y.unwrap();\n}\n";
        assert_eq!(scan(text), vec![(3, ".unwrap()")]);
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() { y.unwrap(); }\n";
        assert_eq!(scan(text), vec![(7, ".unwrap()")]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let text = "fn f() { let s = r\"panic!\"; let t = r#\".unwrap()\"#; }\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let text = "fn f<'a>(c: char) -> bool { c == '\"' }\nfn g() { x.unwrap(); }\n";
        assert_eq!(scan(text), vec![(2, ".unwrap()")]);
    }

    #[test]
    fn five_armed_task_match_is_flagged() {
        let text = "fn dispatch(id: TaskId) {\n    match id {\n        TaskId::Syntax => run_syntax(),\n        TaskId::MissToken => run_token(),\n        TaskId::Equiv => run_equiv(),\n        TaskId::Perf => run_perf(),\n        TaskId::Explain => run_explain(),\n    }\n}\n";
        let found = scan_task_matches(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 2);
        assert_eq!(found[0].1.len(), 5);
    }

    #[test]
    fn four_armed_match_with_catch_all_is_flagged() {
        // how the pre-registry fault driver spelled it: string slugs plus
        // a `_` arm standing in for the fifth family
        let text = "fn go(task: &str) {\n    match task {\n        \"syntax_error\" => a(),\n        \"miss_token\" => b(),\n        \"query_equiv\" => c(),\n        _ => run_perf(),\n    }\n}\n";
        let found = scan_task_matches(text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1, vec!["syntax", "tokens", "equiv", "perf"]);
    }

    #[test]
    fn narrow_task_matches_are_allowed() {
        // a two-family oracle (e.g. the parser ablation) is fine
        let text = "fn respond(t: Task) {\n    match t {\n        Task::Syntax => parse(),\n        Task::MissToken => probe(),\n        _ => other(),\n    }\n}\n";
        assert!(scan_task_matches(text).is_empty());
        // families spread across *separate* matches are fine too
        let text = "fn a(t: Task) { match t { Task::Syntax => s(), _ => n() } }\nfn b(t: Task) { match t { Task::Equiv => e(), _ => n() } }\nfn c(t: Task) { match t { Task::Perf => p(), _ => n() } }\nfn d(t: Task) { match t { Task::Explain => x(), _ => n() } }\n";
        assert!(scan_task_matches(text).is_empty());
    }

    #[test]
    fn task_match_waiver_on_match_line() {
        let text = "fn dispatch(id: TaskId) {\n    match id { // lint:allow: registry seam\n        TaskId::Syntax => a(),\n        TaskId::MissToken => b(),\n        TaskId::Equiv => c(),\n        TaskId::Perf => d(),\n        TaskId::Explain => e(),\n    }\n}\n";
        assert!(scan_task_matches(text).is_empty());
    }

    #[test]
    fn match_keyword_is_token_matched() {
        // `.matches(` and identifiers containing "match" never open a block
        let text = "fn f(s: &str) { let n = s.matches('x').count(); let rematch = 1; }\n";
        assert!(scan_task_matches(text).is_empty());
    }

    #[test]
    fn full_dialect_dispatch_is_flagged() {
        let text = "fn quote(d: Dialect) -> char {\n    match d {\n        Dialect::Sqlite => '\"',\n        Dialect::Postgres => '\"',\n        Dialect::Mysql => '`',\n        Dialect::Tsql => '[',\n        _ => '\"',\n    }\n}\n";
        let (line, variants) = scan_dialect_dispatch(text).expect("flagged");
        assert_eq!(line, 3);
        assert_eq!(variants.len(), 4);
    }

    #[test]
    fn narrow_dialect_mentions_are_allowed() {
        // naming one or two variants (e.g. a mysql-only special case) is
        // fine; so is iterating Dialect::CONCRETE without naming any
        let text = "fn f(d: Dialect) -> bool { d == Dialect::Mysql || d == Dialect::Tsql }\nfn g() { for d in Dialect::CONCRETE { run(d); } }\n";
        assert!(scan_dialect_dispatch(text).is_none());
    }

    #[test]
    fn dialect_dispatch_in_test_modules_is_exempt() {
        // round-trip tests legitimately enumerate every dialect
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {\n        for d in [Dialect::Sqlite, Dialect::Postgres, Dialect::Mysql, Dialect::Tsql] {\n            check(d);\n        }\n    }\n}\n";
        assert!(scan_dialect_dispatch(text).is_none());
    }

    #[test]
    fn dialect_dispatch_waiver_exempts_its_line() {
        let text = "const ALL: [Dialect; 4] = [Dialect::Sqlite, Dialect::Postgres, Dialect::Mysql, Dialect::Tsql]; // lint:allow: the one enumeration\n";
        assert!(scan_dialect_dispatch(text).is_none());
    }

    /// The dialect-dispatch rule holds across the repo right now: no
    /// library file outside `crates/dialect` enumerates the concrete
    /// variants. Same check `xtask lint` (and therefore CI) enforces.
    #[test]
    fn no_dialect_dispatch_outside_the_dialect_crate() {
        let root = repo_root();
        let mut files = Vec::new();
        let entries = std::fs::read_dir(root.join("crates")).expect("read crates/");
        for dir in entries.filter_map(|e| e.ok().map(|e| e.path())) {
            if dir.is_dir()
                && dir
                    .file_name()
                    .is_some_and(|n| n != "xtask" && n != "dialect")
            {
                collect_library_sources(&dir.join("src"), &mut files);
            }
        }
        assert!(!files.is_empty());
        for file in files {
            let text = std::fs::read_to_string(&file).expect("source file readable");
            assert!(
                scan_dialect_dispatch(&text).is_none(),
                "per-dialect dispatch in {}",
                file.display()
            );
        }
    }

    #[test]
    fn registry_codes_extract_only_registry_fields() {
        let src = "pub const REGISTRY: &[RuleInfo] = &[\n    RuleInfo {\n        code: \"SQU001\",\n    },\n    RuleInfo {\n        code: \"SQU110\",\n    },\n];\n// elsewhere: code: \"SQU999\" must not count\n";
        assert_eq!(registry_codes(src), vec!["SQU001", "SQU110"]);
    }

    #[test]
    fn design_codes_extract_table_rows() {
        let src = "| Code | Severity |\n|---|---|\n| `SQU001` | error |\n| `SQU110` | warning |\nprose mentioning `SQU555` is not a row\n";
        assert_eq!(design_codes(src), vec!["SQU001", "SQU110"]);
    }

    /// The registry and DESIGN.md's code table are in sync right now —
    /// the same check `cargo run -p xtask -- lint` (and therefore CI)
    /// enforces.
    #[test]
    fn doc_sync_holds_in_this_repo() {
        let findings = doc_sync(&repo_root());
        assert!(findings.is_empty(), "{findings:#?}");
    }

    /// Regression pin for the panic ban's coverage: the fuzz, lint, and
    /// sema library crates are scanned (non-empty file sets) and are
    /// currently clean. Un-waived `.unwrap()` creeping into any of them
    /// fails here and in `xtask lint`.
    #[test]
    fn ban_covers_fuzz_lint_and_sema_library_code() {
        let root = repo_root();
        for krate in ["fuzz", "lint", "sema"] {
            let mut files = Vec::new();
            collect_library_sources(&root.join("crates").join(krate).join("src"), &mut files);
            assert!(
                !files.is_empty(),
                "no library sources collected under crates/{krate}/src"
            );
            for file in files {
                let text = std::fs::read_to_string(&file).expect("source file readable");
                let hits = scan_source(&text);
                assert!(
                    hits.is_empty(),
                    "banned call in {}: {hits:?}",
                    file.display()
                );
            }
        }
    }
}
