//! Property tests for the response extractors: totality (no panics on
//! arbitrary, truncated, or non-ASCII input) and non-degenerate output
//! (extracted labels and words are never the empty string).

use proptest::prelude::*;
use squ_llm::{extract_binary, extract_label, extract_position, extract_word};

const LABELS: [&str; 5] = ["aggr", "aggr-having", "keyword", "column", "value-change"];

/// Truncate at the nearest char boundary at or below `cut` — models a
/// response cut mid-stream, like the transport's truncation fault.
fn truncate_at(s: &str, cut: usize) -> &str {
    let mut cut = cut.min(s.len());
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    &s[..cut]
}

proptest! {
    /// Arbitrary text (the `.` strategy mixes in multi-byte UTF-8) must
    /// never panic any extractor.
    #[test]
    fn extractors_are_total(s in ".{0,240}") {
        let _ = extract_binary(&s);
        let _ = extract_label(&s, &LABELS);
        let _ = extract_position(&s);
        let _ = extract_word(&s);
    }

    /// Realistic response shapes — tags, quotes of every style, echoed
    /// queries, refusals — never panic and never yield empty labels/words.
    #[test]
    fn realistic_shapes_never_yield_empty(
        s in "(Yes|No|Note|Notably|None of|Now)(, .{0,40})?[.!] (error type: |Missing word: |Missing token type: |category: |Position: )?(\"[A-Za-z]{0,8}\"|“[A-Za-z]{0,8}”|`[A-Za-z]{0,8}`|[a-z-]{0,12}|[0-9]{0,4})[.]?( The missing word is .{0,20})?"
    ) {
        prop_assert!(extract_label(&s, &LABELS).value().as_deref() != Some(""));
        prop_assert!(extract_word(&s).value().as_deref() != Some(""));
        let _ = extract_binary(&s);
        let _ = extract_position(&s);
    }

    /// Truncating a response at any char boundary — mid-word, mid-quote,
    /// mid-tag — must not panic or produce an empty extraction.
    #[test]
    fn truncated_responses_are_safe(
        s in "(Yes|Note)[,.] the missing word is (\"FROM\"|“WHERE”|`JOIN`)\\. (error type: aggr-having\\. )?Position: [0-9]{1,3}\\. é中🙂",
        cut in 0usize..120
    ) {
        let t = truncate_at(&s, cut);
        let _ = extract_binary(t);
        prop_assert!(extract_label(t, &LABELS).value().as_deref() != Some(""));
        let _ = extract_position(t);
        prop_assert!(extract_word(t).value().as_deref() != Some(""));
    }

    /// An empty label set can never produce a value (and never panics).
    #[test]
    fn empty_label_set_always_reviews(s in ".{0,120}") {
        prop_assert_eq!(extract_label(&s, &[]).value(), None);
    }
}
