//! Fixture-driven extractor tests: every case in
//! `fixtures/extractor_corpus.json` is a real-shaped model response with a
//! hand-checked expected extraction (`null` = NeedsReview). Cases tagged
//! `regression` pin the word-boundary and quote-handling bug fixes.

use serde_json::Value;
use squ_llm::{extract_binary, extract_label, extract_position, extract_word};

fn corpus() -> Value {
    let raw = include_str!("fixtures/extractor_corpus.json");
    serde_json::from_str(raw).expect("fixture parses")
}

fn cases(corpus: &Value) -> &Vec<Value> {
    corpus["cases"].as_array().expect("cases array")
}

/// Run one case; `None` on pass, a diagnostic string on failure.
fn check(case: &Value) -> Option<String> {
    let id = case["id"].as_str().expect("case id");
    let extractor = case["extractor"].as_str().expect("extractor name");
    let text = case["text"].as_str().expect("case text");
    let expect = &case["expect"];
    let fail = |got: &str| {
        Some(format!(
            "{id}: {extractor}({text:?}) = {got}, expected {expect}"
        ))
    };
    match extractor {
        "binary" => {
            let got = extract_binary(text).value();
            if got == expect.as_bool() {
                return None;
            }
            fail(&format!("{got:?}"))
        }
        "label" => {
            let labels: Vec<&str> = case["labels"]
                .as_array()
                .expect("label cases carry a label set")
                .iter()
                .map(|l| l.as_str().expect("label string"))
                .collect();
            let got = extract_label(text, &labels).value();
            if got.as_deref() == expect.as_str() {
                return None;
            }
            fail(&format!("{got:?}"))
        }
        "position" => {
            let got = extract_position(text).value();
            if got.map(|v| v as u64) == expect.as_u64() {
                return None;
            }
            fail(&format!("{got:?}"))
        }
        "word" => {
            let got = extract_word(text).value();
            if got.as_deref() == expect.as_str() {
                return None;
            }
            fail(&format!("{got:?}"))
        }
        other => Some(format!("{id}: unknown extractor {other:?}")),
    }
}

#[test]
fn corpus_is_well_formed() {
    let corpus = corpus();
    let cases = cases(&corpus);
    assert!(
        cases.len() >= 40,
        "corpus should stay adversarial: {} cases < 40",
        cases.len()
    );
    let mut ids = std::collections::HashSet::new();
    for case in cases {
        let id = case["id"].as_str().expect("case id");
        assert!(ids.insert(id), "duplicate case id {id:?}");
    }
    // every extractor and every fixed bug class is represented
    for extractor in ["binary", "label", "position", "word"] {
        assert!(
            cases
                .iter()
                .any(|c| c["extractor"].as_str() == Some(extractor)),
            "no cases for {extractor}"
        );
    }
    assert!(
        cases.iter().any(|c| c["regression"].as_str().is_some()),
        "no regression cases"
    );
}

#[test]
fn every_corpus_case_extracts_as_labeled() {
    let corpus = corpus();
    let failures: Vec<String> = cases(&corpus).iter().filter_map(check).collect();
    assert!(
        failures.is_empty(),
        "{} corpus failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
