//! The transport boundary between the pipeline and a model.
//!
//! A production inference stack cannot assume a model call succeeds, stays
//! within its latency budget, or returns clean text. [`ModelClient`] is the
//! seam the pipeline talks through: one *logical* call in, final text plus
//! a [`CallRecord`] out. Two implementations ship:
//!
//! * [`DirectClient`] — pass-through, byte-identical to calling the model;
//! * [`Transport`] — wraps any [`LanguageModel`] with a deterministic,
//!   seedable **fault injector** ([`FaultProfile`]) and a **retry policy**
//!   ([`RetryPolicy`]: bounded attempts, exponential backoff with
//!   deterministic jitter, per-call timeout budget). Transient faults
//!   (`Unavailable`, a latency spike blowing the attempt timeout) are
//!   retried; response corruptions (truncation, refusal boilerplate,
//!   prompt echoes, garbled or duplicated sentences) are passed to the
//!   extraction layer, which must survive them. When retries are
//!   exhausted the transport **fails open**: it returns empty text, which
//!   the extractors map to `NeedsReview` — the paper's manual-review
//!   bucket, measured under stress instead of merely tolerated.
//!
//! All randomness derives from a per-(seed, profile, model, task, example)
//! hash, so every call — and therefore every artifact built on top — is
//! reproducible and independent of thread scheduling. Time is *virtual*:
//! latency and backoff accumulate in [`CallRecord::virtual_ms`] without
//! sleeping, which is what makes the retry schedule unit-testable.

use crate::model::{LanguageModel, Request};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// One kind of injected (or observed) fault on a model call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The response was cut off mid-sentence.
    Truncation,
    /// Refusal boilerplate replaced the answer.
    Refusal,
    /// The prompt (query included) was echoed back before the answer.
    Echo,
    /// A garbled sentence was spliced into the answer.
    Garble,
    /// The whole answer was duplicated.
    Duplication,
    /// Transient server error; the attempt produced nothing (retried).
    Unavailable,
    /// A latency spike; when it exceeds the attempt timeout the attempt
    /// is abandoned and retried.
    LatencySpike,
}

impl FaultKind {
    /// Every fault kind, in reporting order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::Truncation,
        FaultKind::Refusal,
        FaultKind::Echo,
        FaultKind::Garble,
        FaultKind::Duplication,
        FaultKind::Unavailable,
        FaultKind::LatencySpike,
    ];

    /// Stable snake_case name (used as the JSON key in fault reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Truncation => "truncation",
            FaultKind::Refusal => "refusal",
            FaultKind::Echo => "echo",
            FaultKind::Garble => "garble",
            FaultKind::Duplication => "duplication",
            FaultKind::Unavailable => "unavailable",
            FaultKind::LatencySpike => "latency_spike",
        }
    }

    /// Transient faults fail the attempt and are retried; the rest corrupt
    /// the response text and are handed to extraction.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::Unavailable | FaultKind::LatencySpike)
    }
}

/// Per-attempt fault probabilities plus the latency model.
///
/// Probabilities are drawn independently per attempt from the call's
/// deterministic RNG. `none()` injects nothing and adds no latency — a
/// [`Transport`] with the `none` profile behaves byte-identically to
/// [`DirectClient`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultProfile {
    /// Profile name (hashes into the per-call seed).
    pub name: &'static str,
    /// P(response truncated mid-sentence).
    pub p_truncation: f64,
    /// P(refusal boilerplate replaces the answer).
    pub p_refusal: f64,
    /// P(prompt echoed back before the answer).
    pub p_echo: f64,
    /// P(a garbled sentence spliced in).
    pub p_garble: f64,
    /// P(answer duplicated).
    pub p_duplication: f64,
    /// P(transient server error per attempt).
    pub p_unavailable: f64,
    /// P(latency spike per attempt).
    pub p_latency_spike: f64,
    /// Baseline virtual latency per attempt (ms).
    pub base_latency_ms: u64,
    /// Multiplier applied to the baseline latency on a spike.
    pub spike_factor: u64,
}

impl FaultProfile {
    /// No faults, no latency: today's behavior, exactly.
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none",
            p_truncation: 0.0,
            p_refusal: 0.0,
            p_echo: 0.0,
            p_garble: 0.0,
            p_duplication: 0.0,
            p_unavailable: 0.0,
            p_latency_spike: 0.0,
            base_latency_ms: 0,
            spike_factor: 1,
        }
    }

    /// Mild corruption: the occasional echo, truncation, or hiccup.
    pub fn light() -> FaultProfile {
        FaultProfile {
            name: "light",
            p_truncation: 0.05,
            p_refusal: 0.02,
            p_echo: 0.08,
            p_garble: 0.05,
            p_duplication: 0.04,
            p_unavailable: 0.03,
            p_latency_spike: 0.03,
            base_latency_ms: 120,
            spike_factor: 20,
        }
    }

    /// Sustained stress: every response at risk, frequent retries.
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            name: "heavy",
            p_truncation: 0.20,
            p_refusal: 0.10,
            p_echo: 0.25,
            p_garble: 0.20,
            p_duplication: 0.15,
            p_unavailable: 0.12,
            p_latency_spike: 0.10,
            base_latency_ms: 150,
            spike_factor: 25,
        }
    }

    /// Transport-dominated failures: mostly `Unavailable` and spikes, so
    /// the retry/backoff path (and its exhaustion) carries the story.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky",
            p_truncation: 0.02,
            p_refusal: 0.01,
            p_echo: 0.02,
            p_garble: 0.02,
            p_duplication: 0.01,
            p_unavailable: 0.30,
            p_latency_spike: 0.20,
            base_latency_ms: 200,
            spike_factor: 30,
        }
    }

    /// The named profiles `repro --faults` accepts.
    pub const NAMES: [&'static str; 4] = ["none", "light", "heavy", "flaky"];

    /// Look a profile up by name.
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(FaultProfile::none()),
            "light" => Some(FaultProfile::light()),
            "heavy" => Some(FaultProfile::heavy()),
            "flaky" => Some(FaultProfile::flaky()),
            _ => None,
        }
    }
}

/// Bounded retry with exponential backoff, deterministic jitter, and a
/// per-call virtual-time budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RetryPolicy {
    /// Maximum attempts per logical call (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (ms).
    pub base_backoff_ms: u64,
    /// Multiplier between consecutive backoffs.
    pub backoff_multiplier: u32,
    /// Ceiling on a single backoff (ms).
    pub max_backoff_ms: u64,
    /// An attempt whose latency exceeds this is abandoned (ms).
    pub attempt_timeout_ms: u64,
    /// Total virtual-time budget for the call; when the next wait would
    /// blow it, the transport fails open instead (ms).
    pub call_budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 2_000,
            attempt_timeout_ms: 1_500,
            call_budget_ms: 8_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), with "equal
    /// jitter": half the exponential step plus a jittered half, `jitter`
    /// in `[0, 1)`. Deterministic given the same jitter draw.
    pub fn backoff_ms(&self, retry: u32, jitter: f64) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(u64::from(self.backoff_multiplier).saturating_pow(retry - 1))
            .min(self.max_backoff_ms);
        let half = exp / 2;
        half + (jitter.clamp(0.0, 1.0) * (exp - half) as f64).round() as u64
    }
}

/// Telemetry for one logical model call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Attempts made (1 when the first try succeeded).
    pub attempts: u32,
    /// Fault kinds observed across all attempts (sorted, deduplicated).
    pub faults: Vec<FaultKind>,
    /// Virtual milliseconds consumed: latency plus backoff waits.
    pub virtual_ms: u64,
    /// Each backoff wait taken, in order — the retry schedule.
    pub backoffs_ms: Vec<u64>,
    /// Retries exhausted (or budget blown): the call failed open and the
    /// empty response routes to `NeedsReview`.
    pub exhausted: bool,
}

impl CallRecord {
    /// The record of an unmediated, fault-free call.
    pub fn direct() -> CallRecord {
        CallRecord {
            attempts: 1,
            faults: Vec::new(),
            virtual_ms: 0,
            backoffs_ms: Vec::new(),
            exhausted: false,
        }
    }

    /// Did this call observe `kind` on any attempt?
    pub fn saw(&self, kind: FaultKind) -> bool {
        self.faults.contains(&kind)
    }

    fn push_fault(&mut self, kind: FaultKind) {
        if !self.faults.contains(&kind) {
            self.faults.push(kind);
        }
    }

    fn finish(mut self) -> CallRecord {
        self.faults.sort();
        self
    }
}

/// The transport boundary: one logical call, final text plus telemetry.
///
/// The pipeline is written against this trait, so swapping the pass-through
/// client for a fault-injecting (or, eventually, real network) transport
/// changes no evaluation code.
pub trait ModelClient {
    /// Display name of the wrapped model.
    fn model_name(&self) -> &str;

    /// Perform one logical call, including any internal retries.
    fn call(&self, req: &Request) -> (String, CallRecord);
}

/// Pass-through client: no faults, no retries, no latency.
pub struct DirectClient<'a>(pub &'a dyn LanguageModel);

impl ModelClient for DirectClient<'_> {
    fn model_name(&self) -> &str {
        self.0.name()
    }

    fn call(&self, req: &Request) -> (String, CallRecord) {
        (self.0.respond(req), CallRecord::direct())
    }
}

/// Production transport: any model behind a seedable fault injector and a
/// retry policy. Deterministic for a given `(seed, profile, model, task,
/// example)` regardless of call order or thread count.
pub struct Transport<M: LanguageModel> {
    model: M,
    profile: FaultProfile,
    policy: RetryPolicy,
    seed: u64,
}

impl<M: LanguageModel> Transport<M> {
    /// Wrap `model` with `profile` under the default retry policy.
    pub fn new(model: M, profile: FaultProfile, seed: u64) -> Transport<M> {
        Transport {
            model,
            profile,
            policy: RetryPolicy::default(),
            seed,
        }
    }

    /// Wrap `model` with an explicit retry policy.
    pub fn with_policy(
        model: M,
        profile: FaultProfile,
        policy: RetryPolicy,
        seed: u64,
    ) -> Transport<M> {
        Transport {
            model,
            profile,
            policy,
            seed,
        }
    }

    /// The active fault profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    fn rng_for(&self, req: &Request) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        self.profile.name.hash(&mut h);
        self.model.name().hash(&mut h);
        req.task.name().hash(&mut h);
        req.example_id.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }

    /// Draw with probability `p`, never panicking on degenerate profiles.
    fn hit(rng: &mut StdRng, p: f64) -> bool {
        p > 0.0 && rng.gen_bool(p.min(1.0))
    }
}

impl<M: LanguageModel> ModelClient for Transport<M> {
    fn model_name(&self) -> &str {
        self.model.name()
    }

    fn call(&self, req: &Request) -> (String, CallRecord) {
        let mut rng = self.rng_for(req);
        let mut rec = CallRecord {
            attempts: 0,
            faults: Vec::new(),
            virtual_ms: 0,
            backoffs_ms: Vec::new(),
            exhausted: false,
        };
        loop {
            rec.attempts += 1;
            // latency for this attempt, on the virtual clock
            let mut latency = self.profile.base_latency_ms;
            if Self::hit(&mut rng, self.profile.p_latency_spike) {
                rec.push_fault(FaultKind::LatencySpike);
                latency = latency.saturating_mul(self.profile.spike_factor.max(1));
            }
            let timed_out = latency > self.policy.attempt_timeout_ms;
            rec.virtual_ms += latency.min(self.policy.attempt_timeout_ms);

            let unavailable = !timed_out && Self::hit(&mut rng, self.profile.p_unavailable);
            if unavailable {
                rec.push_fault(FaultKind::Unavailable);
            }

            if timed_out || unavailable {
                // transient failure: back off and retry, unless attempts
                // or the call budget are exhausted — then fail open
                if rec.attempts >= self.policy.max_attempts {
                    rec.exhausted = true;
                    return (String::new(), rec.finish());
                }
                let backoff = self.policy.backoff_ms(rec.attempts, rng.gen::<f64>());
                if rec.virtual_ms.saturating_add(backoff) > self.policy.call_budget_ms {
                    rec.exhausted = true;
                    return (String::new(), rec.finish());
                }
                rec.virtual_ms += backoff;
                rec.backoffs_ms.push(backoff);
                continue;
            }

            // the attempt landed: corrupt the response per the profile
            let mut text = self.model.respond(req);
            if Self::hit(&mut rng, self.profile.p_refusal) {
                rec.push_fault(FaultKind::Refusal);
                text = refusal_boilerplate(&mut rng);
            } else {
                if Self::hit(&mut rng, self.profile.p_echo) {
                    rec.push_fault(FaultKind::Echo);
                    text = format!("You asked: {}\n\n{}", req.prompt, text);
                }
                if Self::hit(&mut rng, self.profile.p_duplication) {
                    rec.push_fault(FaultKind::Duplication);
                    text = format!("{text} {text}");
                }
                if Self::hit(&mut rng, self.profile.p_garble) {
                    rec.push_fault(FaultKind::Garble);
                    text = garble(&text, &mut rng);
                }
                if Self::hit(&mut rng, self.profile.p_truncation) {
                    rec.push_fault(FaultKind::Truncation);
                    text = truncate(&text, &mut rng);
                }
            }
            return (text, rec.finish());
        }
    }
}

/// Refusal boilerplate — phrasings real APIs actually return, including
/// the "Note:"-style openings that once fooled the binary extractor.
fn refusal_boilerplate(rng: &mut StdRng) -> String {
    const REFUSALS: [&str; 4] = [
        "As an AI language model, I cannot execute SQL queries or access your database. Could you clarify what you would like me to check?",
        "I'm sorry, but I am unable to analyze this request. Please provide more context about your database schema.",
        "Note: I cannot assist with running queries against a live system. My capabilities are limited to general guidance.",
        "Unfortunately I can't determine that from the information given. Consider consulting your database administrator.",
    ];
    (*REFUSALS.choose(rng).expect("non-empty")).to_string() // lint:allow: drawn from a non-empty set
}

/// Splice a word-shuffled copy of the first sentence into the response —
/// the "model glitched mid-generation" shape.
fn garble(text: &str, rng: &mut StdRng) -> String {
    let first_sentence = text.split('.').next().unwrap_or(text);
    let mut words: Vec<&str> = first_sentence.split_whitespace().collect();
    if words.is_empty() {
        return text.to_string();
    }
    words.shuffle(rng);
    format!("{} {}.", text, words.join(" "))
}

/// Cut the response at a char boundary, 20–90% of the way in.
fn truncate(text: &str, rng: &mut StdRng) -> String {
    if text.is_empty() {
        return String::new();
    }
    let frac = 0.2 + 0.7 * rng.gen::<f64>();
    let cut = ((text.len() as f64) * frac) as usize;
    let mut cut = cut.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroundTruth, Task};
    use crate::profiles::DatasetId;
    use squ_workload::QueryProps;

    struct Fixed(&'static str);
    impl LanguageModel for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn respond(&self, _req: &Request) -> String {
            self.0.to_string()
        }
    }

    fn request(id: &str) -> Request {
        Request {
            task: Task::Perf,
            dataset: DatasetId::Sdss,
            example_id: id.to_string(),
            prompt: "Will the following query take long? SELECT plate FROM SpecObj".into(),
            truth: GroundTruth::Perf { costly: false },
            props: QueryProps {
                char_count: 60,
                word_count: 10,
                query_type: "SELECT".into(),
                table_count: 1,
                join_count: 0,
                column_count: 2,
                function_count: 0,
                predicate_count: 1,
                nestedness: 0,
                aggregate: false,
            },
        }
    }

    #[test]
    fn none_profile_is_pass_through() {
        let model = Fixed("No, this query should run quickly.");
        let t = Transport::new(
            Fixed("No, this query should run quickly."),
            FaultProfile::none(),
            7,
        );
        let direct = DirectClient(&model);
        for i in 0..50 {
            let req = request(&format!("p-{i}"));
            let (dt, dr) = direct.call(&req);
            let (tt, tr) = t.call(&req);
            assert_eq!(dt, tt);
            assert_eq!(dr, tr, "none-profile record must equal direct");
        }
    }

    #[test]
    fn calls_are_deterministic_and_seed_sensitive() {
        let t1 = Transport::new(Fixed("Yes, it will take longer."), FaultProfile::heavy(), 1);
        let t2 = Transport::new(Fixed("Yes, it will take longer."), FaultProfile::heavy(), 1);
        let t3 = Transport::new(Fixed("Yes, it will take longer."), FaultProfile::heavy(), 2);
        let mut diverged = false;
        for i in 0..100 {
            let req = request(&format!("d-{i}"));
            assert_eq!(t1.call(&req), t2.call(&req), "same seed must agree");
            if t1.call(&req) != t3.call(&req) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds should inject different faults");
    }

    #[test]
    fn always_unavailable_exhausts_with_exponential_schedule() {
        let profile = FaultProfile {
            p_unavailable: 1.0,
            ..FaultProfile::none()
        };
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 10_000,
            attempt_timeout_ms: 1_000,
            call_budget_ms: 60_000,
        };
        let t = Transport::with_policy(Fixed("irrelevant"), profile, policy, 11);
        let (text, rec) = t.call(&request("x-1"));
        assert_eq!(text, "");
        assert!(rec.exhausted);
        assert_eq!(rec.attempts, 4);
        assert!(rec.saw(FaultKind::Unavailable));
        // three backoffs, each within the equal-jitter envelope of its step
        assert_eq!(rec.backoffs_ms.len(), 3);
        for (i, &b) in rec.backoffs_ms.iter().enumerate() {
            let exp = 100u64 << i;
            assert!(
                b >= exp / 2 && b <= exp,
                "backoff {i} = {b} outside [{}, {exp}]",
                exp / 2
            );
        }
        // virtual time = latencies (0 here) + backoffs; nothing slept
        assert_eq!(rec.virtual_ms, rec.backoffs_ms.iter().sum::<u64>());
    }

    #[test]
    fn budget_exhaustion_fails_open_before_max_attempts() {
        let profile = FaultProfile {
            p_unavailable: 1.0,
            ..FaultProfile::none()
        };
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 100,
            backoff_multiplier: 2,
            max_backoff_ms: 10_000,
            attempt_timeout_ms: 1_000,
            call_budget_ms: 250, // fits ~2 backoffs at most
        };
        let t = Transport::with_policy(Fixed("irrelevant"), profile, policy, 3);
        let (text, rec) = t.call(&request("x-2"));
        assert_eq!(text, "");
        assert!(rec.exhausted);
        assert!(rec.attempts < 10, "budget must cut retries short");
        assert!(rec.virtual_ms <= 250);
    }

    #[test]
    fn latency_spike_times_out_and_retries() {
        let profile = FaultProfile {
            p_latency_spike: 1.0,
            base_latency_ms: 200,
            spike_factor: 10, // 2000 ms > 1500 ms attempt timeout
            ..FaultProfile::none()
        };
        let t = Transport::new(Fixed("irrelevant"), profile, 5);
        let (text, rec) = t.call(&request("x-3"));
        assert_eq!(text, "");
        assert!(rec.exhausted);
        assert!(rec.saw(FaultKind::LatencySpike));
        assert_eq!(rec.attempts, RetryPolicy::default().max_attempts);
    }

    #[test]
    fn transient_fault_then_success_returns_clean_text() {
        // unavailable on some attempts but never exhausted under a long
        // budget: whenever text comes back it must be the model's text
        let profile = FaultProfile {
            p_unavailable: 0.5,
            ..FaultProfile::none()
        };
        let policy = RetryPolicy {
            max_attempts: 32,
            ..RetryPolicy::default()
        };
        let t = Transport::with_policy(Fixed("Yes."), profile, policy, 13);
        let mut retried = 0;
        for i in 0..60 {
            let (text, rec) = t.call(&request(&format!("r-{i}")));
            if rec.exhausted {
                continue;
            }
            assert_eq!(text, "Yes.");
            if rec.attempts > 1 {
                retried += 1;
                assert_eq!(rec.backoffs_ms.len() as u32, rec.attempts - 1);
            }
        }
        assert!(retried > 5, "p=0.5 must force retries");
    }

    #[test]
    fn corruptions_record_their_kinds() {
        let profile = FaultProfile {
            p_echo: 1.0,
            p_truncation: 1.0,
            ..FaultProfile::none()
        };
        let t = Transport::new(
            Fixed("No, this query should run quickly and cheaply on any backend."),
            profile,
            9,
        );
        let (text, rec) = t.call(&request("c-1"));
        assert!(rec.saw(FaultKind::Echo));
        assert!(rec.saw(FaultKind::Truncation));
        assert!(text.starts_with("You asked: "));
        assert!(!rec.exhausted);
        // truncation respected char boundaries (would have panicked above
        // otherwise) and left a strict prefix of the echoed text
        assert!(text.len() < "You asked: Will the following query take long? SELECT plate FROM SpecObj\n\nNo, this query should run quickly and cheaply on any backend.".len());
    }

    #[test]
    fn backoff_is_capped_and_jitter_bounded() {
        let p = RetryPolicy {
            base_backoff_ms: 1_000,
            backoff_multiplier: 3,
            max_backoff_ms: 2_500,
            ..RetryPolicy::default()
        };
        assert!(p.backoff_ms(1, 0.0) >= 500 && p.backoff_ms(1, 1.0) <= 1_000);
        // step 3 would be 9000 uncapped; the cap bounds it to 2500
        assert!(p.backoff_ms(3, 1.0) <= 2_500);
        assert!(p.backoff_ms(3, 0.0) >= 1_250);
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in FaultProfile::NAMES {
            let p = FaultProfile::by_name(name).expect("named profile resolves");
            assert_eq!(p.name, name);
        }
        assert!(FaultProfile::by_name("chaos-monkey").is_none());
    }
}
