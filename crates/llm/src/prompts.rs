//! Task prompts and the prompt-tuning harness (paper §3.4).
//!
//! The paper selects each task's prompt by (1) generating candidate
//! phrasings, then (2) running small mock experiments on a labeled subset
//! and keeping the best performer. [`tune_prompt`] reproduces that loop:
//! it scores every candidate by running the full model→extract pipeline on
//! a mock slice and returns the winner. The shipped defaults
//! ([`task_prompt`]) are the paper's published prompts, which the tuner
//! does select under the default scoring.

use crate::model::Task;

/// The paper's published prompt for each task (§3.4).
pub fn task_prompt(task: Task) -> &'static str {
    match task {
        Task::Syntax => {
            "Does the following query contain any syntax errors? If so, explain the error."
        }
        Task::MissToken => {
            "Does the following query have any syntax errors? (yes/no) If yes, is there a missing word? (yes/no) If yes, what is the type of the missing word? If yes, what is the missing word? If yes, what is the position of the missing word? (Provide the word count position where the word is missing.)"
        }
        Task::Equiv => {
            "Are the following two queries equivalent (do they produce the same results on the same database schema)? If yes, why are they equivalent?"
        }
        Task::Perf => "Does the following query take longer than usual to run?",
        Task::Explain => "Provide a single statement describing this query:",
        Task::Translate => {
            "Translate the following SQL query from the source dialect to the target dialect. Reply with only the translated query."
        }
    }
}

/// Candidate prompts per task for the tuning loop (the published prompt is
/// always among them).
pub fn candidate_prompts(task: Task) -> Vec<&'static str> {
    let mut v = vec![task_prompt(task)];
    v.extend(match task {
        Task::Syntax => vec![
            "Is this SQL query valid? Answer yes or no and explain.",
            "Check the following SQL statement for syntax errors and name the error category if any.",
        ],
        Task::MissToken => vec![
            "Is a word missing from this SQL query? If so, which word, of what type, and at which word position?",
            "Inspect the query for omitted tokens and report type, token, and position.",
        ],
        Task::Equiv => vec![
            "Do these two SQL queries always return the same result? Explain.",
            "Decide whether the two statements below are semantically identical queries.",
        ],
        Task::Perf => vec![
            "Will this query be expensive to execute? Answer yes or no.",
            "Estimate whether the runtime of the following query is above average.",
        ],
        Task::Explain => vec![
            "Summarize what this SQL query computes in one sentence:",
            "Describe the output of the following query:",
        ],
        Task::Translate => vec![
            "Rewrite this SQL query so it runs on the target dialect, preserving its results exactly.",
            "Convert the query below from the source SQL dialect to the target SQL dialect and output only SQL.",
        ],
    });
    v
}

/// Assemble a full prompt: instruction + payload (the query or query pair).
pub fn render_prompt(instruction: &str, payload: &str) -> String {
    format!("{instruction}\n\n{payload}")
}

/// Result of one tuning trial.
#[derive(Debug, Clone)]
pub struct TunedPrompt {
    /// The winning instruction text.
    pub instruction: String,
    /// Mock-trial accuracy of the winner.
    pub score: f64,
    /// `(candidate, score)` for every candidate, in input order.
    pub trials: Vec<(String, f64)>,
}

/// Select the best prompt for `task` by scoring each candidate with
/// `score` (a mock-experiment runner supplied by the caller; returns
/// accuracy in `[0,1]`).
pub fn tune_prompt(task: Task, mut score: impl FnMut(&str) -> f64) -> TunedPrompt {
    let mut trials = Vec::new();
    for cand in candidate_prompts(task) {
        let s = score(cand);
        trials.push((cand.to_string(), s));
    }
    let (instruction, best) = trials
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite")) // lint:allow: values are finite by construction
        .map(|(c, s)| (c.clone(), *s))
        .expect("at least one candidate"); // lint:allow: candidate list built non-empty
    TunedPrompt {
        instruction,
        score: best,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_prompt_is_first_candidate() {
        for task in [
            Task::Syntax,
            Task::MissToken,
            Task::Equiv,
            Task::Perf,
            Task::Explain,
            Task::Translate,
        ] {
            assert_eq!(candidate_prompts(task)[0], task_prompt(task));
            assert!(candidate_prompts(task).len() >= 3);
        }
    }

    #[test]
    fn tuner_picks_highest_scoring() {
        let tuned = tune_prompt(Task::Perf, |c| {
            if c == task_prompt(Task::Perf) {
                0.9
            } else {
                0.5
            }
        });
        assert_eq!(tuned.instruction, task_prompt(Task::Perf));
        assert_eq!(tuned.score, 0.9);
        assert_eq!(tuned.trials.len(), 3);
    }

    #[test]
    fn render_includes_payload() {
        let p = render_prompt(task_prompt(Task::Syntax), "SELECT 1");
        assert!(p.contains("syntax errors"));
        assert!(p.ends_with("SELECT 1"));
    }
}
