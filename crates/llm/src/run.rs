//! The generic task runner: one driver for all six task families.
//!
//! [`RunTask`] extends [`squ_tasks::Task`] with the model-facing half of
//! the contract — prompt rendering, free-text extraction, and scoring —
//! which has to live here because the extractors and prompts do. The
//! [`run_task`] driver is the single prompt → transport → response →
//! extraction loop the whole benchmark funnels through; per-task behavior
//! varies only through the trait implementations below.
//!
//! Everything downstream of the response string is *measured* — the same
//! extraction code would process a real API's output. Responses the
//! extractor cannot parse are flagged `needs_review` and default to the
//! negative answer (the paper routed these to manual review).

use crate::extract::{extract_binary, extract_label, extract_position, extract_sql, extract_word};
use crate::model::{LanguageModel, Request};
use crate::profiles::DatasetId;
use crate::prompts;
use crate::transport::{CallRecord, DirectClient, ModelClient};
use squ_tasks::{
    EquivExample, EquivTask, ExplainExample, ExplainTask, PerfExample, PerfTask, SyntaxExample,
    SyntaxTask, TokenExample, TokenTask, TranslateExample, TranslateTask,
};
use squ_workload::Workload;

/// Map a workload to its dataset id.
impl From<Workload> for DatasetId {
    fn from(w: Workload) -> DatasetId {
        match w {
            Workload::Sdss => DatasetId::Sdss,
            Workload::SqlShare => DatasetId::SqlShare,
            Workload::JoinOrder => DatasetId::JoinOrder,
            Workload::Spider => DatasetId::Spider,
        }
    }
}

/// The model-facing extension of [`squ_tasks::Task`]: how a task's
/// examples become prompts and how verbose responses become outcomes.
pub trait RunTask: squ_tasks::Task {
    /// What one evaluated example produces.
    type Outcome: std::fmt::Debug + Clone + Send + Sync + 'static;

    /// Render the full prompt for one example: the task's published
    /// instruction followed by the example payload.
    fn render_prompt(&self, e: &Self::Example) -> String {
        prompts::render_prompt(prompts::task_prompt(self.id()), &self.payload(e))
    }

    /// Turn a raw response (and its transport record) into an outcome by
    /// running the extraction layer.
    fn extract(&self, e: &Self::Example, response: String, call: CallRecord) -> Self::Outcome;

    /// Task-level per-example score, for tasks that define one (the
    /// explanation rubric). Classification tasks are scored downstream by
    /// `squ-eval` metrics over whole outcome sets.
    fn score(&self, _e: &Self::Example, _response: &str) -> Option<squ_eval::RubricScore> {
        None
    }

    /// `(needs_review, call record)` — the per-call facts fault-injection
    /// reports fold. Tasks without a review bucket report `false`.
    fn call_fact(o: &Self::Outcome) -> (bool, &CallRecord);
}

/// Run any transport client over one task dataset (the generic driver).
pub fn run_task<T: RunTask>(
    task: &T,
    client: &dyn ModelClient,
    ds: DatasetId,
    examples: &[T::Example],
) -> Vec<T::Outcome> {
    examples
        .iter()
        .map(|e| {
            let req = Request {
                task: task.id(),
                dataset: ds,
                example_id: task.example_id(e).to_string(),
                prompt: task.render_prompt(e),
                truth: task.ground_truth(e),
                props: task.props(e).clone(),
            };
            let (response, call) = client.call(&req);
            task.extract(e, response, call)
        })
        .collect()
}

/// Run a model over one task dataset through a pass-through transport.
pub fn run_task_direct<T: RunTask>(
    task: &T,
    model: &dyn LanguageModel,
    ds: DatasetId,
    examples: &[T::Example],
) -> Vec<T::Outcome> {
    run_task(task, &DirectClient(model), ds, examples)
}

/// Outcome of one syntax-task example.
#[derive(Debug, Clone)]
pub struct SyntaxOutcome {
    /// The labeled example.
    pub example: SyntaxExample,
    /// Raw model response.
    pub response: String,
    /// Extracted binary answer (false when unparseable).
    pub said_error: bool,
    /// Extracted error-type label, if the model named one.
    pub said_type: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for SyntaxTask {
    type Outcome = SyntaxOutcome;

    fn extract(&self, e: &SyntaxExample, response: String, call: CallRecord) -> SyntaxOutcome {
        let bin = extract_binary(&response);
        let said_error = bin.value().unwrap_or(false);
        let labels: Vec<&str> = squ_tasks::SyntaxErrorType::ALL
            .iter()
            .map(|t| t.label())
            .collect();
        let said_type = if said_error {
            extract_label(&response, &labels).value()
        } else {
            None
        };
        SyntaxOutcome {
            example: e.clone(),
            said_error,
            said_type,
            needs_review: bin.value().is_none(),
            response,
            call,
        }
    }

    fn call_fact(o: &SyntaxOutcome) -> (bool, &CallRecord) {
        (o.needs_review, &o.call)
    }
}

/// Outcome of one missing-token example.
#[derive(Debug, Clone)]
pub struct TokenOutcome {
    /// The labeled example.
    pub example: TokenExample,
    /// Raw model response.
    pub response: String,
    /// Extracted binary answer.
    pub said_missing: bool,
    /// Extracted token-type label.
    pub said_type: Option<String>,
    /// Extracted position.
    pub said_position: Option<usize>,
    /// Extracted guess for the missing word itself.
    pub said_word: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for TokenTask {
    type Outcome = TokenOutcome;

    fn extract(&self, e: &TokenExample, response: String, call: CallRecord) -> TokenOutcome {
        let bin = extract_binary(&response);
        let said_missing = bin.value().unwrap_or(false);
        let labels: Vec<&str> = squ_tasks::TokenType::ALL
            .iter()
            .map(|t| t.label())
            .collect();
        let (said_type, said_position, said_word) = if said_missing {
            (
                extract_label(&response, &labels).value(),
                extract_position(&response).value(),
                extract_word(&response).value(),
            )
        } else {
            (None, None, None)
        };
        TokenOutcome {
            example: e.clone(),
            said_missing,
            said_type,
            said_position,
            said_word,
            needs_review: bin.value().is_none(),
            response,
            call,
        }
    }

    fn call_fact(o: &TokenOutcome) -> (bool, &CallRecord) {
        (o.needs_review, &o.call)
    }
}

/// Outcome of one equivalence example.
#[derive(Debug, Clone)]
pub struct EquivOutcome {
    /// The labeled pair.
    pub example: EquivExample,
    /// Raw model response.
    pub response: String,
    /// Extracted answer.
    pub said_equivalent: bool,
    /// Extracted transform label.
    pub said_type: Option<String>,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for EquivTask {
    type Outcome = EquivOutcome;

    fn extract(&self, e: &EquivExample, response: String, call: CallRecord) -> EquivOutcome {
        let bin = extract_binary(&response);
        let said_equivalent = bin.value().unwrap_or(false);
        let equiv_labels: Vec<&str> = squ_tasks::EquivType::ALL
            .iter()
            .map(|t| t.label())
            .collect();
        let said_type = if said_equivalent {
            extract_label(&response, &equiv_labels).value()
        } else {
            None
        };
        EquivOutcome {
            example: e.clone(),
            said_equivalent,
            said_type,
            needs_review: bin.value().is_none(),
            response,
            call,
        }
    }

    fn call_fact(o: &EquivOutcome) -> (bool, &CallRecord) {
        (o.needs_review, &o.call)
    }
}

/// Outcome of one performance-prediction example.
#[derive(Debug, Clone)]
pub struct PerfOutcome {
    /// The labeled example.
    pub example: PerfExample,
    /// Raw model response.
    pub response: String,
    /// Extracted answer.
    pub said_costly: bool,
    /// Response could not be parsed automatically.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for PerfTask {
    type Outcome = PerfOutcome;

    fn extract(&self, e: &PerfExample, response: String, call: CallRecord) -> PerfOutcome {
        let bin = extract_binary(&response);
        PerfOutcome {
            example: e.clone(),
            said_costly: bin.value().unwrap_or(false),
            needs_review: bin.value().is_none(),
            response,
            call,
        }
    }

    fn call_fact(o: &PerfOutcome) -> (bool, &CallRecord) {
        (o.needs_review, &o.call)
    }
}

/// Outcome of one explanation example.
#[derive(Debug, Clone)]
pub struct ExplainOutcome {
    /// The labeled example.
    pub example: ExplainExample,
    /// The model's explanation.
    pub explanation: String,
    /// Rubric score.
    pub rubric: squ_eval::RubricScore,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for ExplainTask {
    type Outcome = ExplainOutcome;

    fn extract(&self, e: &ExplainExample, response: String, call: CallRecord) -> ExplainOutcome {
        let rubric = self
            .score(e, &response)
            .unwrap_or_else(|| squ_eval::score_explanation(&response, &e.facts));
        ExplainOutcome {
            example: e.clone(),
            explanation: response,
            rubric,
            call,
        }
    }

    fn score(&self, e: &ExplainExample, response: &str) -> Option<squ_eval::RubricScore> {
        Some(squ_eval::score_explanation(response, &e.facts))
    }

    fn call_fact(o: &ExplainOutcome) -> (bool, &CallRecord) {
        // Explanations are rubric-scored free text: no review bucket.
        (false, &o.call)
    }
}

/// Outcome of one dialect-translation example.
#[derive(Debug, Clone)]
pub struct TranslateOutcome {
    /// The labeled example.
    pub example: TranslateExample,
    /// Raw model response.
    pub response: String,
    /// The SQL the extractor pulled out of the response, if any.
    pub said_sql: Option<String>,
    /// Whether the extracted SQL parses in the target dialect to the same
    /// query as the gold translation (structural, not textual, equality).
    pub correct: bool,
    /// No SQL could be extracted from the response.
    pub needs_review: bool,
    /// Transport telemetry for the call behind this outcome.
    pub call: CallRecord,
}

impl RunTask for TranslateTask {
    type Outcome = TranslateOutcome;

    fn extract(
        &self,
        e: &TranslateExample,
        response: String,
        call: CallRecord,
    ) -> TranslateOutcome {
        let said_sql = extract_sql(&response).value();
        let correct = said_sql
            .as_deref()
            .is_some_and(|sql| translation_matches_gold(sql, &e.gold_sql, &e.target_dialect));
        TranslateOutcome {
            example: e.clone(),
            needs_review: said_sql.is_none(),
            said_sql,
            correct,
            response,
            call,
        }
    }

    fn call_fact(o: &TranslateOutcome) -> (bool, &CallRecord) {
        (o.needs_review, &o.call)
    }
}

/// Does a candidate translation mean the same thing as the gold one?
///
/// Both texts are parsed in the *target* dialect and compared through the
/// canonical printer, so surface freedoms the dialect allows (quote style,
/// `TOP` vs `LIMIT` spelling where both exist, whitespace) do not count
/// against the model, while any structural difference does. A candidate
/// that does not parse in the target dialect is wrong by definition.
pub fn translation_matches_gold(candidate: &str, gold: &str, target_dialect: &str) -> bool {
    let Some(d) = squ_dialect::Dialect::by_name(target_dialect) else {
        return false;
    };
    let (Ok(cq), Ok(gq)) = (
        squ_parser::parse_query_dialect(candidate, d),
        squ_parser::parse_query_dialect(gold, d),
    ) else {
        return false;
    };
    squ_parser::print_query(&cq) == squ_parser::print_query(&gq)
}
