//! The language-model interface and request/response types.
//!
//! The benchmark talks to models through [`LanguageModel`]: a prompt goes
//! in, free text comes out, and the *extraction* layer (not the model)
//! turns text into labels — exactly the paper's §3.4 pipeline. The five
//! shipped implementations are **behavioral simulators** (see
//! [`crate::SimulatedModel`]): each receives the ground truth and the
//! query's features alongside the prompt and produces a calibrated,
//! deliberately-verbose response. An implementation backed by a real API
//! would simply ignore [`Request::truth`].

use crate::profiles::DatasetId;
use squ_workload::QueryProps;

/// The task-family id and ground-truth types live with the task builders
/// in `squ-tasks` (the [`squ_tasks::Task`] trait owns them); this module
/// re-exports them under the names the model layer has always used.
pub use squ_tasks::{GroundTruth, TaskId as Task};

/// One model call.
#[derive(Debug, Clone)]
pub struct Request {
    /// Which task family.
    pub task: Task,
    /// Which dataset the example comes from.
    pub dataset: DatasetId,
    /// Stable example id (also the randomness seed component).
    pub example_id: String,
    /// The prompt text shown to the model.
    pub prompt: String,
    /// Ground truth (simulators only; a real backend ignores this).
    pub truth: GroundTruth,
    /// Syntactic properties of the example's query.
    pub props: QueryProps,
}

/// A language model: prompt in, verbose text out.
pub trait LanguageModel {
    /// Model display name (paper spelling).
    fn name(&self) -> &'static str;

    /// Produce the free-text response for a request.
    fn respond(&self, req: &Request) -> String;
}
