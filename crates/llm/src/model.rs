//! The language-model interface and request/response types.
//!
//! The benchmark talks to models through [`LanguageModel`]: a prompt goes
//! in, free text comes out, and the *extraction* layer (not the model)
//! turns text into labels — exactly the paper's §3.4 pipeline. The five
//! shipped implementations are **behavioral simulators** (see
//! [`crate::SimulatedModel`]): each receives the ground truth and the
//! query's features alongside the prompt and produces a calibrated,
//! deliberately-verbose response. An implementation backed by a real API
//! would simply ignore [`Request::truth`].

use crate::profiles::DatasetId;
use serde::{Deserialize, Serialize};
use squ_tasks::KeyFacts;
use squ_workload::QueryProps;

/// The composite task families, one per paper prompt (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// `syntax_error` + `syntax_error_type` (one composite prompt).
    Syntax,
    /// `miss_token` + `miss_token_type` + missing word + `miss_token_loc`.
    MissToken,
    /// `query_equiv` + `query_equiv_type`.
    Equiv,
    /// `performance_pred`.
    Perf,
    /// `query_exp`.
    Explain,
}

impl Task {
    /// Paper-style identifier.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Syntax => "syntax_error",
            Task::MissToken => "miss_token",
            Task::Equiv => "query_equiv",
            Task::Perf => "performance_pred",
            Task::Explain => "query_exp",
        }
    }
}

/// Ground truth attached to a request (consumed only by simulators).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Syntax-error task truth.
    Syntax {
        /// Does the query contain an error?
        has_error: bool,
        /// Error-type label if any.
        error_type: Option<String>,
    },
    /// Missing-token task truth.
    Token {
        /// Is a token missing?
        missing: bool,
        /// Token-type label if any.
        token_type: Option<String>,
        /// The removed text.
        removed: Option<String>,
        /// Word position of the removal.
        position: Option<usize>,
        /// Word count of the shown query.
        word_count: usize,
    },
    /// Query-equivalence task truth.
    Equiv {
        /// Are the two queries equivalent?
        equivalent: bool,
        /// Transformation label.
        transform: String,
    },
    /// Performance-prediction task truth.
    Perf {
        /// Is the query costly (> 200 ms)?
        costly: bool,
    },
    /// Explanation task truth.
    Explain {
        /// Reference description.
        reference: String,
        /// Rubric key facts.
        facts: KeyFacts,
        /// The SQL being explained.
        sql: String,
    },
}

/// One model call.
#[derive(Debug, Clone)]
pub struct Request {
    /// Which task family.
    pub task: Task,
    /// Which dataset the example comes from.
    pub dataset: DatasetId,
    /// Stable example id (also the randomness seed component).
    pub example_id: String,
    /// The prompt text shown to the model.
    pub prompt: String,
    /// Ground truth (simulators only; a real backend ignores this).
    pub truth: GroundTruth,
    /// Syntactic properties of the example's query.
    pub props: QueryProps,
}

/// A language model: prompt in, verbose text out.
pub trait LanguageModel {
    /// Model display name (paper spelling).
    fn name(&self) -> &'static str;

    /// Produce the free-text response for a request.
    fn respond(&self, req: &Request) -> String;
}
