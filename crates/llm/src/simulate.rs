//! The calibrated behavioral simulator behind the five models.
//!
//! For each request the simulator (1) derives per-example error
//! probabilities from the paper-digitized targets in [`crate::profiles`],
//! modulated by subtype difficulty and query complexity; (2) makes its
//! decisions with a deterministic per-(model, example) RNG; and (3) writes
//! a deliberately verbose free-text response in one of several phrasings,
//! which the extraction layer must parse — reproducing the paper's §3.4
//! output-handling problem end-to-end.

use crate::model::{GroundTruth, LanguageModel, Request, Task};
use crate::profiles::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use squ_tasks::KeyFacts;
use squ_workload::QueryProps;
use std::hash::{Hash, Hasher};

/// Configuration of the behavioral simulator — the knobs the ablation and
/// extension studies turn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Scale on the complexity tilt's strength (1.0 = paper-calibrated;
    /// 0.0 = failures uniformly distributed over queries).
    pub tilt_scale: f64,
    /// Whether subtype difficulty weights (Figures 7/9 calibration) apply.
    pub subtype_weights: bool,
    /// Multiplier on every error probability (1.0 = zero-shot calibrated).
    /// The paper's future-work few-shot / fine-tuning study is modeled as
    /// error-rate reduction: ~0.55 for few-shot, ~0.3 for fine-tuned,
    /// consistent with reported gains on comparable SQL tasks.
    pub error_scale: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tilt_scale: 1.0,
            subtype_weights: true,
            error_scale: 1.0,
        }
    }
}

impl SimConfig {
    /// The paper's future-work few-shot setting (§6).
    pub fn few_shot() -> Self {
        SimConfig {
            error_scale: 0.55,
            ..SimConfig::default()
        }
    }

    /// The paper's future-work fine-tuned setting (§6).
    pub fn fine_tuned() -> Self {
        SimConfig {
            error_scale: 0.3,
            ..SimConfig::default()
        }
    }
}

/// A behavioral simulator for one of the five paper models.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedModel {
    /// Which model is being simulated.
    pub id: ModelId,
    /// Behavioral configuration.
    pub config: SimConfig,
}

impl SimulatedModel {
    /// Construct a simulator for `id` with the paper-calibrated defaults.
    pub fn new(id: ModelId) -> Self {
        SimulatedModel {
            id,
            config: SimConfig::default(),
        }
    }

    /// Construct a simulator with an explicit configuration.
    pub fn with_config(id: ModelId, config: SimConfig) -> Self {
        SimulatedModel { id, config }
    }

    /// All five simulators (default configuration).
    pub fn all() -> Vec<SimulatedModel> {
        ModelId::ALL.into_iter().map(SimulatedModel::new).collect()
    }

    fn rng_for(&self, req: &Request) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.id.name().hash(&mut h);
        req.task.name().hash(&mut h);
        req.example_id.hash(&mut h);
        // the wording of the prompt perturbs the outcome (as it does for a
        // real model) without shifting the calibrated aggregate rates —
        // this is what the §3.4 mock-trial prompt tuning measures
        req.prompt.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

impl LanguageModel for SimulatedModel {
    fn name(&self) -> &'static str {
        self.id.name()
    }

    fn respond(&self, req: &Request) -> String {
        let mut rng = self.rng_for(req);
        match (&req.truth, req.task) {
            (
                GroundTruth::Syntax {
                    has_error,
                    error_type,
                },
                Task::Syntax,
            ) => respond_syntax(
                self.id,
                self.config,
                req,
                *has_error,
                error_type.as_deref(),
                &mut rng,
            ),
            (
                GroundTruth::Token {
                    missing,
                    token_type,
                    removed,
                    position,
                    word_count,
                },
                Task::MissToken,
            ) => respond_token(
                self.id,
                self.config,
                req,
                *missing,
                token_type.as_deref(),
                removed.as_deref(),
                *position,
                *word_count,
                &mut rng,
            ),
            (
                GroundTruth::Equiv {
                    equivalent,
                    transform,
                },
                Task::Equiv,
            ) => respond_equiv(self.id, self.config, req, *equivalent, transform, &mut rng),
            (GroundTruth::Perf { costly }, Task::Perf) => {
                respond_perf(self.id, self.config, req, *costly, &mut rng)
            }
            (GroundTruth::Explain { facts, sql, .. }, Task::Explain) => {
                respond_explain(self.id, facts, sql, &mut rng)
            }
            (GroundTruth::Translate { gold_sql, target }, Task::Translate) => {
                respond_translate(self.id, self.config, req, gold_sql, target, &mut rng)
            }
            _ => "I am unable to answer this request.".to_string(),
        }
    }
}

// ---------------- complexity tilt ----------------

/// Multiplicative complexity weight: >1 for queries more complex than the
/// dataset's typical, <1 for simpler ones. `beta` controls the strength.
/// This single mechanism produces the paper's Figures 6, 8, 10, 11, 12.
fn complexity_weight(props: &QueryProps, ds: DatasetId, beta: f64) -> f64 {
    let z = (props.word_count as f64 / ds.typical_word_count())
        .max(0.05)
        .ln()
        .clamp(-1.5, 1.5);
    (beta * z).exp()
}

/// Extra tilt from structural features (predicates, tables, nesting),
/// centered on the dataset's typical values so the tilt changes *which*
/// examples fail without shifting the aggregate rates. Used where the
/// paper reports those specific slices (Figures 8, 11, 12).
fn structural_weight(props: &QueryProps, ds: DatasetId, beta: f64) -> f64 {
    let z = ((props.predicate_count as f64 + 1.0) / (ds.typical_predicates() + 1.0))
        .ln()
        .clamp(-1.0, 1.5)
        + ((props.table_count as f64).max(0.5) / ds.typical_tables())
            .ln()
            .clamp(-1.0, 1.2)
            * 0.6
        + (props.nestedness as f64) * 0.7;
    (beta * z).exp()
}

fn clamp_p(p: f64) -> f64 {
    p.clamp(0.0, 0.97)
}

// ---------------- syntax ----------------

fn respond_syntax(
    id: ModelId,
    cfg: SimConfig,
    req: &Request,
    has_error: bool,
    error_type: Option<&str>,
    rng: &mut StdRng,
) -> String {
    let t = syntax_error_target(id, req.dataset);
    let says_error = if has_error {
        let subtype_w = if cfg.subtype_weights {
            error_type
                .map(|l| syntax_subtype_weight(req.dataset, l))
                .unwrap_or(1.0)
                / syntax_subtype_mean(req.dataset)
        } else {
            1.0
        };
        let p_fn = clamp_p(
            cfg.error_scale
                * (1.0 - t.recall)
                * subtype_w
                * complexity_weight(&req.props, req.dataset, 0.7 * cfg.tilt_scale),
        );
        !rng.gen_bool(p_fn)
    } else {
        let p_fp = clamp_p(
            cfg.error_scale
                * positive_fraction(0.6, t)
                * complexity_weight(&req.props, req.dataset, 1.3 * cfg.tilt_scale),
        );
        rng.gen_bool(p_fp)
    };

    if !says_error {
        return pick(rng, &[
            "No, the query does not contain any syntax errors. It follows standard SQL structure and all clauses are well-formed.",
            "After reviewing the statement, I don't see a syntax error here; the query looks valid.",
            "The query appears to be syntactically correct — no errors detected.",
            "Note that all clauses are well-formed; the query looks valid to me.",
            "None of the usual failure modes apply here — no errors detected.",
        ]);
    }

    // pick the reported type
    let tt = syntax_type_target(id, req.dataset);
    let p_type_correct = tt.recall.clamp(0.05, 0.999);
    let reported = match error_type {
        Some(actual) if rng.gen_bool(p_type_correct) => actual.to_string(),
        Some(actual) => confuse_syntax_type(actual, rng),
        None => random_syntax_type(rng), // false positive invents a type
    };
    let description = syntax_type_description(&reported);
    pick_fmt(rng, &[
        format!("Yes, the query contains a syntax error. Specifically, {description} (error type: {reported})."),
        format!("Yes — there is a problem with this query: {description}. I would classify this as a {reported} error."),
        format!("I believe the query has an error. {description}. This corresponds to the {reported} category."),
        format!("Notably, the query contains a syntax error: {description} (error type: {reported})."),
    ])
}

fn confuse_syntax_type(actual: &str, rng: &mut StdRng) -> String {
    // confusion kernel: semantically adjacent categories
    let near: &[&str] = match actual {
        "aggr-attr" => &["aggr-having"],
        "aggr-having" => &["aggr-attr"],
        "nested-mismatch" => &["condition-mismatch"],
        "condition-mismatch" => &["nested-mismatch", "value-change"],
        "alias-undefined" => &["alias-ambiguous"],
        "alias-ambiguous" => &["alias-undefined"],
        _ => &[],
    };
    if !near.is_empty() && rng.gen_bool(0.7) {
        (*near.choose(rng).expect("non-empty")).to_string() // lint:allow: drawn from a non-empty set
    } else {
        random_syntax_type(rng)
    }
}

fn random_syntax_type(rng: &mut StdRng) -> String {
    (*[
        "aggr-attr",
        "aggr-having",
        "nested-mismatch",
        "condition-mismatch",
        "alias-undefined",
        "alias-ambiguous",
    ]
    .choose(rng)
    .expect("non-empty")) // lint:allow: drawn from a non-empty set
    .to_string()
}

fn syntax_type_description(label: &str) -> &'static str {
    match label {
        "aggr-attr" => "aggregate functions are used alongside non-aggregated columns without a GROUP BY clause",
        "aggr-having" => "the HAVING clause filters a column that is neither aggregated nor grouped; a WHERE clause should be used instead",
        "nested-mismatch" => "a subquery used in a scalar comparison may return more than one row",
        "condition-mismatch" => "a condition compares values of incompatible types, such as a numeric column against a string",
        "alias-undefined" => "an alias or table qualifier is referenced but never defined in the FROM clause",
        "alias-ambiguous" => "a column reference is ambiguous because the column exists in more than one joined table",
        _ => "the query structure is invalid",
    }
}

// ---------------- missing token ----------------

#[allow(clippy::too_many_arguments)]
fn respond_token(
    id: ModelId,
    cfg: SimConfig,
    req: &Request,
    missing: bool,
    token_type: Option<&str>,
    removed: Option<&str>,
    position: Option<usize>,
    word_count: usize,
    rng: &mut StdRng,
) -> String {
    let t = miss_token_target(id, req.dataset);
    let says_missing = if missing {
        let w = if cfg.subtype_weights {
            token_type
                .map(|l| token_subtype_weight(req.dataset, l))
                .unwrap_or(1.0)
                / token_subtype_mean(req.dataset)
        } else {
            1.0
        };
        let p_fn = clamp_p(
            cfg.error_scale
                * (1.0 - t.recall)
                * w
                * complexity_weight(&req.props, req.dataset, 0.8 * cfg.tilt_scale)
                * structural_weight(&req.props, req.dataset, 0.3 * cfg.tilt_scale),
        );
        !rng.gen_bool(p_fn)
    } else {
        let p_fp = clamp_p(
            cfg.error_scale
                * positive_fraction(0.6, t)
                * complexity_weight(&req.props, req.dataset, 1.0 * cfg.tilt_scale),
        );
        rng.gen_bool(p_fp)
    };

    if !says_missing {
        return pick(rng, &[
            "No, the query has no syntax errors and no missing words; it is complete as written.",
            "The statement appears complete — I do not detect any missing token.",
            "No — nothing seems to be missing from this query.",
            "Note: nothing seems to be missing from this query; it reads as complete.",
        ]);
    }

    let tt = miss_token_type_target(id, req.dataset);
    let p_type_correct = tt.recall.clamp(0.05, 0.999);
    let reported_type = match token_type {
        Some(actual) if rng.gen_bool(p_type_correct) => actual.to_string(),
        Some(actual) => confuse_token_type(actual, rng),
        None => random_token_type(rng),
    };
    // the guessed word: the true one when the type was right (mostly)
    let guessed_word = match removed {
        Some(w) if reported_type == token_type.unwrap_or("") && rng.gen_bool(0.9) => w.to_string(),
        _ => plausible_word(&reported_type, rng),
    };
    // location: exact with prob HR, else offset with exponential magnitude
    let (mae, hr) = miss_token_loc_target(id, req.dataset);
    let true_pos = position.unwrap_or(0);
    let reported_pos = if rng.gen_bool(hr.clamp(0.0, 1.0)) {
        true_pos
    } else {
        let mean = (mae / (1.0 - hr).max(0.05)).max(1.0)
            * (word_count as f64 / req.dataset.typical_word_count()).clamp(0.4, 3.0);
        let mag = sample_exponential(rng, mean).round().max(1.0) as i64;
        let sign = if rng.gen_bool(0.5) { 1 } else { -1 };
        (true_pos as i64 + sign * mag).clamp(0, word_count.saturating_sub(1) as i64) as usize
    };
    pick_fmt(rng, &[
        format!("Yes, the query has a syntax error — a word is missing. The missing word is a {reported_type}; most likely \"{guessed_word}\". It should appear at word position {reported_pos}."),
        format!("Yes. Something is missing here: a {reported_type} token (probably \"{guessed_word}\") around position {reported_pos} in the statement."),
        format!("Yes — the query is incomplete. Missing token type: {reported_type}. Missing word: {guessed_word}. Position: {reported_pos}."),
        format!("Notably, a word is missing from this statement. Missing token type: {reported_type}. Missing word: {guessed_word}. Position: {reported_pos}."),
    ])
}

fn confuse_token_type(actual: &str, rng: &mut StdRng) -> String {
    let near: &[&str] = match actual {
        "alias" => &["column", "table"],
        "table" => &["alias", "column"],
        "column" => &["alias", "value"],
        "value" => &["column"],
        "keyword" => &["predicate"],
        "predicate" => &["keyword", "value"],
        _ => &[],
    };
    if !near.is_empty() && rng.gen_bool(0.75) {
        (*near.choose(rng).expect("non-empty")).to_string() // lint:allow: drawn from a non-empty set
    } else {
        random_token_type(rng)
    }
}

fn random_token_type(rng: &mut StdRng) -> String {
    (*["keyword", "table", "column", "value", "alias", "predicate"]
        .choose(rng)
        .expect("non-empty")) // lint:allow: drawn from a non-empty set
    .to_string()
}

fn plausible_word(ty: &str, rng: &mut StdRng) -> String {
    let options: &[&str] = match ty {
        "keyword" => &["FROM", "WHERE", "SELECT", "GROUP", "JOIN"],
        "table" => &["SpecObj", "title", "orders", "stations"],
        "column" => &["id", "name", "plate", "value"],
        "value" => &["100", "0.5", "'high'"],
        "alias" => &["s", "t1", "p"],
        "predicate" => &["x = 1", "z > 0.5"],
        _ => &["token"],
    };
    (*options.choose(rng).expect("non-empty")).to_string() // lint:allow: drawn from a non-empty set
}

fn sample_exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-9..1.0);
    -mean * u.ln()
}

// ---------------- equivalence ----------------

fn respond_equiv(
    id: ModelId,
    cfg: SimConfig,
    req: &Request,
    equivalent: bool,
    transform: &str,
    rng: &mut StdRng,
) -> String {
    let t = equiv_target(id, req.dataset);
    let says_equivalent = if equivalent {
        let p_fn = clamp_p(
            cfg.error_scale
                * (1.0 - t.recall)
                * complexity_weight(&req.props, req.dataset, 0.6 * cfg.tilt_scale),
        );
        !rng.gen_bool(p_fn)
    } else {
        // false positives: wrongly calling modified pairs equivalent —
        // concentrated on value/logic edits and complex queries
        let subtype_w = if cfg.subtype_weights {
            equiv_subtype_weight(transform)
        } else {
            1.0
        };
        let p_fp = clamp_p(
            cfg.error_scale
                * positive_fraction(0.5, t)
                * subtype_w
                * complexity_weight(&req.props, req.dataset, 0.9 * cfg.tilt_scale)
                * structural_weight(&req.props, req.dataset, 0.8 * cfg.tilt_scale),
        );
        rng.gen_bool(p_fp)
    };

    if !says_equivalent {
        return pick(rng, &[
            "No, the two queries are not equivalent — they can produce different results on the same database.",
            "These queries are not equivalent; the transformation changes the result set.",
            "No. Although the queries look similar, they differ semantically and will not always return the same rows.",
            "Note that the pair is not equivalent — the rewrite changes which rows are returned.",
        ]);
    }

    let tt = equiv_type_target(id, req.dataset);
    let p_type_correct = tt.recall.clamp(0.05, 0.999);
    let reported = if equivalent && rng.gen_bool(p_type_correct) {
        transform.to_string()
    } else {
        random_equiv_type(rng)
    };
    let why = equiv_type_description(&reported);
    pick_fmt(rng, &[
        format!("Yes, the two queries are equivalent: {why} (transformation: {reported})."),
        format!("Yes — they produce the same results on any database. The rewrite is a {reported}: {why}."),
        format!("I believe these queries are equivalent. The second query applies a {reported} transformation; {why}."),
        format!("Notably, the queries are equivalent — {why} (transformation: {reported})."),
    ])
}

fn random_equiv_type(rng: &mut StdRng) -> String {
    (*[
        "reorder-conditions",
        "cte",
        "join-nested",
        "swap-subqueries",
        "between-range",
        "in-to-or",
        "demorgan",
        "comparison-flip",
        "alias-rename",
        "derived-table",
    ]
    .choose(rng)
    .expect("non-empty")) // lint:allow: drawn from a non-empty set
    .to_string()
}

fn equiv_type_description(label: &str) -> &'static str {
    match label {
        "reorder-conditions" => "reordering AND-connected conditions does not change which rows satisfy the WHERE clause",
        "cte" => "factoring the query into a common table expression and selecting from it returns the identical result",
        "join-nested" => "the join has been rewritten as an IN subquery over the same join key",
        "swap-subqueries" => "the IN subquery has been rewritten as a correlated EXISTS over the same condition",
        "between-range" => "BETWEEN is shorthand for the closed-range conjunction of two comparisons",
        "in-to-or" => "an IN list is equivalent to the disjunction of the corresponding equality tests",
        "demorgan" => "the predicate was rewritten using De Morgan's laws, preserving its truth table",
        "comparison-flip" => "a comparison was mirrored (operands swapped with the operator reversed)",
        "alias-rename" => "table aliases were renamed consistently, which cannot affect results",
        "derived-table" => "the query was wrapped in a derived table that selects everything from it",
        _ => "the rewrite preserves the result set",
    }
}

// ---------------- performance ----------------

fn respond_perf(
    id: ModelId,
    cfg: SimConfig,
    req: &Request,
    costly: bool,
    rng: &mut StdRng,
) -> String {
    let t = perf_target(id);
    // positive bias: long queries / many columns read as "slow" (Fig 10)
    let length_tilt = complexity_weight(&req.props, req.dataset, 1.1 * cfg.tilt_scale)
        * ((req.props.column_count as f64 + 1.0) / 4.0)
            .ln()
            .clamp(-0.7, 1.0)
            .mul_add(cfg.tilt_scale, 0.0)
            .exp();
    // the SDSS sample's positive (costly) fraction is ~53%, and the cheap
    // (negative) queries are also the *short* ones, so the tilt's mean
    // over negatives sits near 0.55 — fold both in so the aggregate
    // false-positive rate matches the paper's precision target
    let says_costly = if costly {
        let p_fn = clamp_p(cfg.error_scale * (1.0 - t.recall) / length_tilt.max(0.3));
        !rng.gen_bool(p_fn)
    } else {
        let p_fp = clamp_p(cfg.error_scale * positive_fraction(0.53, t) / 0.55 * length_tilt);
        rng.gen_bool(p_fp)
    };
    if says_costly {
        pick(rng, &[
            "Yes, this query will likely take longer than usual to run: it touches large tables and its conditions require scanning many rows.",
            "Yes — given the joins and the number of predicates involved, I would expect this query to be expensive.",
            "This query looks costly; yes, it should take longer than a typical query.",
            "Now, given the scan volume involved, this query looks costly and will take longer than usual.",
        ])
    } else {
        pick(rng, &[
            "No, this query should run quickly — it is selective and touches a limited amount of data.",
            "No; the query is simple enough that it should not take longer than usual.",
            "I would not expect this query to be slow. No.",
            "Note that the query is quite selective; it should run quickly.",
        ])
    }
}

// ---------------- explanation ----------------

/// Per-model explanation quality: probability each key fact is rendered
/// faithfully.
fn explain_quality(id: ModelId) -> f64 {
    match id {
        ModelId::Gpt4 => 0.90,
        ModelId::Gpt35 => 0.74,
        ModelId::Llama3 => 0.70,
        ModelId::MistralAi => 0.73,
        ModelId::Gemini => 0.55,
    }
}

fn respond_explain(id: ModelId, facts: &KeyFacts, sql: &str, rng: &mut StdRng) -> String {
    let q = explain_quality(id);
    let mut parts: Vec<String> = Vec::new();

    // Gemini's Q15-style failure mode: reduce the whole query to counting
    if id == ModelId::Gemini && !facts.aggregates.is_empty() && rng.gen_bool(1.0 - q) {
        let col = facts
            .projected_columns
            .first()
            .cloned()
            .unwrap_or_else(|| "the first".to_string());
        return format!("Counts the occurrences of each unique value in the {col} column.");
    }

    // opening clause: aggregates and/or projected attributes
    let mut what = Vec::new();
    for a in &facts.aggregates {
        what.push(format!("the {a} of rows"));
    }
    // attribute dropping — the paper's Q17 flaw (even GPT4)
    let keep_columns = rng.gen_bool(q);
    if keep_columns {
        for c in &facts.projected_columns {
            what.push(format!("the {c}"));
        }
    }
    if what.is_empty() {
        what.push("the requested information".to_string());
    }
    parts.push(format!("This SQL query retrieves {}", what.join(" and ")));

    // table context — the Q16 flaw (dropping the searched-in table)
    if !facts.tables.is_empty() && rng.gen_bool((q + 0.1).min(1.0)) {
        parts.push(format!("from {}", facts.tables.join(" and ")));
    }

    // filters
    let kept_values: Vec<&String> = facts
        .filter_values
        .iter()
        .filter(|_| rng.gen_bool((q + 0.05).min(1.0)))
        .collect();
    if !kept_values.is_empty() {
        parts.push(format!(
            "where the conditions involve {}",
            kept_values
                .iter()
                .map(|v| v.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }

    // set operation
    if let Some(word) = &facts.set_op {
        if rng.gen_bool(q) {
            parts.push(format!("considering rows satisfying {word} branches"));
        }
    }

    // superlative — the Q18 ASC/DESC flaw
    if let Some((word, col)) = &facts.superlative {
        let correct = rng.gen_bool(q);
        let rendered = if correct {
            word.clone()
        } else {
            // misread ORDER BY direction: least <-> greatest
            if word == "least" {
                "greatest".to_string()
            } else {
                "least".to_string()
            }
        };
        // phrase "greatest acceleration" as "fastest" style confusion
        let phrase = match (rendered.as_str(), correct) {
            ("greatest", false) => format!("with the fastest {col}"),
            _ => format!("with the {rendered} {col}"),
        };
        parts.push(phrase);
    }

    let _ = sql;
    let mut text = parts.join(" ");
    text.push('.');
    text
}

// ---------------- dialect translation ----------------

fn respond_translate(
    id: ModelId,
    cfg: SimConfig,
    req: &Request,
    gold_sql: &str,
    target: &str,
    rng: &mut StdRng,
) -> String {
    let acc = translate_target(id, req.dataset);
    let p_err = clamp_p(
        cfg.error_scale
            * (1.0 - acc)
            * complexity_weight(&req.props, req.dataset, 0.8 * cfg.tilt_scale),
    );
    if !rng.gen_bool(p_err) {
        // correct: the gold translation, wrapped in one of several verbose
        // framings the extractor must see through
        return pick_fmt(rng, &[
            format!("Here is the query translated to {target}:\n```sql\n{gold_sql}\n```"),
            format!("The {target} version of the query is:\n{gold_sql}"),
            format!("Translated into the {target} dialect, the query reads:\n```\n{gold_sql};\n```\nAll identifiers were kept as-is."),
        ]);
    }
    // failure mode: a subtly wrong translation (a DISTINCT slipped in —
    // realistic semantic drift). Like every other simulated phrasing the
    // response stays extractable; only *transport* faults produce
    // review-bucket responses.
    let wrong = gold_sql.replacen("SELECT", "SELECT DISTINCT", 1);
    pick_fmt(
        rng,
        &[
            format!("In {target} this would be:\n```sql\n{wrong}\n```"),
            format!("The translated query is:\n{wrong}"),
            format!("After adjusting it for {target}, the query becomes:\n```\n{wrong};\n```"),
        ],
    )
}

// ---------------- phrasing helpers ----------------

fn pick(rng: &mut StdRng, options: &[&str]) -> String {
    (*options.choose(rng).expect("non-empty")).to_string() // lint:allow: drawn from a non-empty set
}

fn pick_fmt(rng: &mut StdRng, options: &[String]) -> String {
    options.choose(rng).expect("non-empty").clone() // lint:allow: drawn from a non-empty set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{GroundTruth, Request, Task};

    fn props(wc: usize) -> QueryProps {
        QueryProps {
            char_count: wc * 6,
            word_count: wc,
            query_type: "SELECT".into(),
            table_count: 2,
            join_count: 1,
            column_count: 3,
            function_count: 0,
            predicate_count: 2,
            nestedness: 0,
            aggregate: false,
        }
    }

    fn syntax_request(id: &str, has_error: bool, wc: usize) -> Request {
        Request {
            task: Task::Syntax,
            dataset: DatasetId::Sdss,
            example_id: id.to_string(),
            prompt: "Does the following query contain any syntax errors? …".into(),
            truth: GroundTruth::Syntax {
                has_error,
                error_type: has_error.then(|| "aggr-attr".to_string()),
            },
            props: props(wc),
        }
    }

    #[test]
    fn responses_are_deterministic() {
        let m = SimulatedModel::new(ModelId::Gpt35);
        let req = syntax_request("x-1", true, 40);
        assert_eq!(m.respond(&req), m.respond(&req));
    }

    #[test]
    fn different_models_can_disagree() {
        let req = syntax_request("x-2", true, 40);
        let answers: Vec<String> = SimulatedModel::all()
            .iter()
            .map(|m| m.respond(&req))
            .collect();
        // at least the phrasing differs across five models
        let mut uniq = answers.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() >= 2);
    }

    #[test]
    fn gpt4_recall_beats_gemini_on_syntax() {
        // aggregate behavior over many examples approximates the targets
        let g4 = SimulatedModel::new(ModelId::Gpt4);
        let gm = SimulatedModel::new(ModelId::Gemini);
        let mut g4_hits = 0;
        let mut gm_hits = 0;
        let n = 400;
        for i in 0..n {
            let req = syntax_request(&format!("s-{i}"), true, 40);
            if g4.respond(&req).starts_with("Yes")
                || g4.respond(&req).contains("I believe the query has")
            {
                g4_hits += 1;
            }
            let r = gm.respond(&req);
            if r.contains("Yes") || r.contains("I believe the query has") {
                gm_hits += 1;
            }
        }
        assert!(
            g4_hits > gm_hits + 40,
            "GPT4 {g4_hits}/{n} vs Gemini {gm_hits}/{n}"
        );
    }

    #[test]
    fn longer_queries_fail_more() {
        let m = SimulatedModel::new(ModelId::Llama3);
        let mut short_miss = 0;
        let mut long_miss = 0;
        let n = 500;
        for i in 0..n {
            let short = syntax_request(&format!("sh-{i}"), true, 15);
            let long = syntax_request(&format!("lo-{i}"), true, 150);
            if short.props.word_count == 15 && m.respond(&short).starts_with("No") {
                short_miss += 1;
            }
            if m.respond(&long).starts_with("No") {
                long_miss += 1;
            }
        }
        assert!(
            long_miss > short_miss,
            "long {long_miss} vs short {short_miss}"
        );
    }

    #[test]
    fn translate_responses_embed_gold_for_strong_models() {
        let m = SimulatedModel::new(ModelId::Gpt4);
        let gold = "SELECT plate FROM SpecObj WHERE z > 0.5 LIMIT 5";
        let mut exact = 0;
        for i in 0..200 {
            let req = Request {
                task: Task::Translate,
                dataset: DatasetId::Sdss,
                example_id: format!("t-{i}"),
                prompt: "Translate…".into(),
                truth: GroundTruth::Translate {
                    gold_sql: gold.to_string(),
                    target: "postgres".to_string(),
                },
                props: props(10),
            };
            let r = m.respond(&req);
            assert_eq!(r, m.respond(&req), "deterministic");
            if r.contains(gold) {
                exact += 1;
            }
        }
        // GPT4's target accuracy on SDSS is 0.92; short queries tilt even higher
        assert!(exact > 150, "gold embedded only {exact}/200 times");
    }

    #[test]
    fn explanation_includes_tables_for_strong_models() {
        let facts = KeyFacts {
            tables: vec!["tryout".into()],
            projected_columns: vec!["cName".into()],
            aggregates: vec!["number".into()],
            filter_values: vec![],
            superlative: None,
            set_op: None,
        };
        let m = SimulatedModel::new(ModelId::Gpt4);
        let mut mentions = 0;
        for i in 0..100 {
            let req = Request {
                task: Task::Explain,
                dataset: DatasetId::Spider,
                example_id: format!("e-{i}"),
                prompt: String::new(),
                truth: GroundTruth::Explain {
                    reference: String::new(),
                    facts: facts.clone(),
                    sql: "SELECT count(*), cName FROM tryout GROUP BY cName".into(),
                },
                props: props(12),
            };
            if m.respond(&req).contains("tryout") {
                mentions += 1;
            }
        }
        assert!(
            mentions > 80,
            "GPT4 mentioned the table only {mentions}/100 times"
        );
    }
}
