//! # squ-llm — language-model interface, calibrated simulators, prompts,
//! and response extraction
//!
//! The benchmark's model layer. [`LanguageModel`] is the narrow interface
//! (prompt in, verbose text out); the five paper models ship as
//! **calibrated behavioral simulators** ([`SimulatedModel`]) whose error
//! rates are digitized from the paper's result tables and modulated by
//! subtype difficulty and query complexity — so the downstream pipeline
//! (prompting, free-text parsing, metrics, failure slicing) is exercised
//! end-to-end and reproduces the paper's result *shape*.
//!
//! A real API-backed model would implement the same trait and simply
//! ignore [`Request::truth`].

#![warn(missing_docs)]

mod extract;
mod model;
pub mod profiles;
pub mod prompts;
mod run;
mod simulate;
mod transport;

pub use extract::{
    extract_binary, extract_label, extract_position, extract_sql, extract_word, Extracted,
};
pub use model::{GroundTruth, LanguageModel, Request, Task};
pub use profiles::{DatasetId, ModelId};
pub use run::{
    run_task, run_task_direct, translation_matches_gold, EquivOutcome, ExplainOutcome, PerfOutcome,
    RunTask, SyntaxOutcome, TokenOutcome, TranslateOutcome,
};
pub use simulate::{SimConfig, SimulatedModel};
pub use transport::{
    CallRecord, DirectClient, FaultKind, FaultProfile, ModelClient, RetryPolicy, Transport,
};
