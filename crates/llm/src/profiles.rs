//! Calibration profiles for the behavioral LLM simulators.
//!
//! The numbers below are digitized from the paper's result tables
//! (Tables 3–7) and failure-breakdown figures (Figures 7 and 9). A profile
//! gives the *target* precision/recall (or MAE/hit-rate) for one
//! (model, task, dataset) cell; the simulator converts targets into
//! per-example error probabilities, modulated by subtype difficulty and
//! query complexity so that the paper's slicing analyses (Figures 6, 8,
//! 10–12) emerge from the same mechanism rather than being hard-coded.

use serde::{Deserialize, Serialize};

/// The five evaluated models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelId {
    /// OpenAI GPT-4.
    Gpt4,
    /// OpenAI GPT-3.5.
    Gpt35,
    /// Meta Llama 3.
    Llama3,
    /// Mistral AI.
    MistralAi,
    /// Google Gemini.
    Gemini,
}

impl ModelId {
    /// All five models, in the paper's table order.
    pub const ALL: [ModelId; 5] = [
        ModelId::Gpt4,
        ModelId::Gpt35,
        ModelId::Llama3,
        ModelId::MistralAi,
        ModelId::Gemini,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ModelId::Gpt4 => "GPT4",
            ModelId::Gpt35 => "GPT3.5",
            ModelId::Llama3 => "Llama3",
            ModelId::MistralAi => "MistralAI",
            ModelId::Gemini => "Gemini",
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Datasets the classification tasks run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// SDSS.
    Sdss,
    /// SQLShare.
    SqlShare,
    /// Join-Order.
    JoinOrder,
    /// Spider (explanation task only).
    Spider,
}

impl DatasetId {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::Sdss => "SDSS",
            DatasetId::SqlShare => "SQLShare",
            DatasetId::JoinOrder => "Join-Order",
            DatasetId::Spider => "Spider",
        }
    }

    /// Typical query length (words) of the sampled dataset — the center of
    /// the complexity tilt.
    pub fn typical_word_count(&self) -> f64 {
        match self {
            DatasetId::Sdss => 36.0,
            DatasetId::SqlShare => 21.0,
            DatasetId::JoinOrder => 95.0,
            DatasetId::Spider => 22.0,
        }
    }

    /// Typical WHERE-predicate count — the center of the structural tilt.
    pub fn typical_predicates(&self) -> f64 {
        match self {
            DatasetId::Sdss => 4.0,
            DatasetId::SqlShare => 2.0,
            DatasetId::JoinOrder => 12.0,
            DatasetId::Spider => 2.0,
        }
    }

    /// Typical table count — the center of the structural tilt.
    pub fn typical_tables(&self) -> f64 {
        match self {
            DatasetId::Sdss => 2.0,
            DatasetId::SqlShare => 1.6,
            DatasetId::JoinOrder => 7.0,
            DatasetId::Spider => 1.8,
        }
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Target precision/recall for one binary-task cell.
#[derive(Debug, Clone, Copy)]
pub struct PrTarget {
    /// Target precision.
    pub precision: f64,
    /// Target recall.
    pub recall: f64,
}

const fn pr(precision: f64, recall: f64) -> PrTarget {
    PrTarget { precision, recall }
}

/// Index helper: models in paper order × datasets (SDSS, SQLShare, JOB).
fn cell<T: Copy>(table: &[[T; 3]; 5], model: ModelId, ds: DatasetId) -> T {
    let mi = ModelId::ALL
        .iter()
        .position(|m| *m == model)
        .expect("model in ALL"); // lint:allow: ids are enumerated from ALL
    let di = match ds {
        DatasetId::Sdss => 0,
        DatasetId::SqlShare => 1,
        DatasetId::JoinOrder => 2,
        DatasetId::Spider => 1, // Spider not used for classification; map benignly
    };
    table[mi][di]
}

/// Table 3 (top): `syntax_error` precision/recall.
pub fn syntax_error_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.98, 0.95), pr(0.94, 0.93), pr(0.95, 0.91)], // GPT4
        [pr(0.94, 0.85), pr(0.91, 0.86), pr(0.93, 0.81)], // GPT3.5
        [pr(0.95, 0.76), pr(0.92, 0.81), pr(0.95, 0.65)], // Llama3
        [pr(0.93, 0.91), pr(0.92, 0.91), pr(0.85, 0.94)], // MistralAI
        [pr(0.94, 0.70), pr(0.97, 0.53), pr(0.84, 0.61)], // Gemini
    ];
    cell(&T, model, ds)
}

/// Table 3 (bottom): `syntax_error_type` weighted precision/recall.
pub fn syntax_type_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.96, 0.95), pr(0.89, 0.88), pr(0.90, 0.89)],
        [pr(0.87, 0.85), pr(0.85, 0.82), pr(0.83, 0.78)],
        [pr(0.83, 0.79), pr(0.79, 0.76), pr(0.78, 0.67)],
        [pr(0.90, 0.88), pr(0.81, 0.80), pr(0.86, 0.81)],
        [pr(0.81, 0.74), pr(0.73, 0.60), pr(0.68, 0.53)],
    ];
    cell(&T, model, ds)
}

/// Table 4 (top): `miss_token` precision/recall.
pub fn miss_token_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.99, 0.97), pr(0.98, 0.96), pr(1.00, 0.97)],
        [pr(0.92, 0.92), pr(0.97, 0.88), pr(0.98, 0.94)],
        [pr(0.96, 0.94), pr(0.91, 0.92), pr(0.97, 0.94)],
        [pr(0.99, 0.86), pr(0.96, 0.87), pr(1.00, 0.94)],
        [pr(0.99, 0.76), pr(0.98, 0.68), pr(0.97, 0.69)],
    ];
    cell(&T, model, ds)
}

/// Table 4 (bottom): `miss_token_type` weighted precision/recall.
pub fn miss_token_type_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.94, 0.94), pr(0.91, 0.89), pr(0.98, 0.97)],
        [pr(0.76, 0.75), pr(0.75, 0.71), pr(0.84, 0.82)],
        [pr(0.88, 0.85), pr(0.78, 0.69), pr(0.87, 0.82)],
        [pr(0.89, 0.85), pr(0.82, 0.75), pr(0.93, 0.88)],
        [pr(0.63, 0.63), pr(0.75, 0.53), pr(0.44, 0.60)],
    ];
    cell(&T, model, ds)
}

/// Table 5: `miss_token_loc` (MAE, hit-rate) targets.
pub fn miss_token_loc_target(model: ModelId, ds: DatasetId) -> (f64, f64) {
    const T: [[(f64, f64); 3]; 5] = [
        [(4.69, 0.56), (3.96, 0.63), (3.45, 0.57)],
        [(17.71, 0.25), (7.71, 0.42), (14.31, 0.39)],
        [(15.60, 0.33), (7.57, 0.40), (13.11, 0.39)],
        [(18.09, 0.36), (8.58, 0.42), (9.92, 0.40)],
        [(19.78, 0.34), (9.79, 0.38), (20.22, 0.32)],
    ];
    cell(&T, model, ds)
}

/// Table 6: `performance_pred` precision/recall (SDSS only).
pub fn perf_target(model: ModelId) -> PrTarget {
    match model {
        ModelId::Gpt4 => pr(0.88, 0.93),
        ModelId::Gpt35 => pr(0.81, 0.83),
        ModelId::Llama3 => pr(0.76, 0.90),
        ModelId::MistralAi => pr(0.47, 0.90),
        ModelId::Gemini => pr(0.71, 0.73),
    }
}

/// Table 7 (top): `query_equiv` precision/recall.
pub fn equiv_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.98, 1.00), pr(0.97, 1.00), pr(0.91, 1.00)],
        [pr(0.87, 0.99), pr(0.96, 1.00), pr(0.83, 0.99)],
        [pr(0.88, 1.00), pr(0.94, 0.98), pr(0.87, 0.99)],
        [pr(0.95, 0.95), pr(0.95, 0.93), pr(0.86, 0.89)],
        [pr(0.84, 0.97), pr(0.92, 0.99), pr(0.85, 0.96)],
    ];
    cell(&T, model, ds)
}

/// Table 7 (bottom): `query_equiv_type` weighted precision/recall.
pub fn equiv_type_target(model: ModelId, ds: DatasetId) -> PrTarget {
    const T: [[PrTarget; 3]; 5] = [
        [pr(0.99, 0.99), pr(0.98, 0.98), pr(0.95, 0.85)],
        [pr(0.97, 0.91), pr(0.96, 0.92), pr(0.90, 0.78)],
        [pr(0.97, 0.85), pr(0.93, 0.88), pr(0.93, 0.81)],
        [pr(0.85, 0.76), pr(0.92, 0.88), pr(0.84, 0.68)],
        [pr(0.86, 0.72), pr(0.91, 0.85), pr(0.87, 0.77)],
    ];
    cell(&T, model, ds)
}

/// Figure 7: relative difficulty of each syntax-error type per dataset —
/// a multiplier on the false-negative probability. Type mismatches are
/// hardest in SDSS and Join-Order; ambiguous aliases in SQLShare.
pub fn syntax_subtype_weight(ds: DatasetId, label: &str) -> f64 {
    match ds {
        DatasetId::Sdss | DatasetId::Spider => match label {
            "nested-mismatch" => 1.9,
            "condition-mismatch" => 1.7,
            "aggr-having" => 1.0,
            "aggr-attr" => 0.8,
            "alias-undefined" => 0.6,
            "alias-ambiguous" => 0.9,
            _ => 1.0,
        },
        DatasetId::SqlShare => match label {
            "alias-ambiguous" => 2.0,
            "alias-undefined" => 1.3,
            "nested-mismatch" => 1.1,
            "condition-mismatch" => 1.0,
            "aggr-having" => 0.8,
            "aggr-attr" => 0.7,
            _ => 1.0,
        },
        DatasetId::JoinOrder => match label {
            "nested-mismatch" => 2.1,
            "condition-mismatch" => 1.3,
            "alias-ambiguous" => 1.0,
            "alias-undefined" => 0.8,
            "aggr-having" => 0.8,
            "aggr-attr" => 0.7,
            _ => 1.0,
        },
    }
}

/// Figure 9: relative difficulty of each missing-token type per dataset —
/// keywords hardest in SDSS; aliases and tables in SQLShare; flat in
/// Join-Order.
pub fn token_subtype_weight(ds: DatasetId, label: &str) -> f64 {
    match ds {
        DatasetId::Sdss | DatasetId::Spider => match label {
            "keyword" => 2.0,
            "predicate" => 1.2,
            "column" => 1.0,
            "value" => 0.9,
            "table" => 0.8,
            "alias" => 0.8,
            _ => 1.0,
        },
        DatasetId::SqlShare => match label {
            "alias" => 1.9,
            "table" => 1.7,
            "column" => 1.1,
            "keyword" => 1.0,
            "predicate" => 0.9,
            "value" => 0.7,
            _ => 1.0,
        },
        DatasetId::JoinOrder => 1.0_f64.max(1.0),
    }
}

/// Mean of the syntax subtype weights under the benchmark's uniform type
/// assignment — simulators divide by this so the weights redistribute
/// failures without shifting the aggregate recall off its target.
pub fn syntax_subtype_mean(ds: DatasetId) -> f64 {
    let labels = [
        "aggr-attr",
        "aggr-having",
        "nested-mismatch",
        "condition-mismatch",
        "alias-undefined",
        "alias-ambiguous",
    ];
    labels
        .iter()
        .map(|l| syntax_subtype_weight(ds, l))
        .sum::<f64>()
        / labels.len() as f64
}

/// Mean of the token subtype weights (see [`syntax_subtype_mean`]).
pub fn token_subtype_mean(ds: DatasetId) -> f64 {
    let labels = ["keyword", "table", "column", "value", "alias", "predicate"];
    labels
        .iter()
        .map(|l| token_subtype_weight(ds, l))
        .sum::<f64>()
        / labels.len() as f64
}

/// Extension task (not in the paper): `dialect_translate` exact-match
/// accuracy targets, set consistent with each model's relative strength
/// on the other syntactic tasks (GPT4 strongest; Gemini weakest; the
/// long Join-Order queries hardest to translate without drift).
pub fn translate_target(model: ModelId, ds: DatasetId) -> f64 {
    const T: [[f64; 3]; 5] = [
        [0.92, 0.94, 0.88], // GPT4
        [0.80, 0.84, 0.72], // GPT3.5
        [0.76, 0.80, 0.68], // Llama3
        [0.82, 0.85, 0.74], // MistralAI
        [0.66, 0.72, 0.58], // Gemini
    ];
    cell(&T, model, ds)
}

/// §4.4: non-equivalent pairs that modify condition values/connectives are
/// the ones models wrongly judge equivalent — a multiplier on the
/// false-positive probability per transform type.
pub fn equiv_subtype_weight(label: &str) -> f64 {
    match label {
        "value-change" => 2.0,
        "logical-conditions" => 1.8,
        "comparison-direction" => 1.6,
        "where-drop" => 1.2,
        "distinct-change" => 1.2,
        "agg-function" => 0.8,
        "change-join-condition" => 0.7,
        "projection-change" => 0.4,
        _ => 1.0,
    }
}

/// Positive-class fraction assumed when converting (precision, recall)
/// targets into a false-positive rate: `fp_rate = r·(P/N)·(1−p)/p`.
pub fn positive_fraction(task_pos_frac: f64, target: PrTarget) -> f64 {
    let PrTarget { precision, recall } = target;
    let ratio = task_pos_frac / (1.0 - task_pos_frac);
    (recall * ratio * (1.0 - precision) / precision).clamp(0.0, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_dominates_syntax_error_f1() {
        for ds in [DatasetId::Sdss, DatasetId::SqlShare, DatasetId::JoinOrder] {
            let g4 = syntax_error_target(ModelId::Gpt4, ds);
            let f1_g4 = 2.0 * g4.precision * g4.recall / (g4.precision + g4.recall);
            for m in [
                ModelId::Gpt35,
                ModelId::Llama3,
                ModelId::MistralAi,
                ModelId::Gemini,
            ] {
                let t = syntax_error_target(m, ds);
                let f1 = 2.0 * t.precision * t.recall / (t.precision + t.recall);
                assert!(f1_g4 >= f1, "{m} beats GPT4 on {ds}");
            }
        }
    }

    #[test]
    fn recall_below_precision_for_syntax_tasks() {
        // the paper's conservative-detection observation
        for m in ModelId::ALL {
            for ds in [DatasetId::Sdss, DatasetId::SqlShare, DatasetId::JoinOrder] {
                let t = syntax_error_target(m, ds);
                assert!(
                    t.recall <= t.precision + 0.1,
                    "{m}/{ds}: recall {} >> precision {}",
                    t.recall,
                    t.precision
                );
            }
        }
    }

    #[test]
    fn recall_above_precision_for_perf_and_equiv() {
        // the paper's positive-bias observation
        for m in ModelId::ALL {
            let t = perf_target(m);
            assert!(t.recall >= t.precision, "{m}: perf should be recall-biased");
            let e = equiv_target(m, DatasetId::Sdss);
            assert!(
                e.recall >= e.precision - 0.01,
                "{m}: equiv should be recall-biased"
            );
        }
    }

    #[test]
    fn translate_targets_order_models() {
        for ds in [DatasetId::Sdss, DatasetId::SqlShare, DatasetId::JoinOrder] {
            let g4 = translate_target(ModelId::Gpt4, ds);
            for m in [
                ModelId::Gpt35,
                ModelId::Llama3,
                ModelId::MistralAi,
                ModelId::Gemini,
            ] {
                assert!(g4 > translate_target(m, ds), "{m} beats GPT4 on {ds}");
            }
            assert!(translate_target(ModelId::Gemini, ds) < translate_target(ModelId::Gpt35, ds));
        }
    }

    #[test]
    fn fp_rate_formula_consistent() {
        // precision 0.9, recall 0.9, balanced classes → fp_rate = 0.1
        let rate = positive_fraction(0.5, pr(0.9, 0.9));
        assert!((rate - 0.1).abs() < 1e-12);
        // perfect precision → no false positives
        assert_eq!(positive_fraction(0.5, pr(1.0, 0.9)), 0.0);
    }

    #[test]
    fn subtype_weights_reflect_figures() {
        // Fig 7: nested/condition mismatch hardest in SDSS
        assert!(syntax_subtype_weight(DatasetId::Sdss, "nested-mismatch") > 1.5);
        // Fig 7b: ambiguous alias hardest in SQLShare
        assert!(
            syntax_subtype_weight(DatasetId::SqlShare, "alias-ambiguous")
                > syntax_subtype_weight(DatasetId::SqlShare, "aggr-attr")
        );
        // Fig 9: keyword hardest in SDSS; alias/table in SQLShare
        assert!(token_subtype_weight(DatasetId::Sdss, "keyword") >= 2.0);
        assert!(token_subtype_weight(DatasetId::SqlShare, "alias") > 1.5);
        // JOB flat
        assert_eq!(token_subtype_weight(DatasetId::JoinOrder, "keyword"), 1.0);
    }
}
