//! Response post-processing (paper §3.4, "Handling LLM Output").
//!
//! Models answer in verbose free text; this module extracts the labels the
//! evaluation needs. Extraction is pattern-based with a `NeedsReview`
//! escape hatch for unparseable responses — the automated-scripts-plus-
//! manual-checks pipeline of the paper, with the manual bucket made
//! explicit.
//!
//! Matching is word-boundary aware throughout: a leading "Note…" is not a
//! *no* answer, the label `aggr` does not fire inside `aggr-having`, and
//! the `category` tag does not fire inside "categorical". Ambiguous
//! responses (two labels tied at the same position) go to `NeedsReview`
//! rather than being resolved by iteration order.

use serde::{Deserialize, Serialize};

/// Result of extracting a yes/no answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extracted<T> {
    /// A label was extracted automatically.
    Value(T),
    /// The response did not match any known pattern; in the paper this
    /// goes to manual review.
    NeedsReview,
}

impl<T> Extracted<T> {
    /// The extracted value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            Extracted::Value(v) => Some(v),
            Extracted::NeedsReview => None,
        }
    }
}

/// Word characters for boundary checks: alphanumerics plus the `-`/`_`
/// that appear inside benchmark labels (`aggr-having`, `latency_spike`).
fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_'
}

/// Every word-boundary occurrence of `needle` in `haystack`.
///
/// Both sides are expected pre-lowercased. A hit requires the characters
/// on both sides of the match to be non-word bytes (or the string edge),
/// so `aggr` does not match inside `aggr-having` and `category` does not
/// match inside `categorical`. Multi-byte UTF-8 neighbours count as
/// boundaries.
fn word_find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    if needle.is_empty() {
        return out;
    }
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(i) = haystack[from..].find(needle) {
        let at = from + i;
        let end = at + needle.len();
        let before_ok = at == 0 || !is_word_byte(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_word_byte(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = end.max(at + 1);
    }
    out
}

/// First word-boundary occurrence of `needle` in `haystack` (pre-lowered).
fn word_find(haystack: &str, needle: &str) -> Option<usize> {
    word_find_all(haystack, needle).first().copied()
}

/// The first word of the response: the leading run of word characters,
/// skipping any opening punctuation or whitespace.
fn leading_word(lower: &str) -> &str {
    let rest = lower.trim_start_matches(|c: char| !c.is_ascii_alphanumeric());
    let end = rest
        .bytes()
        .position(|b| !is_word_byte(b))
        .unwrap_or(rest.len());
    &rest[..end]
}

/// Extract a binary yes/no decision from a verbose response.
///
/// Handles leading "Yes"/"No" (as whole words only — "Note…", "Now…",
/// "None…", "Notably…" are *not* negative answers), hedged forms
/// ("I believe …"), and characteristic affirmative/negative phrasings.
pub fn extract_binary(text: &str) -> Extracted<bool> {
    let lower = text.to_lowercase();
    // direct leading answer, whole-word
    match leading_word(&lower) {
        "yes" => return Extracted::Value(true),
        "no" => return Extracted::Value(false),
        _ => {}
    }
    // negative idioms first (a "no" answer often embeds positive words
    // like "errors" in "does not contain any syntax errors")
    const NEGATIVE: [&str; 10] = [
        "does not contain",
        "no errors detected",
        "not equivalent",
        "should run quickly",
        "should not take longer",
        "would not expect",
        "nothing seems to be missing",
        "do not detect",
        "don't see a syntax error",
        "looks valid",
    ];
    if NEGATIVE.iter().any(|p| lower.contains(p)) {
        return Extracted::Value(false);
    }
    const POSITIVE: [&str; 7] = [
        "contains a syntax error",
        "has an error",
        "is missing",
        "are equivalent",
        "queries are equivalent",
        "take longer",
        "looks costly",
    ];
    if POSITIVE.iter().any(|p| lower.contains(p)) {
        return Extracted::Value(true);
    }
    Extracted::NeedsReview
}

/// Extract a class label from a response given the closed label set.
///
/// Labels match only at word boundaries (`aggr` never wins inside
/// `aggr-having`). The label mentioned after a classification tag
/// ("error type: …", "category: …", "transformation: …") wins, else the
/// last mention anywhere. When two distinct labels are tied at the exact
/// same position the response is ambiguous and goes to `NeedsReview`.
pub fn extract_label(text: &str, labels: &[&str]) -> Extracted<String> {
    let lower = text.to_lowercase();
    let lowered: Vec<(String, &str)> = labels.iter().map(|l| (l.to_lowercase(), *l)).collect();
    // tagged forms; the bare "category" tag is word-bounded so it does
    // not fire inside "categorical"
    for tag in [
        "error type:",
        "transformation:",
        "missing token type:",
        "category",
    ] {
        let tag_word = tag.trim_end_matches(':');
        if let Some(pos) = word_find(&lower, tag_word) {
            let rest = &lower[pos..];
            let hits: Vec<(usize, &str)> = lowered
                .iter()
                .filter_map(|(ll, orig)| word_find(rest, ll).map(|i| (i, *orig)))
                .collect();
            if let Some(best) = resolve_at(&hits, |a, b| a < b) {
                return best;
            }
        }
    }
    // fall back: last word-boundary mention anywhere
    let hits: Vec<(usize, &str)> = lowered
        .iter()
        .filter_map(|(ll, orig)| word_find_all(&lower, ll).last().map(|i| (*i, *orig)))
        .collect();
    resolve_at(&hits, |a, b| a > b).unwrap_or(Extracted::NeedsReview)
}

/// Pick the hit whose position wins under `prefer` (strictly earlier for
/// tagged matches, strictly later for the fallback). Distinct labels tied
/// at the winning position are ambiguous → `NeedsReview`. `None` when
/// there are no hits at all (so tagged search can fall through).
fn resolve_at(
    hits: &[(usize, &str)],
    prefer: impl Fn(usize, usize) -> bool,
) -> Option<Extracted<String>> {
    let (best_pos, best_label) = *hits
        .iter()
        .reduce(|a, b| if prefer(b.0, a.0) { b } else { a })?;
    let tied = hits.iter().any(|(p, l)| *p == best_pos && *l != best_label);
    Some(if tied {
        Extracted::NeedsReview
    } else {
        Extracted::Value(best_label.to_string())
    })
}

/// Extract the predicted word position from a missing-token response.
pub fn extract_position(text: &str) -> Extracted<usize> {
    let lower = text.to_lowercase();
    for tag in ["position:", "position ", "word position "] {
        if let Some(pos) = lower.find(tag) {
            let rest = &lower[pos + tag.len()..];
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(v) = digits.parse::<usize>() {
                return Extracted::Value(v);
            }
        }
    }
    Extracted::NeedsReview
}

/// Case-insensitive (ASCII) byte position of `needle` in `text`.
fn find_ci(text: &str, needle: &str) -> Option<usize> {
    let n = needle.len();
    if n == 0 || text.len() < n {
        return None;
    }
    text.as_bytes()
        .windows(n)
        .position(|w| w.eq_ignore_ascii_case(needle.as_bytes()))
}

/// Case-insensitive (ASCII) containment.
fn contains_ci(text: &str, needle: &str) -> bool {
    find_ci(text, needle).is_some()
}

/// Quote styles the word extractor accepts: ASCII, typographic, backtick.
const QUOTE_PAIRS: [(char, char); 3] = [('"', '"'), ('“', '”'), ('`', '`')];

/// Trim whitespace and trailing punctuation off an extracted word.
fn clean_word(raw: &str) -> &str {
    raw.trim()
        .trim_end_matches(['.', ',', ';', ':', '!', '?', '…'])
}

/// The first quoted token inside `span`, any accepted quote style.
fn first_quoted(span: &str) -> Option<String> {
    first_quoted_from(span, 0, span)
}

/// The first quoted token whose *opening* quote lies inside `span`, where
/// `span` is `&text[span_start..span_start + span.len()]`. The closing
/// quote may fall beyond the span: sentence splitting cuts at `.`, and a
/// quoted token like `"FROM."` carries its terminator inside the quotes.
fn first_quoted_from(text: &str, span_start: usize, span: &str) -> Option<String> {
    let (at, open, close) = QUOTE_PAIRS
        .iter()
        .filter_map(|(o, c)| span.find(*o).map(|i| (i, *o, *c)))
        .min_by_key(|(i, _, _)| *i)?;
    let start = span_start + at + open.len_utf8();
    let len = text[start..].find(close)?;
    let word = clean_word(&text[start..start + len]);
    (!word.is_empty()).then(|| word.to_string())
}

/// Extract the guessed missing word (quoted token or `Missing word: X`).
///
/// A response may echo the query itself — and the query may contain quoted
/// strings — so a quoted token only counts when it shares a sentence with
/// a mention of "missing" (sentence boundaries include newlines, which
/// separate an echoed query from the surrounding prose). Accepts ASCII,
/// typographic (“ ”), and backtick quotes, and strips trailing
/// punctuation off the extracted word.
pub fn extract_word(text: &str) -> Extracted<String> {
    let mentions_missing = contains_ci(text, "missing");
    if mentions_missing {
        // quoted token opening in a sentence that talks about the missing
        // word (its closing quote may sit past the sentence terminator)
        let mut offset = 0;
        for sentence in text.split_inclusive(['.', '!', '?', '\n']) {
            if contains_ci(sentence, "missing") {
                if let Some(word) = first_quoted_from(text, offset, sentence) {
                    return Extracted::Value(word);
                }
            }
            offset += sentence.len();
        }
        // tagged form: "Missing word: X"
        if let Some(pos) = find_ci(text, "missing word:") {
            let rest = text[pos + "missing word:".len()..].trim_start();
            let raw: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
            let word = clean_word(&raw);
            if !word.is_empty() {
                return Extracted::Value(word.to_string());
            }
        }
        return Extracted::NeedsReview;
    }
    // no "missing" anywhere: any quoted token is the best guess
    match first_quoted(text) {
        Some(word) => Extracted::Value(word),
        None => Extracted::NeedsReview,
    }
}

/// Extract the SQL query from a translation response.
///
/// Preference order: the first fenced code block (```` ``` ````, with an
/// optional language tag), then the first line that starts with `SELECT`
/// or `WITH` (the only statement heads the benchmark queries use). A
/// trailing semicolon is stripped; prose-only responses go to review.
pub fn extract_sql(text: &str) -> Extracted<String> {
    if let Some(open) = text.find("```") {
        let after = &text[open + 3..];
        if let Some(close) = after.find("```") {
            let mut body = &after[..close];
            // drop a language tag on the opening line ("sql\n…")
            if let Some(nl) = body.find('\n') {
                let first = body[..nl].trim();
                if first.chars().all(|c| c.is_ascii_alphanumeric()) {
                    body = &body[nl + 1..];
                }
            }
            let sql = body.trim().trim_end_matches(';').trim();
            if !sql.is_empty() {
                return Extracted::Value(sql.to_string());
            }
        }
    }
    for line in text.lines() {
        let l = line.trim().trim_end_matches(';').trim();
        let lower = l.to_lowercase();
        if lower.starts_with("select ") || lower.starts_with("with ") {
            return Extracted::Value(l.to_string());
        }
    }
    Extracted::NeedsReview
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_direct_forms() {
        assert_eq!(
            extract_binary("Yes, the query contains a syntax error."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("No, the query does not contain any syntax errors."),
            Extracted::Value(false)
        );
        assert_eq!(extract_binary("  yes — definitely"), Extracted::Value(true));
        assert_eq!(extract_binary("\"No.\""), Extracted::Value(false));
    }

    #[test]
    fn binary_hedged_forms() {
        assert_eq!(
            extract_binary("I believe the query has an error. The HAVING clause…"),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("After reviewing the statement, I don't see a syntax error here; the query does not contain problems."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("The statement appears complete — I do not detect any missing token."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("These queries are not equivalent; the transformation changes results."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("I believe these queries are equivalent."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("This query looks costly; it should take longer than a typical query."),
            Extracted::Value(true)
        );
    }

    #[test]
    fn binary_no_requires_a_word_boundary() {
        // every one of these begins with "no" as a prefix but is NOT a
        // negative answer — the seed bug classified them all as `false`
        assert_eq!(
            extract_binary("Notably, the query contains a syntax error."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("Note that a word is missing here; the FROM keyword is missing."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("None of the rewrites change results — the queries are equivalent."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("Now, this query looks costly; it should take longer."),
            Extracted::Value(true)
        );
        // and "Note…" phrasings that really are negative still resolve
        // through the idioms, not the leading pseudo-"no"
        assert_eq!(
            extract_binary("Note that the query looks valid to me."),
            Extracted::Value(false)
        );
        // "not" is not "no" either (pre-existing behavior, still holds)
        assert_eq!(
            extract_binary("Not equivalent — these differ."),
            Extracted::Value(false)
        );
    }

    #[test]
    fn binary_unparseable_goes_to_review() {
        assert_eq!(
            extract_binary("As an AI model I cannot run SQL."),
            Extracted::NeedsReview
        );
        assert_eq!(extract_binary(""), Extracted::NeedsReview);
        assert_eq!(
            extract_binary("Nothing conclusive can be said."),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn label_tagged_and_untagged() {
        let labels = ["aggr-attr", "aggr-having", "condition-mismatch"];
        assert_eq!(
            extract_label(
                "… I would classify this as (error type: aggr-having).",
                &labels
            ),
            Extracted::Value("aggr-having".to_string())
        );
        assert_eq!(
            extract_label(
                "The problem looks like a condition-mismatch to me.",
                &labels
            ),
            Extracted::Value("condition-mismatch".to_string())
        );
        assert_eq!(
            extract_label("something else entirely", &labels),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn label_substring_cannot_win() {
        // `aggr` must not fire inside `aggr-having`
        let labels = ["aggr", "aggr-having"];
        assert_eq!(
            extract_label("error type: aggr-having, clearly.", &labels),
            Extracted::Value("aggr-having".to_string())
        );
        assert_eq!(
            extract_label("I'd call this plain aggr trouble.", &labels),
            Extracted::Value("aggr".to_string())
        );
        // `value` must not fire inside `value-change`
        let labels = ["value", "value-change"];
        assert_eq!(
            extract_label("transformation: value-change", &labels),
            Extracted::Value("value-change".to_string())
        );
    }

    #[test]
    fn label_category_tag_is_word_bounded() {
        let labels = ["keyword", "column"];
        // "categorical" must not be read as the "category" tag: the only
        // real signal here is the later plain mention of "column"
        assert_eq!(
            extract_label(
                "The data is categorical. keyword aside, the issue is the column.",
                &labels
            ),
            Extracted::Value("column".to_string())
        );
        // a real "category: X" tag still works
        assert_eq!(
            extract_label("category: keyword (not a column issue)", &labels),
            Extracted::Value("keyword".to_string())
        );
    }

    #[test]
    fn label_exact_ties_go_to_review() {
        // distinct labels matching at the same position = ambiguous
        let labels = ["order", "order by clause"];
        assert_eq!(
            extract_label("error type: order by clause", &labels),
            Extracted::NeedsReview
        );
        // …but an unambiguous response still resolves
        assert_eq!(
            extract_label("error type: order, specifically.", &labels),
            Extracted::Value("order".to_string())
        );
    }

    #[test]
    fn position_extraction() {
        assert_eq!(
            extract_position("… It should appear at word position 12."),
            Extracted::Value(12)
        );
        assert_eq!(extract_position("Position: 3."), Extracted::Value(3));
        assert_eq!(
            extract_position("somewhere near the end"),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn word_extraction() {
        assert_eq!(
            extract_word("most likely \"FROM\". It should appear…"),
            Extracted::Value("FROM".to_string())
        );
        assert_eq!(
            extract_word("Missing word: plate. Position: 4."),
            Extracted::Value("plate".to_string())
        );
        assert_eq!(extract_word("unknown"), Extracted::NeedsReview);
    }

    #[test]
    fn word_extraction_skips_echoed_query_quotes() {
        // the echoed query contains a quoted literal; the answer's quote
        // must win because it shares a sentence with "missing"
        let echoed = "You asked: Is a word missing from this SQL query?\n\nSELECT name FROM t WHERE status = \"high\"\n\nYes — the missing word is a keyword; most likely \"FROM\".";
        assert_eq!(extract_word(echoed), Extracted::Value("FROM".to_string()));
        // echoed query + tagged answer with no quotes at all
        let tagged = "You asked: what is the missing word?\n\nSELECT \"x\" FROM t\n\nMissing word: GROUP. Position: 7.";
        assert_eq!(extract_word(tagged), Extracted::Value("GROUP".to_string()));
    }

    #[test]
    fn sql_extraction_prefers_fences() {
        assert_eq!(
            extract_sql("Here is the translation:\n```sql\nSELECT `a` FROM t;\n```\nDone."),
            Extracted::Value("SELECT `a` FROM t".to_string())
        );
        assert_eq!(
            extract_sql("```\nWITH c AS (SELECT 1) SELECT * FROM c\n```"),
            Extracted::Value("WITH c AS (SELECT 1) SELECT * FROM c".to_string())
        );
    }

    #[test]
    fn sql_extraction_bare_line_and_review() {
        assert_eq!(
            extract_sql("The translated query is:\nSELECT plate FROM SpecObj;\nNote the quoting."),
            Extracted::Value("SELECT plate FROM SpecObj".to_string())
        );
        assert_eq!(
            extract_sql("I cannot translate this query."),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn word_extraction_typographic_quotes_and_punctuation() {
        assert_eq!(
            extract_word("The missing word is “WHERE”, I believe."),
            Extracted::Value("WHERE".to_string())
        );
        assert_eq!(
            extract_word("The missing token is `JOIN`."),
            Extracted::Value("JOIN".to_string())
        );
        // trailing punctuation inside the quotes is stripped
        assert_eq!(
            extract_word("The missing word is \"FROM.\""),
            Extracted::Value("FROM".to_string())
        );
        // tagged form with trailing punctuation beyond . and ,
        assert_eq!(
            extract_word("Missing word: plate; position 4."),
            Extracted::Value("plate".to_string())
        );
    }
}
