//! Response post-processing (paper §3.4, "Handling LLM Output").
//!
//! Models answer in verbose free text; this module extracts the labels the
//! evaluation needs. Extraction is pattern-based with a `NeedsReview`
//! escape hatch for unparseable responses — the automated-scripts-plus-
//! manual-checks pipeline of the paper, with the manual bucket made
//! explicit.

use serde::{Deserialize, Serialize};

/// Result of extracting a yes/no answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extracted<T> {
    /// A label was extracted automatically.
    Value(T),
    /// The response did not match any known pattern; in the paper this
    /// goes to manual review.
    NeedsReview,
}

impl<T> Extracted<T> {
    /// The extracted value, if any.
    pub fn value(self) -> Option<T> {
        match self {
            Extracted::Value(v) => Some(v),
            Extracted::NeedsReview => None,
        }
    }
}

/// Extract a binary yes/no decision from a verbose response.
///
/// Handles leading "Yes"/"No", hedged forms ("I believe …"), and
/// characteristic affirmative / negative phrasings.
pub fn extract_binary(text: &str) -> Extracted<bool> {
    let lower = text.to_lowercase();
    let trimmed = lower.trim_start();
    // direct leading answer
    if trimmed.starts_with("yes") {
        return Extracted::Value(true);
    }
    if trimmed.starts_with("no") && !trimmed.starts_with("not") {
        return Extracted::Value(false);
    }
    // negative idioms first (a "no" answer often embeds positive words
    // like "errors" in "does not contain any syntax errors")
    const NEGATIVE: [&str; 10] = [
        "does not contain",
        "no errors detected",
        "not equivalent",
        "should run quickly",
        "should not take longer",
        "would not expect",
        "nothing seems to be missing",
        "do not detect",
        "don't see a syntax error",
        "looks valid",
    ];
    if NEGATIVE.iter().any(|p| lower.contains(p)) {
        return Extracted::Value(false);
    }
    const POSITIVE: [&str; 7] = [
        "contains a syntax error",
        "has an error",
        "is missing",
        "are equivalent",
        "queries are equivalent",
        "take longer",
        "looks costly",
    ];
    if POSITIVE.iter().any(|p| lower.contains(p)) {
        return Extracted::Value(true);
    }
    Extracted::NeedsReview
}

/// Extract a class label from a response given the closed label set.
/// Picks the label mentioned in the text; when several are mentioned the
/// one tagged as the classification ("error type: …", "category",
/// "transformation: …") wins, else the last mention.
pub fn extract_label(text: &str, labels: &[&str]) -> Extracted<String> {
    let lower = text.to_lowercase();
    // tagged forms
    for tag in [
        "error type:",
        "transformation:",
        "missing token type:",
        "category",
    ] {
        if let Some(pos) = lower.find(tag) {
            let rest = &lower[pos..];
            if let Some(best) = labels
                .iter()
                .filter_map(|l| rest.find(&l.to_lowercase()).map(|i| (i, *l)))
                .min_by_key(|(i, _)| *i)
            {
                return Extracted::Value(best.1.to_string());
            }
        }
    }
    // fall back: last mention anywhere
    let mut found: Option<(usize, &str)> = None;
    for l in labels {
        if let Some(i) = lower.rfind(&l.to_lowercase()) {
            if found.map(|(j, _)| i > j).unwrap_or(true) {
                found = Some((i, l));
            }
        }
    }
    match found {
        Some((_, l)) => Extracted::Value(l.to_string()),
        None => Extracted::NeedsReview,
    }
}

/// Extract the predicted word position from a missing-token response.
pub fn extract_position(text: &str) -> Extracted<usize> {
    let lower = text.to_lowercase();
    for tag in ["position:", "position ", "word position "] {
        if let Some(pos) = lower.find(tag) {
            let rest = &lower[pos + tag.len()..];
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(v) = digits.parse::<usize>() {
                return Extracted::Value(v);
            }
        }
    }
    Extracted::NeedsReview
}

/// Extract the guessed missing word (quoted token or `Missing word: X`).
pub fn extract_word(text: &str) -> Extracted<String> {
    if let Some(start) = text.find('"') {
        if let Some(len) = text[start + 1..].find('"') {
            return Extracted::Value(text[start + 1..start + 1 + len].to_string());
        }
    }
    if let Some(pos) = text.find("Missing word:") {
        let rest = text[pos + "Missing word:".len()..].trim_start();
        let word: String = rest
            .chars()
            .take_while(|c| !c.is_whitespace() && *c != '.' && *c != ',')
            .collect();
        if !word.is_empty() {
            return Extracted::Value(word);
        }
    }
    Extracted::NeedsReview
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_direct_forms() {
        assert_eq!(
            extract_binary("Yes, the query contains a syntax error."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("No, the query does not contain any syntax errors."),
            Extracted::Value(false)
        );
        assert_eq!(extract_binary("  yes — definitely"), Extracted::Value(true));
    }

    #[test]
    fn binary_hedged_forms() {
        assert_eq!(
            extract_binary("I believe the query has an error. The HAVING clause…"),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("After reviewing the statement, I don't see a syntax error here; the query does not contain problems."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("The statement appears complete — I do not detect any missing token."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("These queries are not equivalent; the transformation changes results."),
            Extracted::Value(false)
        );
        assert_eq!(
            extract_binary("I believe these queries are equivalent."),
            Extracted::Value(true)
        );
        assert_eq!(
            extract_binary("This query looks costly; it should take longer than a typical query."),
            Extracted::Value(true)
        );
    }

    #[test]
    fn binary_unparseable_goes_to_review() {
        assert_eq!(
            extract_binary("As an AI model I cannot run SQL."),
            Extracted::NeedsReview
        );
        assert_eq!(extract_binary(""), Extracted::NeedsReview);
    }

    #[test]
    fn label_tagged_and_untagged() {
        let labels = ["aggr-attr", "aggr-having", "condition-mismatch"];
        assert_eq!(
            extract_label(
                "… I would classify this as (error type: aggr-having).",
                &labels
            ),
            Extracted::Value("aggr-having".to_string())
        );
        assert_eq!(
            extract_label(
                "The problem looks like a condition-mismatch to me.",
                &labels
            ),
            Extracted::Value("condition-mismatch".to_string())
        );
        assert_eq!(
            extract_label("something else entirely", &labels),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn position_extraction() {
        assert_eq!(
            extract_position("… It should appear at word position 12."),
            Extracted::Value(12)
        );
        assert_eq!(extract_position("Position: 3."), Extracted::Value(3));
        assert_eq!(
            extract_position("somewhere near the end"),
            Extracted::NeedsReview
        );
    }

    #[test]
    fn word_extraction() {
        assert_eq!(
            extract_word("most likely \"FROM\". It should appear…"),
            Extracted::Value("FROM".to_string())
        );
        assert_eq!(
            extract_word("Missing word: plate. Position: 4."),
            Extracted::Value("plate".to_string())
        );
        assert_eq!(extract_word("unknown"), Extracted::NeedsReview);
    }
}
