//! Property tests for the lexer: totality (no panics on arbitrary input),
//! span validity, word-index consistency, and re-lex idempotence.

use proptest::prelude::*;
use squ_lexer::{tokenize, tokenize_lossy, word_count, TokenKind};

proptest! {
    /// The lexer must never panic, whatever bytes it is fed — the benchmark
    /// deliberately feeds it corrupted SQL.
    #[test]
    fn lossy_lexing_is_total(s in ".{0,200}") {
        let _ = tokenize_lossy(&s);
    }

    /// Every produced span is in-bounds, non-empty, and on char boundaries.
    #[test]
    fn spans_are_valid(s in "[ -~]{0,200}") {
        let (toks, _) = tokenize_lossy(&s);
        for t in toks {
            prop_assert!(t.span.start < t.span.end);
            prop_assert!(t.span.end <= s.len());
            prop_assert!(s.is_char_boundary(t.span.start));
            prop_assert!(s.is_char_boundary(t.span.end));
        }
    }

    /// Word indices are monotonically non-decreasing and bounded by the
    /// word count of the source.
    #[test]
    fn word_indices_monotone_and_bounded(s in "[ -~]{0,200}") {
        let (toks, _) = tokenize_lossy(&s);
        let wc = word_count(&s);
        let mut prev = 0usize;
        for t in &toks {
            prop_assert!(t.word_index >= prev, "indices must not decrease");
            prop_assert!(t.word_index < wc.max(1), "index {} out of bounds {}", t.word_index, wc);
            prev = t.word_index;
        }
    }

    /// Lexing the space-joined token texts reproduces the same token kinds
    /// (idempotence of lex ∘ print for non-quoted tokens).
    #[test]
    fn relex_idempotent(s in "(SELECT|FROM|WHERE|AND|plate|mjd|z|[0-9]{1,4}|=|<|>|,|\\(|\\)| ){1,40}") {
        if let Ok(toks) = tokenize(&s) {
            let joined = toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
            let toks2 = tokenize(&joined).expect("re-lex must succeed");
            let k1: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
            let k2: Vec<&TokenKind> = toks2.iter().map(|t| &t.kind).collect();
            prop_assert_eq!(k1, k2);
        }
    }
}

proptest! {
    /// Full-UTF-8 totality + span contract: on *arbitrary* unicode input
    /// (not just printable ASCII) the lossy lexer must not panic, and every
    /// span must be in-bounds, non-empty, char-boundary-aligned, strictly
    /// ordered, and non-overlapping.
    #[test]
    fn utf8_spans_are_ordered_and_disjoint(s in ".{0,250}") {
        let (toks, _) = tokenize_lossy(&s);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.span.start < t.span.end, "empty/inverted span");
            prop_assert!(t.span.end <= s.len(), "span past end of input");
            prop_assert!(s.is_char_boundary(t.span.start));
            prop_assert!(s.is_char_boundary(t.span.end));
            prop_assert!(t.span.start >= prev_end,
                "span {}..{} overlaps previous token ending at {}",
                t.span.start, t.span.end, prev_end);
            prev_end = t.span.end;
        }
    }

    /// Span slices plus the gaps between them concatenate back to the
    /// input, byte for byte. (`Token::text` is normalized — quotes are
    /// stripped, escapes decoded — so reconstruction MUST go through
    /// spans; this pins that contract on arbitrary UTF-8.)
    #[test]
    fn utf8_spans_reconstruct_the_input(s in ".{0,250}") {
        let (toks, _) = tokenize_lossy(&s);
        let mut rebuilt = String::with_capacity(s.len());
        let mut cursor = 0usize;
        for t in &toks {
            prop_assert!(t.span.start >= cursor);
            rebuilt.push_str(&s[cursor..t.span.start]);
            rebuilt.push_str(&s[t.span.start..t.span.end]);
            cursor = t.span.end;
        }
        rebuilt.push_str(&s[cursor..]);
        prop_assert_eq!(rebuilt, s);
    }

    /// The same contract for the strict tokenizer on inputs it accepts:
    /// SQL-looking text interleaved with multibyte identifiers.
    #[test]
    fn strict_spans_reconstruct_accepted_input(
        s in "(SELECT|FROM|WHERE|étoile|数据|x1|[0-9]{1,3}|'lit'|\"qid\"|=|,|\\(|\\)|  ){1,30}"
    ) {
        if let Ok(toks) = tokenize(&s) {
            let mut rebuilt = String::with_capacity(s.len());
            let mut cursor = 0usize;
            for t in &toks {
                prop_assert!(t.span.start >= cursor, "overlap in strict lexer spans");
                rebuilt.push_str(&s[cursor..t.span.start]);
                rebuilt.push_str(&s[t.span.start..t.span.end]);
                cursor = t.span.end;
            }
            rebuilt.push_str(&s[cursor..]);
            prop_assert_eq!(rebuilt, s);
        }
    }

    /// The strict tokenizer is a refinement of the lossy one: when it
    /// accepts, both see the same spans; when it rejects, lossy still
    /// returns the prefix it could lex plus at least one error.
    #[test]
    fn strict_and_lossy_agree(s in ".{0,200}") {
        let (lossy_toks, errors) = tokenize_lossy(&s);
        match tokenize(&s) {
            Ok(toks) => {
                prop_assert!(errors.is_empty());
                let a: Vec<_> = toks.iter().map(|t| t.span).collect();
                let b: Vec<_> = lossy_toks.iter().map(|t| t.span).collect();
                prop_assert_eq!(a, b);
            }
            Err(_) => prop_assert!(!errors.is_empty(),
                "strict rejected but lossy reported no error"),
        }
    }
}
