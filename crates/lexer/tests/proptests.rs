//! Property tests for the lexer: totality (no panics on arbitrary input),
//! span validity, word-index consistency, and re-lex idempotence.

use proptest::prelude::*;
use squ_lexer::{tokenize, tokenize_lossy, word_count, TokenKind};

proptest! {
    /// The lexer must never panic, whatever bytes it is fed — the benchmark
    /// deliberately feeds it corrupted SQL.
    #[test]
    fn lossy_lexing_is_total(s in ".{0,200}") {
        let _ = tokenize_lossy(&s);
    }

    /// Every produced span is in-bounds, non-empty, and on char boundaries.
    #[test]
    fn spans_are_valid(s in "[ -~]{0,200}") {
        let (toks, _) = tokenize_lossy(&s);
        for t in toks {
            prop_assert!(t.span.start < t.span.end);
            prop_assert!(t.span.end <= s.len());
            prop_assert!(s.is_char_boundary(t.span.start));
            prop_assert!(s.is_char_boundary(t.span.end));
        }
    }

    /// Word indices are monotonically non-decreasing and bounded by the
    /// word count of the source.
    #[test]
    fn word_indices_monotone_and_bounded(s in "[ -~]{0,200}") {
        let (toks, _) = tokenize_lossy(&s);
        let wc = word_count(&s);
        let mut prev = 0usize;
        for t in &toks {
            prop_assert!(t.word_index >= prev, "indices must not decrease");
            prop_assert!(t.word_index < wc.max(1), "index {} out of bounds {}", t.word_index, wc);
            prev = t.word_index;
        }
    }

    /// Lexing the space-joined token texts reproduces the same token kinds
    /// (idempotence of lex ∘ print for non-quoted tokens).
    #[test]
    fn relex_idempotent(s in "(SELECT|FROM|WHERE|AND|plate|mjd|z|[0-9]{1,4}|=|<|>|,|\\(|\\)| ){1,40}") {
        if let Ok(toks) = tokenize(&s) {
            let joined = toks.iter().map(|t| t.text.as_str()).collect::<Vec<_>>().join(" ");
            let toks2 = tokenize(&joined).expect("re-lex must succeed");
            let k1: Vec<&TokenKind> = toks.iter().map(|t| &t.kind).collect();
            let k2: Vec<&TokenKind> = toks2.iter().map(|t| &t.kind).collect();
            prop_assert_eq!(k1, k2);
        }
    }
}
