use std::fmt;

/// A lexical error, carrying the byte offset at which it occurred.
///
/// The benchmark pipeline routinely lexes deliberately-broken SQL, so lexical
/// errors are ordinary values, not panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A string literal was opened (`'…`) but never closed.
    UnterminatedString {
        /// Byte offset of the opening quote.
        start: usize,
    },
    /// A quoted identifier (`"…"` or `[…]`) was opened but never closed.
    UnterminatedQuotedIdent {
        /// Byte offset of the opening delimiter.
        start: usize,
    },
    /// A block comment (`/* …`) was opened but never closed.
    UnterminatedComment {
        /// Byte offset of the `/*`.
        start: usize,
    },
    /// A byte that cannot begin any SQL token.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Its byte offset.
        offset: usize,
    },
    /// A malformed numeric literal, e.g. `1.2.3` or `1e+`.
    MalformedNumber {
        /// The literal text as written.
        text: String,
        /// Byte offset where it starts.
        offset: usize,
    },
}

impl LexError {
    /// Byte offset in the source at which the error starts.
    pub fn offset(&self) -> usize {
        match self {
            LexError::UnterminatedString { start }
            | LexError::UnterminatedQuotedIdent { start }
            | LexError::UnterminatedComment { start } => *start,
            LexError::UnexpectedChar { offset, .. } => *offset,
            LexError::MalformedNumber { offset, .. } => *offset,
        }
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedString { start } => {
                write!(f, "unterminated string literal starting at byte {start}")
            }
            LexError::UnterminatedQuotedIdent { start } => {
                write!(f, "unterminated quoted identifier starting at byte {start}")
            }
            LexError::UnterminatedComment { start } => {
                write!(f, "unterminated block comment starting at byte {start}")
            }
            LexError::UnexpectedChar { ch, offset } => {
                write!(f, "unexpected character {ch:?} at byte {offset}")
            }
            LexError::MalformedNumber { text, offset } => {
                write!(f, "malformed numeric literal {text:?} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for LexError {}
