use crate::Keyword;

/// Half-open byte range `[start, end)` into the source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Span {
    /// Construct a span; `start <= end` is the caller's responsibility.
    pub fn new(start: usize, end: usize) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Slice `src` with this span.
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// The lexical class of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A recognized SQL keyword.
    Keyword(Keyword),
    /// A bare identifier (table, column, alias, function name).
    Ident,
    /// A quoted identifier: `"name"` or `[name]` (brackets appear in the
    /// SDSS / CasJobs T-SQL dialect). `text` holds the *unquoted* content.
    QuotedIdent,
    /// Numeric literal; the parsed value is kept to avoid re-parsing.
    Number(f64),
    /// String literal; `text` holds the *unquoted, unescaped* content.
    String,
    /// `=`, `<>`, `!=`, `<`, `<=`, `>`, `>=`
    CompareOp(CompareOp),
    /// `+ - * / %` (note `*` doubles as the SELECT wildcard; the parser
    /// disambiguates by context).
    ArithOp(char),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `||` string concatenation.
    Concat,
}

/// Comparison operators, shared with the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CompareOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CompareOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::NotEq => CompareOp::NotEq,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::LtEq => CompareOp::GtEq,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::GtEq => CompareOp::LtEq,
        }
    }

    /// Logical negation (`a < b` ⇔ NOT `a >= b`).
    pub fn negated(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::NotEq,
            CompareOp::NotEq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::GtEq,
            CompareOp::LtEq => CompareOp::Gt,
            CompareOp::Gt => CompareOp::LtEq,
            CompareOp::GtEq => CompareOp::Lt,
        }
    }
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Normalized text: unquoted content for quoted idents and strings,
    /// raw source text otherwise.
    pub text: String,
    /// Byte span in the original source.
    pub span: Span,
    /// Index of the whitespace-separated *word* this token starts in
    /// (0-based). Several tokens can share a word index (`s.plate` is one
    /// word, three tokens); this is the unit the paper's `miss_token_loc`
    /// task measures positions in.
    pub word_index: usize,
}

impl Token {
    /// Is this token a keyword (any)?
    pub fn is_keyword(&self) -> bool {
        matches!(self.kind, TokenKind::Keyword(_))
    }

    /// Is this token the given keyword?
    pub fn is_kw(&self, kw: Keyword) -> bool {
        self.kind == TokenKind::Keyword(kw)
    }

    /// Is this token an identifier (bare or quoted)?
    pub fn is_ident(&self) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::QuotedIdent)
    }

    /// Is this a literal (number or string)?
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokenKind::Number(_) | TokenKind::String)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_slice() {
        let s = "SELECT x";
        let sp = Span::new(7, 8);
        assert_eq!(sp.slice(s), "x");
        assert_eq!(sp.len(), 1);
        assert!(!sp.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }

    #[test]
    fn compare_op_flip_negate() {
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Lt.negated(), CompareOp::GtEq);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
        // flipping twice is identity
        for op in [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::LtEq,
            CompareOp::Gt,
            CompareOp::GtEq,
        ] {
            assert_eq!(op.flipped().flipped(), op);
            assert_eq!(op.negated().negated(), op);
        }
    }
}
