/// Closed set of SQL keywords recognized by the lexer.
///
/// Keywords are matched case-insensitively. Anything not in this set lexes as
/// an identifier. The set covers the dialect exercised by the four benchmark
/// workloads (SDSS CasJobs T-SQL-flavoured SELECTs, SQLShare, Join-Order,
/// Spider): query clauses, joins, set operations, CTEs, DDL for `CREATE
/// TABLE/VIEW`, and the operators-as-words (`AND`, `OR`, `NOT`, `IN`,
/// `BETWEEN`, `LIKE`, `EXISTS`, `IS`, `NULL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    Offset,
    Top,
    Distinct,
    All,
    As,
    Join,
    Inner,
    Left,
    Right,
    Full,
    Outer,
    Cross,
    On,
    Using,
    Union,
    Intersect,
    Except,
    With,
    And,
    Or,
    Not,
    In,
    Between,
    Like,
    Exists,
    Is,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Asc,
    Desc,
    Create,
    Table,
    View,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Drop,
    Alter,
    Primary,
    Foreign,
    Key,
    References,
    Cast,
    Nulls,
    First,
    Last,
}

impl Keyword {
    /// Attempt to classify a word as a keyword (case-insensitive).
    pub fn from_str_ci(s: &str) -> Option<Keyword> {
        // Fast-path length filter: all keywords are 2..=10 chars.
        if s.len() < 2 || s.len() > 10 {
            return None;
        }
        let mut buf = [0u8; 10];
        for (i, b) in s.bytes().enumerate() {
            buf[i] = b.to_ascii_uppercase();
        }
        let up = &buf[..s.len()];
        Some(match up {
            b"SELECT" => Keyword::Select,
            b"FROM" => Keyword::From,
            b"WHERE" => Keyword::Where,
            b"GROUP" => Keyword::Group,
            b"BY" => Keyword::By,
            b"HAVING" => Keyword::Having,
            b"ORDER" => Keyword::Order,
            b"LIMIT" => Keyword::Limit,
            b"OFFSET" => Keyword::Offset,
            b"TOP" => Keyword::Top,
            b"DISTINCT" => Keyword::Distinct,
            b"ALL" => Keyword::All,
            b"AS" => Keyword::As,
            b"JOIN" => Keyword::Join,
            b"INNER" => Keyword::Inner,
            b"LEFT" => Keyword::Left,
            b"RIGHT" => Keyword::Right,
            b"FULL" => Keyword::Full,
            b"OUTER" => Keyword::Outer,
            b"CROSS" => Keyword::Cross,
            b"ON" => Keyword::On,
            b"USING" => Keyword::Using,
            b"UNION" => Keyword::Union,
            b"INTERSECT" => Keyword::Intersect,
            b"EXCEPT" => Keyword::Except,
            b"WITH" => Keyword::With,
            b"AND" => Keyword::And,
            b"OR" => Keyword::Or,
            b"NOT" => Keyword::Not,
            b"IN" => Keyword::In,
            b"BETWEEN" => Keyword::Between,
            b"LIKE" => Keyword::Like,
            b"EXISTS" => Keyword::Exists,
            b"IS" => Keyword::Is,
            b"NULL" => Keyword::Null,
            b"TRUE" => Keyword::True,
            b"FALSE" => Keyword::False,
            b"CASE" => Keyword::Case,
            b"WHEN" => Keyword::When,
            b"THEN" => Keyword::Then,
            b"ELSE" => Keyword::Else,
            b"END" => Keyword::End,
            b"ASC" => Keyword::Asc,
            b"DESC" => Keyword::Desc,
            b"CREATE" => Keyword::Create,
            b"TABLE" => Keyword::Table,
            b"VIEW" => Keyword::View,
            b"INSERT" => Keyword::Insert,
            b"INTO" => Keyword::Into,
            b"VALUES" => Keyword::Values,
            b"UPDATE" => Keyword::Update,
            b"SET" => Keyword::Set,
            b"DELETE" => Keyword::Delete,
            b"DROP" => Keyword::Drop,
            b"ALTER" => Keyword::Alter,
            b"PRIMARY" => Keyword::Primary,
            b"FOREIGN" => Keyword::Foreign,
            b"KEY" => Keyword::Key,
            b"REFERENCES" => Keyword::References,
            b"CAST" => Keyword::Cast,
            b"NULLS" => Keyword::Nulls,
            b"FIRST" => Keyword::First,
            b"LAST" => Keyword::Last,
            _ => return None,
        })
    }

    /// Canonical upper-case spelling, used by the pretty-printer.
    pub fn as_str(&self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Group => "GROUP",
            Keyword::By => "BY",
            Keyword::Having => "HAVING",
            Keyword::Order => "ORDER",
            Keyword::Limit => "LIMIT",
            Keyword::Offset => "OFFSET",
            Keyword::Top => "TOP",
            Keyword::Distinct => "DISTINCT",
            Keyword::All => "ALL",
            Keyword::As => "AS",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::Left => "LEFT",
            Keyword::Right => "RIGHT",
            Keyword::Full => "FULL",
            Keyword::Outer => "OUTER",
            Keyword::Cross => "CROSS",
            Keyword::On => "ON",
            Keyword::Using => "USING",
            Keyword::Union => "UNION",
            Keyword::Intersect => "INTERSECT",
            Keyword::Except => "EXCEPT",
            Keyword::With => "WITH",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::In => "IN",
            Keyword::Between => "BETWEEN",
            Keyword::Like => "LIKE",
            Keyword::Exists => "EXISTS",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
            Keyword::Case => "CASE",
            Keyword::When => "WHEN",
            Keyword::Then => "THEN",
            Keyword::Else => "ELSE",
            Keyword::End => "END",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::Create => "CREATE",
            Keyword::Table => "TABLE",
            Keyword::View => "VIEW",
            Keyword::Insert => "INSERT",
            Keyword::Into => "INTO",
            Keyword::Values => "VALUES",
            Keyword::Update => "UPDATE",
            Keyword::Set => "SET",
            Keyword::Delete => "DELETE",
            Keyword::Drop => "DROP",
            Keyword::Alter => "ALTER",
            Keyword::Primary => "PRIMARY",
            Keyword::Foreign => "FOREIGN",
            Keyword::Key => "KEY",
            Keyword::References => "REFERENCES",
            Keyword::Cast => "CAST",
            Keyword::Nulls => "NULLS",
            Keyword::First => "FIRST",
            Keyword::Last => "LAST",
        }
    }

    /// True for keywords that open a clause (`SELECT`, `FROM`, `WHERE`, …) —
    /// the "structural" keywords whose deletion the `miss_token` task targets
    /// most often.
    pub fn is_clause_starter(&self) -> bool {
        matches!(
            self,
            Keyword::Select
                | Keyword::From
                | Keyword::Where
                | Keyword::Group
                | Keyword::Having
                | Keyword::Order
                | Keyword::Limit
                | Keyword::With
        )
    }
}

impl std::fmt::Display for Keyword {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_match() {
        assert_eq!(Keyword::from_str_ci("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str_ci("SELECT"), Some(Keyword::Select));
    }

    #[test]
    fn non_keywords_rejected() {
        assert_eq!(Keyword::from_str_ci("plate"), None);
        assert_eq!(Keyword::from_str_ci("selects"), None);
        assert_eq!(Keyword::from_str_ci(""), None);
        assert_eq!(Keyword::from_str_ci("x"), None);
        assert_eq!(Keyword::from_str_ci("averyverylongword"), None);
    }

    #[test]
    fn round_trip_spelling() {
        for kw in [
            Keyword::Select,
            Keyword::Intersect,
            Keyword::References,
            Keyword::Between,
        ] {
            assert_eq!(Keyword::from_str_ci(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn clause_starters() {
        assert!(Keyword::Select.is_clause_starter());
        assert!(Keyword::Where.is_clause_starter());
        assert!(!Keyword::And.is_clause_starter());
        assert!(!Keyword::Join.is_clause_starter());
    }
}
