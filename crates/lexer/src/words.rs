//! Word-level accounting.
//!
//! The paper measures query length and token positions in *words* —
//! whitespace-separated chunks of the raw SQL text (`word_count`,
//! `char_count`, and the "word count position" answer format of
//! `miss_token_loc`). These helpers define that unit once so the lexer,
//! property extraction, and task generators all agree.

/// Split SQL into its whitespace-separated words, preserving order.
pub fn words(sql: &str) -> Vec<&str> {
    sql.split_whitespace().collect()
}

/// Number of whitespace-separated words (the paper's `word_count`).
pub fn word_count(sql: &str) -> usize {
    sql.split_whitespace().count()
}

/// Number of characters (the paper's `char_count`). Counted in Unicode
/// scalar values; workload queries are ASCII so this equals byte length
/// there, but the definition stays correct for arbitrary input.
pub fn char_count(sql: &str) -> usize {
    sql.chars().count()
}

/// The 0-based word index containing byte offset `byte`, or the index of the
/// nearest following word when `byte` falls in whitespace. Offsets past the
/// end map to the word count (i.e. "after the last word").
pub fn word_index_at(sql: &str, byte: usize) -> usize {
    let byte = byte.min(sql.len());
    let prefix = &sql[..byte];
    let started = prefix.split_whitespace().count();
    let at_non_ws = sql[byte..]
        .chars()
        .next()
        .is_some_and(|c| !c.is_whitespace());
    let prefix_ends_in_word = prefix
        .chars()
        .next_back()
        .is_some_and(|c| !c.is_whitespace());
    if at_non_ws && prefix_ends_in_word {
        // `byte` continues the word that already started in the prefix.
        started - 1
    } else {
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_basic() {
        assert_eq!(words("SELECT x FROM t"), vec!["SELECT", "x", "FROM", "t"]);
        assert_eq!(word_count("  a   b  "), 2);
        assert_eq!(word_count(""), 0);
    }

    #[test]
    fn char_count_unicode() {
        assert_eq!(char_count("abc"), 3);
        assert_eq!(char_count("héllo"), 5);
    }

    #[test]
    fn word_index_lookup() {
        let s = "SELECT plate FROM SpecObj";
        // byte 0 = 'S' of SELECT
        assert_eq!(word_index_at(s, 0), 0);
        // byte 7 = 'p' of plate
        assert_eq!(word_index_at(s, 7), 1);
        // byte 13 = 'F' of FROM
        assert_eq!(word_index_at(s, 13), 2);
        // byte 18 = 'S' of SpecObj
        assert_eq!(word_index_at(s, 18), 3);
        // whitespace between words maps to the following word
        assert_eq!(word_index_at(s, 6), 1);
    }
}
