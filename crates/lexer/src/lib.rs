//! # squ-lexer — SQL tokenizer
//!
//! A from-scratch SQL lexer that is the substrate for every task in the
//! SQL-understanding benchmark: token deletion (`miss_token`), word-position
//! accounting (`miss_token_loc`), syntactic property extraction
//! (`word_count`, `char_count`, …), and parsing.
//!
//! Design goals:
//!
//! * **Lossless positions** — every token carries a byte [`Span`] into the
//!   source plus its *word index* (index within the whitespace-separated word
//!   sequence, the unit the paper uses for "word count position").
//! * **Never panics** — malformed input (unterminated strings, stray bytes)
//!   produces [`LexError`] values, because the benchmark deliberately feeds
//!   the pipeline broken SQL.
//! * **Keyword classification** — SQL keywords are recognized
//!   case-insensitively into a closed [`Keyword`] enum so that downstream
//!   token-type classification (keyword vs. identifier vs. literal) is exact.
//!
//! ```
//! use squ_lexer::{tokenize, TokenKind, Keyword};
//! let toks = tokenize("SELECT plate FROM SpecObj WHERE z > 0.5").unwrap();
//! assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Select));
//! assert_eq!(toks[1].text, "plate");
//! assert_eq!(toks[1].word_index, 1);
//! ```

#![warn(missing_docs)]

mod error;
mod keyword;
mod lexer;
mod token;
mod words;

pub use error::LexError;
pub use keyword::Keyword;
pub use lexer::{tokenize, tokenize_dialect, tokenize_lossy, tokenize_lossy_dialect, Lexer};
pub use squ_dialect::Dialect;
pub use token::{CompareOp, Span, Token, TokenKind};
pub use words::{char_count, word_count, word_index_at, words};
