use crate::{
    token::{CompareOp, Span, Token, TokenKind},
    words::word_index_at,
    Keyword, LexError,
};
use squ_dialect::Dialect;

/// Streaming SQL lexer over a source string.
///
/// Most callers use the convenience functions [`tokenize`] /
/// [`tokenize_lossy`]; the struct form exists for incremental use and for
/// tests that want to observe errors mid-stream. Dialect differences that
/// live at the token level — which identifier quotes are legal, whether
/// `#` opens a line comment or continues a word — come from the
/// [`Dialect`] matrix; [`Lexer::new`] keeps the permissive
/// [`Dialect::Squ`] union behavior.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    dialect: Dialect,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src` in the default [`Dialect::Squ`].
    pub fn new(src: &'a str) -> Self {
        Lexer::with_dialect(src, Dialect::Squ)
    }

    /// Create a lexer over `src` with `dialect` token rules.
    pub fn with_dialect(src: &'a str, dialect: Dialect) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            dialect,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    /// Skip whitespace and comments. Returns an error only for an
    /// unterminated block comment.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.pos += 1;
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    // line comment
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'#') if self.dialect.hash_line_comments() => {
                    // MySQL-style `#` line comment (never a word sigil
                    // there, so this cannot shadow `#temp` identifiers)
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => return Err(LexError::UnterminatedComment { start }),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lex the next token, or `Ok(None)` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_trivia()?;
        let start = self.pos;
        let b = match self.peek() {
            Some(b) => b,
            None => return Ok(None),
        };

        let kind_text: (TokenKind, String) = match b {
            b'\'' => self.lex_string(start)?,
            b'"' if self.dialect.accepts_quote('"') => self.lex_quoted_ident(start, b'"', b'"')?,
            b'[' if self.dialect.accepts_quote('[') => self.lex_quoted_ident(start, b'[', b']')?,
            b'`' if self.dialect.accepts_quote('`') => self.lex_quoted_ident(start, b'`', b'`')?,
            b'0'..=b'9' => self.lex_number(start)?,
            b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.lex_number(start)?,
            b'.' => {
                self.pos += 1;
                (TokenKind::Dot, ".".to_string())
            }
            b',' => {
                self.pos += 1;
                (TokenKind::Comma, ",".to_string())
            }
            b';' => {
                self.pos += 1;
                (TokenKind::Semicolon, ";".to_string())
            }
            b'(' => {
                self.pos += 1;
                (TokenKind::LParen, "(".to_string())
            }
            b')' => {
                self.pos += 1;
                (TokenKind::RParen, ")".to_string())
            }
            b'+' | b'-' | b'*' | b'/' | b'%' => {
                self.pos += 1;
                (TokenKind::ArithOp(b as char), (b as char).to_string())
            }
            b'|' if self.peek2() == Some(b'|') => {
                self.pos += 2;
                (TokenKind::Concat, "||".to_string())
            }
            b'=' => {
                self.pos += 1;
                (TokenKind::CompareOp(CompareOp::Eq), "=".to_string())
            }
            b'!' if self.peek2() == Some(b'=') => {
                self.pos += 2;
                (TokenKind::CompareOp(CompareOp::NotEq), "!=".to_string())
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        (TokenKind::CompareOp(CompareOp::LtEq), "<=".to_string())
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        (TokenKind::CompareOp(CompareOp::NotEq), "<>".to_string())
                    }
                    _ => (TokenKind::CompareOp(CompareOp::Lt), "<".to_string()),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    (TokenKind::CompareOp(CompareOp::GtEq), ">=".to_string())
                } else {
                    (TokenKind::CompareOp(CompareOp::Gt), ">".to_string())
                }
            }
            b if b.is_ascii_alphabetic()
                || b == b'_'
                || ((b == b'#' || b == b'@') && self.dialect.word_sigils()) =>
            {
                self.lex_word(start)
            }
            other => {
                // Recover the full char for a useful error (src is valid UTF-8).
                let ch = self.src[start..].chars().next().unwrap_or(other as char);
                self.pos += ch.len_utf8();
                return Err(LexError::UnexpectedChar { ch, offset: start });
            }
        };

        let (kind, text) = kind_text;
        Ok(Some(Token {
            kind,
            text,
            span: Span::new(start, self.pos),
            word_index: word_index_at(self.src, start),
        }))
    }

    fn lex_word(&mut self, start: usize) -> (TokenKind, String) {
        let sigils = self.dialect.word_sigils();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (sigils && (b == b'#' || b == b'@' || b == b'$'))
            {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        match Keyword::from_str_ci(text) {
            Some(kw) => (TokenKind::Keyword(kw), text.to_string()),
            None => (TokenKind::Ident, text.to_string()),
        }
    }

    fn lex_string(&mut self, start: usize) -> Result<(TokenKind, String), LexError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // '' is an escaped quote
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        out.push('\'');
                    } else {
                        return Ok((TokenKind::String, out));
                    }
                }
                Some(b) => out.push(b as char),
                None => return Err(LexError::UnterminatedString { start }),
            }
        }
    }

    fn lex_quoted_ident(
        &mut self,
        start: usize,
        _open: u8,
        close: u8,
    ) -> Result<(TokenKind, String), LexError> {
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b) if b == close => return Ok((TokenKind::QuotedIdent, out)),
                Some(b) => out.push(b as char),
                None => return Err(LexError::UnterminatedQuotedIdent { start }),
            }
        }
    }

    fn lex_number(&mut self, start: usize) -> Result<(TokenKind, String), LexError> {
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' if !seen_dot && !seen_exp => {
                    // Don't absorb a dot that starts a qualified name like
                    // `1.x` — only continue if a digit follows.
                    if self.peek2().is_some_and(|c| c.is_ascii_digit())
                        || !seen_digit_after(&self.bytes[start..self.pos])
                    {
                        seen_dot = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if !seen_exp => {
                    let next = self.peek2();
                    let next2 = self.bytes.get(self.pos + 2).copied();
                    let exp_ok = matches!(next, Some(c) if c.is_ascii_digit())
                        || (matches!(next, Some(b'+') | Some(b'-'))
                            && matches!(next2, Some(c) if c.is_ascii_digit()));
                    if exp_ok {
                        seen_exp = true;
                        self.pos += 1; // e
                        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        match text.parse::<f64>() {
            Ok(v) => Ok((TokenKind::Number(v), text.to_string())),
            Err(_) => Err(LexError::MalformedNumber {
                text: text.to_string(),
                offset: start,
            }),
        }
    }
}

fn seen_digit_after(prefix: &[u8]) -> bool {
    // helper used while deciding whether `.` continues a number: if we have
    // already consumed at least one digit, a bare trailing dot like `1.` is
    // still a valid float in SQL.
    prefix.iter().any(|b| b.is_ascii_digit())
}

impl Iterator for Lexer<'_> {
    type Item = Result<Token, LexError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_token().transpose()
    }
}

/// Tokenize `src` fully in [`Dialect::Squ`], failing on the first
/// lexical error.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    tokenize_dialect(src, Dialect::Squ)
}

/// Tokenize `src` fully under `dialect` token rules, failing on the
/// first lexical error.
pub fn tokenize_dialect(src: &str, dialect: Dialect) -> Result<Vec<Token>, LexError> {
    Lexer::with_dialect(src, dialect).collect()
}

/// Tokenize `src`, skipping unlexable bytes instead of failing.
///
/// Used when the pipeline must make progress on deliberately-corrupted SQL
/// (the benchmark's error-injected corpora): returns all tokens that *can*
/// be produced plus the list of errors encountered.
pub fn tokenize_lossy(src: &str) -> (Vec<Token>, Vec<LexError>) {
    tokenize_lossy_dialect(src, Dialect::Squ)
}

/// [`tokenize_lossy`] under `dialect` token rules.
pub fn tokenize_lossy_dialect(src: &str, dialect: Dialect) -> (Vec<Token>, Vec<LexError>) {
    let mut lx = Lexer::with_dialect(src, dialect);
    let mut toks = Vec::new();
    let mut errs = Vec::new();
    loop {
        match lx.next_token() {
            Ok(Some(t)) => toks.push(t),
            Ok(None) => break,
            Err(e) => {
                // `next_token` already advanced past the offending char for
                // UnexpectedChar; for unterminated constructs we are at EOF.
                errs.push(e.clone());
                match e {
                    LexError::UnexpectedChar { .. } => continue,
                    _ => break,
                }
            }
        }
    }
    (toks, errs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_select() {
        let toks = tokenize("SELECT plate, mjd FROM SpecObj WHERE z > 0.5").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1].text, "plate");
        assert_eq!(toks[2].kind, TokenKind::Comma);
        assert_eq!(toks[3].text, "mjd");
        assert_eq!(toks[4].kind, TokenKind::Keyword(Keyword::From));
        assert_eq!(toks[5].text, "SpecObj");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Number(0.5));
    }

    #[test]
    fn word_indices_track_whitespace_words() {
        let toks = tokenize("SELECT s.plate FROM SpecObj AS s").unwrap();
        // "s.plate" is one word made of three tokens
        let s_tok = &toks[1];
        let dot = &toks[2];
        let plate = &toks[3];
        assert_eq!(s_tok.word_index, 1);
        assert_eq!(dot.word_index, 1);
        assert_eq!(plate.word_index, 1);
        assert_eq!(toks[4].word_index, 2); // FROM
    }

    #[test]
    fn operators() {
        let k = kinds("a = b <> c != d < e <= f > g >= h");
        let ops: Vec<_> = k
            .into_iter()
            .filter_map(|k| match k {
                TokenKind::CompareOp(op) => Some(op),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                CompareOp::Eq,
                CompareOp::NotEq,
                CompareOp::NotEq,
                CompareOp::Lt,
                CompareOp::LtEq,
                CompareOp::Gt,
                CompareOp::GtEq
            ]
        );
    }

    #[test]
    fn string_literals_and_escapes() {
        let toks = tokenize("WHERE name = 'volvo'").unwrap();
        assert_eq!(toks[3].kind, TokenKind::String);
        assert_eq!(toks[3].text, "volvo");
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks[0].text, "it's");
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize(r#"SELECT "weird name", [bracketed] FROM t"#).unwrap();
        assert_eq!(toks[1].kind, TokenKind::QuotedIdent);
        assert_eq!(toks[1].text, "weird name");
        assert_eq!(toks[3].kind, TokenKind::QuotedIdent);
        assert_eq!(toks[3].text, "bracketed");
    }

    #[test]
    fn numbers() {
        let toks = tokenize("1 2.5 0.5 1e3 1.5e-2 .25").unwrap();
        let vals: Vec<f64> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(vals, vec![1.0, 2.5, 0.5, 1000.0, 0.015, 0.25]);
    }

    #[test]
    fn qualified_number_dot_ident_not_absorbed() {
        // `p.ra` after a number: ensure `1.x` doesn't swallow the dot badly
        let toks = tokenize("SELECT 1, p.ra FROM t AS p").unwrap();
        assert!(toks.iter().any(|t| t.text == "ra"));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT x -- trailing\nFROM t /* block */ WHERE y = 1").unwrap();
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["SELECT", "x", "FROM", "t", "WHERE", "y", "=", "1"]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(
            tokenize("SELECT 'oops"),
            Err(LexError::UnterminatedString { .. })
        ));
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(matches!(
            tokenize("SELECT /* oops"),
            Err(LexError::UnterminatedComment { .. })
        ));
    }

    #[test]
    fn unexpected_char_is_error_and_lossy_recovers() {
        assert!(matches!(
            tokenize("SELECT ? FROM t"),
            Err(LexError::UnexpectedChar { ch: '?', .. })
        ));
        let (toks, errs) = tokenize_lossy("SELECT ? FROM t");
        assert_eq!(errs.len(), 1);
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["SELECT", "FROM", "t"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").unwrap().is_empty());
        assert!(tokenize("   \n\t ").unwrap().is_empty());
    }

    #[test]
    fn semicolon_and_concat() {
        let k = kinds("a || b;");
        assert!(k.contains(&TokenKind::Concat));
        assert!(k.contains(&TokenKind::Semicolon));
    }

    #[test]
    fn dialect_quote_rules() {
        // backtick quoting is a MySQL/SQLite thing, rejected elsewhere
        let toks = tokenize_dialect("SELECT `weird name` FROM t", Dialect::Mysql).unwrap();
        assert_eq!(toks[1].kind, TokenKind::QuotedIdent);
        assert_eq!(toks[1].text, "weird name");
        assert!(tokenize("SELECT `x` FROM t").is_err());
        assert!(tokenize_dialect("SELECT `x` FROM t", Dialect::Postgres).is_err());
        // brackets are Squ/SQLite/T-SQL, not Postgres or MySQL
        assert!(tokenize_dialect("SELECT [x] FROM t", Dialect::Tsql).is_ok());
        assert!(tokenize_dialect("SELECT [x] FROM t", Dialect::Postgres).is_err());
        // double quotes are everywhere except MySQL
        assert!(tokenize_dialect(r#"SELECT "x" FROM t"#, Dialect::Postgres).is_ok());
        assert!(tokenize_dialect(r#"SELECT "x" FROM t"#, Dialect::Mysql).is_err());
    }

    #[test]
    fn dialect_hash_comments_and_word_sigils() {
        // `#` opens a line comment only in MySQL
        let toks = tokenize_dialect("SELECT x # trailing\nFROM t", Dialect::Mysql).unwrap();
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["SELECT", "x", "FROM", "t"]);
        // in Squ and T-SQL, `#` starts a word (CasJobs temp tables)
        for d in [Dialect::Squ, Dialect::Tsql] {
            let toks = tokenize_dialect("SELECT a FROM #tmp", d).unwrap();
            assert_eq!(toks.last().unwrap().text, "#tmp");
        }
        // elsewhere `#` is simply an unexpected character
        assert!(matches!(
            tokenize_dialect("SELECT a FROM #tmp", Dialect::Postgres),
            Err(LexError::UnexpectedChar { ch: '#', .. })
        ));
    }

    #[test]
    fn squ_dialect_is_the_default_behavior() {
        let src = r#"SELECT "a", [b], #t, @v FROM x -- c"#;
        let default = tokenize(src).unwrap();
        let explicit = tokenize_dialect(src, Dialect::Squ).unwrap();
        assert_eq!(default, explicit);
    }

    #[test]
    fn spans_reconstruct_source_tokens() {
        let src = "SELECT  plate ,mjd FROM SpecObj";
        for t in tokenize(src).unwrap() {
            match t.kind {
                TokenKind::String | TokenKind::QuotedIdent => {}
                _ => assert_eq!(t.span.slice(src), t.text),
            }
        }
    }
}
