//! Property tests: transformation soundness by differential execution.
//!
//! For *every* workload query the generator can produce (not just the
//! curated unit-test inputs), each applicable equivalence transform must
//! preserve results on all witnesses, and each applicable non-equivalence
//! transform that the builder would accept must differ on some witness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use squ_engine::witness_batch;
use squ_parser::{parse_query, print_query};
use squ_schema::schemas::sdss;
use squ_tasks::{apply_equiv, differential_verdict, EquivType, Verdict};
use squ_workload::gen::{GenProfile, QueryGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every applicable equivalence transform agrees on every witness, for
    /// arbitrary generated SDSS queries.
    #[test]
    fn equiv_transforms_sound_on_generated_queries(seed in 0u64..10_000) {
        let schema = sdss();
        let mut g = QueryGenerator::new(&schema, GenProfile::default(), seed);
        let stmt = g.generate();
        let Some(q) = stmt.query() else { return Ok(()) };
        // normalize through print/parse so the transform sees what the
        // benchmark pipeline sees
        let q = parse_query(&print_query(q)).expect("generated queries round-trip");
        let witnesses = witness_batch(&schema, seed ^ 0xC0FFEE);
        let mut rng = StdRng::seed_from_u64(seed);
        for ty in EquivType::ALL {
            if let Some((q1, q2)) = apply_equiv(&q, ty, &mut rng) {
                let verdict = differential_verdict(&q1, &q2, &witnesses);
                prop_assert!(
                    verdict != Verdict::Differed,
                    "{ty} broke equivalence:\n  {}\n  {}",
                    print_query(&q1),
                    print_query(&q2)
                );
            }
        }
    }

    /// Transforms are deterministic given the same RNG seed.
    #[test]
    fn transforms_deterministic(seed in 0u64..10_000) {
        let schema = sdss();
        let mut g = QueryGenerator::new(&schema, GenProfile::default(), seed);
        let stmt = g.generate();
        let Some(q) = stmt.query() else { return Ok(()) };
        for ty in EquivType::ALL {
            let a = apply_equiv(q, ty, &mut StdRng::seed_from_u64(seed));
            let b = apply_equiv(q, ty, &mut StdRng::seed_from_u64(seed));
            match (a, b) {
                (None, None) => {}
                (Some((a1, a2)), Some((b1, b2))) => {
                    prop_assert_eq!(print_query(&a1), print_query(&b1));
                    prop_assert_eq!(print_query(&a2), print_query(&b2));
                }
                _ => prop_assert!(false, "{ty} applicability flipped"),
            }
        }
    }

    /// Transformed queries still parse and print round-trip.
    #[test]
    fn transformed_queries_round_trip(seed in 0u64..10_000) {
        let schema = sdss();
        let mut g = QueryGenerator::new(&schema, GenProfile::default(), seed);
        let stmt = g.generate();
        let Some(q) = stmt.query() else { return Ok(()) };
        let mut rng = StdRng::seed_from_u64(seed);
        for ty in EquivType::ALL {
            if let Some((q1, q2)) = apply_equiv(q, ty, &mut rng) {
                for qq in [&q1, &q2] {
                    let printed = print_query(qq);
                    let reparsed = parse_query(&printed)
                        .unwrap_or_else(|e| panic!("{ty}: {printed}: {e}"));
                    prop_assert_eq!(qq, &reparsed, "{} round-trip", ty);
                }
            }
        }
    }
}
