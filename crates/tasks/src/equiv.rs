//! Query-equivalence datasets (paper §3.1 `query_equiv`,
//! `query_equiv_type`).
//!
//! Ten equivalence-preserving and eight equivalence-breaking
//! transformations. Every produced pair is **differentially verified** on a
//! batch of witness databases: equivalent pairs must agree on *all*
//! witnesses, non-equivalent pairs must disagree on *at least one* — so the
//! labels are machine-checked, which is strictly stronger than the paper's
//! manual construction.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use squ_engine::{execute_query, witness_batch_cached, Database};
use squ_parser::ast::*;
use squ_parser::{parse_query, print_query, CompareOp};
use squ_workload::{schema_for, Dataset, WorkloadQuery};

/// The ten equivalence-preserving transformation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EquivType {
    /// Re-arranging WHERE conjuncts (`reorder-conditions`).
    ReorderConditions,
    /// Rewriting via a common table expression (`cte`).
    Cte,
    /// Join ⇔ `IN` subquery (`join-nested`).
    JoinNested,
    /// `IN` subquery ⇔ correlated `EXISTS` (`swap-subqueries`).
    SwapSubqueries,
    /// `BETWEEN` ⇔ closed range conjunction (`between-range`).
    BetweenRange,
    /// `IN` list ⇔ `OR` chain (`in-to-or`).
    InToOr,
    /// `p AND q` ⇔ `NOT (NOT p OR NOT q)` (`demorgan`).
    DeMorgan,
    /// `a > b` ⇔ `b < a` (`comparison-flip`).
    ComparisonFlip,
    /// Consistent alias renaming (`alias-rename`).
    AliasRename,
    /// Wrapping in a derived table (`derived-table`).
    DerivedTable,
}

impl EquivType {
    /// All ten types.
    pub const ALL: [EquivType; 10] = [
        EquivType::ReorderConditions,
        EquivType::Cte,
        EquivType::JoinNested,
        EquivType::SwapSubqueries,
        EquivType::BetweenRange,
        EquivType::InToOr,
        EquivType::DeMorgan,
        EquivType::ComparisonFlip,
        EquivType::AliasRename,
        EquivType::DerivedTable,
    ];

    /// Benchmark label.
    pub fn label(&self) -> &'static str {
        match self {
            EquivType::ReorderConditions => "reorder-conditions",
            EquivType::Cte => "cte",
            EquivType::JoinNested => "join-nested",
            EquivType::SwapSubqueries => "swap-subqueries",
            EquivType::BetweenRange => "between-range",
            EquivType::InToOr => "in-to-or",
            EquivType::DeMorgan => "demorgan",
            EquivType::ComparisonFlip => "comparison-flip",
            EquivType::AliasRename => "alias-rename",
            EquivType::DerivedTable => "derived-table",
        }
    }
}

impl std::fmt::Display for EquivType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The eight equivalence-breaking transformation types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonEquivType {
    /// Swapping the aggregate function, e.g. AVG → SUM (`agg-function`).
    AggFunction,
    /// Changing the join type, e.g. INNER → LEFT (`change-join-condition`).
    ChangeJoinCondition,
    /// AND ⇔ OR (`logical-conditions`).
    LogicalConditions,
    /// Changing a comparison literal (`value-change`).
    ValueChange,
    /// Reversing a comparison direction (`comparison-direction`).
    ComparisonDirection,
    /// Adding/removing DISTINCT (`distinct-change`).
    DistinctChange,
    /// Projecting a different column (`projection-change`).
    ProjectionChange,
    /// Dropping a WHERE conjunct (`where-drop`).
    WhereDrop,
}

impl NonEquivType {
    /// All eight types.
    pub const ALL: [NonEquivType; 8] = [
        NonEquivType::AggFunction,
        NonEquivType::ChangeJoinCondition,
        NonEquivType::LogicalConditions,
        NonEquivType::ValueChange,
        NonEquivType::ComparisonDirection,
        NonEquivType::DistinctChange,
        NonEquivType::ProjectionChange,
        NonEquivType::WhereDrop,
    ];

    /// Benchmark label.
    pub fn label(&self) -> &'static str {
        match self {
            NonEquivType::AggFunction => "agg-function",
            NonEquivType::ChangeJoinCondition => "change-join-condition",
            NonEquivType::LogicalConditions => "logical-conditions",
            NonEquivType::ValueChange => "value-change",
            NonEquivType::ComparisonDirection => "comparison-direction",
            NonEquivType::DistinctChange => "distinct-change",
            NonEquivType::ProjectionChange => "projection-change",
            NonEquivType::WhereDrop => "where-drop",
        }
    }
}

impl std::fmt::Display for NonEquivType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One labeled query pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EquivExample {
    /// Source workload query id.
    pub query_id: String,
    /// Schema name.
    pub schema_name: String,
    /// First query of the pair.
    pub sql1: String,
    /// Second query of the pair.
    pub sql2: String,
    /// Ground truth: are the queries equivalent?
    pub equivalent: bool,
    /// Transformation label (one of the 10 + 8 types).
    pub transform: String,
    /// Properties of the first query (used for failure slicing).
    pub props: squ_workload::QueryProps,
}

// ---------------- equivalence transforms ----------------

/// Apply an equivalence-preserving transform; `None` if inapplicable.
pub fn apply_equiv(q: &Query, ty: EquivType, rng: &mut StdRng) -> Option<(Query, Query)> {
    match ty {
        EquivType::ReorderConditions => reorder_conditions(q),
        EquivType::Cte => Some((q.clone(), wrap_cte(q)?)),
        EquivType::JoinNested => join_to_nested(q),
        EquivType::SwapSubqueries => in_to_exists(q),
        EquivType::BetweenRange => between_to_range(q),
        EquivType::InToOr => in_list_to_or(q),
        EquivType::DeMorgan => de_morgan(q),
        EquivType::ComparisonFlip => comparison_flip(q, rng),
        EquivType::AliasRename => alias_rename(q),
        EquivType::DerivedTable => Some((q.clone(), wrap_derived(q)?)),
    }
}

/// Number of base tables in a select's FROM (join trees flattened).
fn from_table_count(select: &Select) -> usize {
    fn count(tr: &TableRef) -> usize {
        match tr {
            TableRef::Named { .. } | TableRef::Derived { .. } => 1,
            TableRef::Join { left, right, .. } => count(left) + count(right),
        }
    }
    select.from.iter().map(count).sum()
}

fn top_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = top_conjuncts(a);
            out.extend(top_conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

fn rebuild_and(parts: Vec<Expr>) -> Option<Expr> {
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| acc.and(p)))
}

fn reorder_conditions(q: &Query) -> Option<(Query, Query)> {
    let select = q.as_select()?;
    let w = select.selection.as_ref()?;
    let mut parts = top_conjuncts(w);
    if parts.len() < 2 {
        return None;
    }
    parts.reverse();
    let mut q2 = q.clone();
    q2.as_select_mut()?.selection = rebuild_and(parts);
    Some((q.clone(), q2))
}

/// Output column names usable from an outer query (plain names only).
fn plain_output_names(q: &Query) -> Vec<String> {
    let select = match &q.body {
        SetExpr::Select(s) => s,
        _ => return Vec::new(),
    };
    select
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Expr { alias: Some(a), .. } => Some(a.clone()),
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => Some(c.name.clone()),
            _ => None,
        })
        .collect()
}

/// Split ORDER BY / LIMIT off a query so it can be nested; items that can't
/// be expressed against the wrapper are the caller's cue to bail out.
fn hoistable(q: &Query) -> Option<(Query, Vec<OrderItem>, Option<u64>)> {
    let names = plain_output_names(q);
    let mut inner = q.clone();
    let order_by = std::mem::take(&mut inner.order_by);
    let limit = inner.limit.take();
    // ORDER BY entries must be plain output column names to survive hoisting
    for o in &order_by {
        match &o.expr {
            Expr::Column(c)
                if c.qualifier.is_none()
                    && names.iter().any(|n| n.eq_ignore_ascii_case(&c.name)) => {}
            _ => return None,
        }
    }
    let order_by = order_by
        .into_iter()
        .map(|o| OrderItem {
            expr: match o.expr {
                Expr::Column(c) => Expr::column(None, &c.name),
                other => other,
            },
            desc: o.desc,
        })
        .collect();
    Some((inner, order_by, limit))
}

fn wrap_cte(q: &Query) -> Option<Query> {
    if !q.ctes.is_empty() {
        return None; // avoid nesting CTE prologues
    }
    let (inner, order_by, limit) = hoistable(q)?;
    Some(Query {
        ctes: vec![Cte {
            name: "w".into(),
            query: Box::new(inner),
        }],
        body: SetExpr::Select(Box::new(Select {
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::named("w", None)],
            ..Select::new()
        })),
        order_by,
        limit,
        span: Span::default(),
    })
}

fn wrap_derived(q: &Query) -> Option<Query> {
    if !q.ctes.is_empty() {
        return None;
    }
    let (inner, order_by, limit) = hoistable(q)?;
    Some(Query {
        ctes: Vec::new(),
        body: SetExpr::Select(Box::new(Select {
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::Derived {
                query: Box::new(inner),
                alias: Some("d".into()),
            }],
            ..Select::new()
        })),
        order_by,
        limit,
        span: Span::default(),
    })
}

/// `DISTINCT proj(left) FROM left JOIN right ON l = r WHERE …` ⇔
/// `DISTINCT proj(left) FROM left WHERE … AND l IN (SELECT r FROM right WHERE right-preds)`.
/// Requires: single 2-table inner join, single-equality ON, projection and
/// residual predicates touching only the left side.
fn join_to_nested(q: &Query) -> Option<(Query, Query)> {
    let select = q.as_select()?;
    if !select.group_by.is_empty() || select.having.is_some() || select.from.len() != 1 {
        return None;
    }
    let TableRef::Join {
        left,
        right,
        kind: JoinKind::Inner,
        constraint: JoinConstraint::On(on),
    } = &select.from[0]
    else {
        return None;
    };
    let (
        TableRef::Named {
            name: lname,
            alias: lalias,
        },
        TableRef::Named {
            name: rname,
            alias: ralias,
        },
    ) = (&**left, &**right)
    else {
        return None;
    };
    let lbind = lalias.clone().unwrap_or_else(|| lname.clone());
    let rbind = ralias.clone().unwrap_or_else(|| rname.clone());
    // ON must be a single equality between the two sides
    let Expr::Compare {
        op: CompareOp::Eq,
        left: on_l,
        right: on_r,
    } = on
    else {
        return None;
    };
    let (lcol, rcol) = match (&**on_l, &**on_r) {
        (Expr::Column(a), Expr::Column(b)) => {
            let qa = a.qualifier.as_deref()?;
            let qb = b.qualifier.as_deref()?;
            if qa.eq_ignore_ascii_case(&lbind) && qb.eq_ignore_ascii_case(&rbind) {
                (a.name.clone(), b.name.clone())
            } else if qa.eq_ignore_ascii_case(&rbind) && qb.eq_ignore_ascii_case(&lbind) {
                (b.name.clone(), a.name.clone())
            } else {
                return None;
            }
        }
        _ => return None,
    };
    // projection must touch only the left binding
    let touches_only = |e: &Expr, bind: &str| -> bool {
        let mut ok = true;
        fn chk(e: &Expr, bind: &str, ok: &mut bool) {
            if let Expr::Column(c) = e {
                match &c.qualifier {
                    Some(q) if q.eq_ignore_ascii_case(bind) => {}
                    _ => *ok = false,
                }
            }
            e.for_each_child(&mut |ch| chk(ch, bind, ok));
        }
        chk(e, bind, &mut ok);
        ok
    };
    for item in &select.items {
        match item {
            SelectItem::Expr { expr, .. } if touches_only(expr, &lbind) => {}
            _ => return None,
        }
    }
    // split WHERE conjuncts by side
    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    if let Some(w) = &select.selection {
        for c in top_conjuncts(w) {
            if touches_only(&c, &lbind) {
                left_preds.push(c);
            } else if touches_only(&c, &rbind) {
                right_preds.push(strip_qualifier(&c, &rbind));
            } else {
                return None; // mixed predicate: bail
            }
        }
    }
    // Q1: the join with DISTINCT forced (set semantics on both sides)
    let mut q1 = q.clone();
    q1.as_select_mut()?.distinct = true;
    // Q2: the IN-subquery form
    let inner = Select {
        items: vec![SelectItem::column(None, &rcol)],
        from: vec![TableRef::named(rname, None)],
        selection: rebuild_and(right_preds),
        ..Select::new()
    };
    let in_pred = Expr::InSubquery {
        expr: Box::new(Expr::column(Some(&lbind), &lcol)),
        subquery: Box::new(Query::from_select(inner)),
        negated: false,
    };
    left_preds.push(in_pred);
    let q2_sel = Select {
        distinct: true,
        items: select.items.clone(),
        from: vec![TableRef::named(lname, lalias.as_deref())],
        selection: rebuild_and(left_preds),
        ..Select::new()
    };
    let mut q2 = q.clone();
    q2.body = SetExpr::Select(Box::new(q2_sel));
    Some((q1, q2))
}

/// Remove the given qualifier from column refs (for predicates moved into
/// a subquery whose table is referenced without an alias).
fn strip_qualifier(e: &Expr, bind: &str) -> Expr {
    let mut out = e.clone();
    fn walk(e: &mut Expr, bind: &str) {
        if let Expr::Column(c) = e {
            if c.qualifier
                .as_deref()
                .is_some_and(|q| q.eq_ignore_ascii_case(bind))
            {
                c.qualifier = None;
            }
        }
        mutate_children(e, &mut |ch| walk(ch, bind));
    }
    walk(&mut out, bind);
    out
}

/// `a IN (SELECT x FROM T WHERE p)` ⇔ `EXISTS (SELECT 1 FROM T AS sq WHERE sq.x = a AND p)`.
fn in_to_exists(q: &Query) -> Option<(Query, Query)> {
    let mut q2 = q.clone();
    // Outer binding names — needed to qualify the correlated reference so
    // the inner table's same-named columns cannot capture it.
    let outer_bindings: Vec<String> = {
        let select = q.as_select()?;
        let mut out = Vec::new();
        fn collect(tr: &TableRef, out: &mut Vec<String>) {
            match tr {
                TableRef::Named { name, alias } => {
                    out.push(alias.clone().unwrap_or_else(|| name.clone()))
                }
                TableRef::Derived { alias, .. } => {
                    if let Some(a) = alias {
                        out.push(a.clone());
                    }
                }
                TableRef::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
            }
        }
        for tr in &select.from {
            collect(tr, &mut out);
        }
        out
    };
    let select = q2.as_select_mut()?;
    let w = select.selection.as_mut()?;
    let mut done = false;
    rewrite_expr(w, &mut |e| {
        if done {
            return;
        }
        if let Expr::InSubquery {
            expr,
            subquery,
            negated,
        } = e
        {
            // inner must be a simple single-table, single-column select
            let Some(inner) = subquery.as_select() else {
                return;
            };
            if inner.from.len() != 1 || !subquery.ctes.is_empty() {
                return;
            }
            let TableRef::Named { name, alias } = &inner.from[0] else {
                return;
            };
            let icol = match inner.items.first() {
                Some(SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                }) => c.clone(),
                _ => return,
            };
            let ibind = alias.clone().unwrap_or_else(|| name.clone());
            // qualify the outer side so the inner table cannot capture it
            let outer_expr = match &**expr {
                Expr::Column(c) if c.qualifier.is_none() => {
                    if outer_bindings.len() != 1 {
                        return; // can't qualify unambiguously
                    }
                    Expr::Column(ColumnRef {
                        qualifier: Some(outer_bindings[0].clone()),
                        name: c.name.clone(),
                        span: Span::default(),
                    })
                }
                Expr::Column(c) => Expr::Column(c.clone()),
                _ => return, // non-column probe: leave this site alone
            };
            // a subquery over the same binding name would still capture
            if let Expr::Column(c) = &outer_expr {
                if c.qualifier
                    .as_deref()
                    .is_some_and(|q| q.eq_ignore_ascii_case(&ibind))
                {
                    return;
                }
            }
            let corr = Expr::Column(ColumnRef {
                qualifier: Some(ibind),
                name: icol.name,
                span: Span::default(),
            })
            .compare(CompareOp::Eq, outer_expr);
            let mut new_inner = inner.clone();
            new_inner.items = vec![SelectItem::Expr {
                expr: Expr::number(1.0),
                alias: None,
            }];
            new_inner.selection = Some(match new_inner.selection.take() {
                Some(p) => corr.and(p),
                None => corr,
            });
            *e = Expr::Exists {
                subquery: Box::new(Query::from_select(new_inner)),
                negated: *negated,
            };
            done = true;
        }
    });
    done.then(|| (q.clone(), q2))
}

fn between_to_range(q: &Query) -> Option<(Query, Query)> {
    let mut q2 = q.clone();
    let select = q2.as_select_mut()?;
    let w = select.selection.as_mut()?;
    let mut done = false;
    rewrite_expr(w, &mut |e| {
        if done {
            return;
        }
        if let Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } = e
        {
            let lo = (**expr).clone().compare(CompareOp::GtEq, (**low).clone());
            let hi = (**expr).clone().compare(CompareOp::LtEq, (**high).clone());
            *e = lo.and(hi);
            done = true;
        }
    });
    done.then(|| (q.clone(), q2))
}

fn in_list_to_or(q: &Query) -> Option<(Query, Query)> {
    let mut q2 = q.clone();
    let select = q2.as_select_mut()?;
    let w = select.selection.as_mut()?;
    let mut done = false;
    rewrite_expr(w, &mut |e| {
        if done {
            return;
        }
        if let Expr::InList {
            expr,
            list,
            negated: false,
        } = e
        {
            if list.is_empty() {
                return;
            }
            let mut ors = list
                .iter()
                .map(|v| (**expr).clone().compare(CompareOp::Eq, v.clone()));
            let first = ors.next().expect("non-empty checked"); // lint:allow: emptiness checked above
            *e = ors.fold(first, |acc, p| acc.or(p));
            done = true;
        }
    });
    done.then(|| (q.clone(), q2))
}

fn de_morgan(q: &Query) -> Option<(Query, Query)> {
    let select = q.as_select()?;
    // Rewriting the WHERE into a single NOT(…) destroys conjunct pushdown;
    // on wide implicit joins the rewritten query would exceed any executor
    // budget, so the transform is restricted to narrow queries.
    if from_table_count(select) > 4 {
        return None;
    }
    let w = select.selection.as_ref()?;
    if !matches!(w, Expr::And(_, _)) {
        return None;
    }
    let Expr::And(a, b) = w.clone() else {
        return None;
    };
    let rewritten = Expr::Not(Box::new(Expr::Or(
        Box::new(Expr::Not(a)),
        Box::new(Expr::Not(b)),
    )));
    let mut q2 = q.clone();
    q2.as_select_mut()?.selection = Some(rewritten);
    Some((q.clone(), q2))
}

fn comparison_flip(q: &Query, rng: &mut StdRng) -> Option<(Query, Query)> {
    let mut q2 = q.clone();
    let select = q2.as_select_mut()?;
    let w = select.selection.as_mut()?;
    // count flippable sites, then flip one at random
    let mut sites = 0usize;
    rewrite_expr(w, &mut |e| {
        if matches!(e, Expr::Compare { .. }) {
            sites += 1;
        }
    });
    if sites == 0 {
        return None;
    }
    let target = rng.gen_range(0..sites);
    let mut i = 0usize;
    rewrite_expr(w, &mut |e| {
        if let Expr::Compare { op, left, right } = e {
            if i == target {
                std::mem::swap(left, right);
                *op = op.flipped();
            }
            i += 1;
        }
    });
    Some((q.clone(), q2))
}

fn alias_rename(q: &Query) -> Option<(Query, Query)> {
    // collect alias names in the outer select
    let select = q.as_select()?;
    let mut aliases = Vec::new();
    fn collect(tr: &TableRef, out: &mut Vec<String>) {
        match tr {
            TableRef::Named { alias: Some(a), .. } => out.push(a.clone()),
            TableRef::Join { left, right, .. } => {
                collect(left, out);
                collect(right, out);
            }
            _ => {}
        }
    }
    for tr in &select.from {
        collect(tr, &mut aliases);
    }
    if aliases.is_empty() {
        return None;
    }
    let mapping: Vec<(String, String)> = aliases
        .iter()
        .enumerate()
        .map(|(i, a)| (a.clone(), format!("r{}", i + 1)))
        .collect();
    let mut q2 = q.clone();
    let select2 = q2.as_select_mut()?;
    fn rename_tr(tr: &mut TableRef, map: &[(String, String)]) {
        match tr {
            TableRef::Named { alias: Some(a), .. } => {
                if let Some((_, n)) = map.iter().find(|(o, _)| o.eq_ignore_ascii_case(a)) {
                    *a = n.clone();
                }
            }
            TableRef::Join {
                left,
                right,
                constraint,
                ..
            } => {
                rename_tr(left, map);
                rename_tr(right, map);
                if let JoinConstraint::On(e) = constraint {
                    rename_in_expr(e, map);
                }
            }
            _ => {}
        }
    }
    fn rename_in_expr(e: &mut Expr, map: &[(String, String)]) {
        if let Expr::Column(c) = e {
            if let Some(qual) = &c.qualifier {
                if let Some((_, n)) = map.iter().find(|(o, _)| o.eq_ignore_ascii_case(qual)) {
                    c.qualifier = Some(n.clone());
                }
            }
        }
        mutate_children(e, &mut |ch| rename_in_expr(ch, map));
    }
    for tr in &mut select2.from {
        rename_tr(tr, &mapping);
    }
    for item in &mut select2.items {
        if let SelectItem::Expr { expr, .. } = item {
            rename_in_expr(expr, &mapping);
        }
    }
    if let Some(w) = &mut select2.selection {
        rename_in_expr(w, &mapping);
    }
    for g in &mut select2.group_by {
        rename_in_expr(g, &mapping);
    }
    if let Some(h) = &mut select2.having {
        rename_in_expr(h, &mapping);
    }
    for o in &mut q2.order_by {
        rename_in_expr(&mut o.expr, &mapping);
    }
    Some((q.clone(), q2))
}

// ---------------- non-equivalence transforms ----------------

/// Apply an equivalence-*breaking* transform; `None` if inapplicable.
pub fn apply_non_equiv(q: &Query, ty: NonEquivType, rng: &mut StdRng) -> Option<(Query, Query)> {
    let mut q2 = q.clone();
    let ok = match ty {
        NonEquivType::AggFunction => change_agg_function(&mut q2),
        NonEquivType::ChangeJoinCondition => change_join_kind(&mut q2),
        NonEquivType::LogicalConditions => and_to_or(&mut q2),
        NonEquivType::ValueChange => change_value(&mut q2, rng),
        NonEquivType::ComparisonDirection => reverse_comparison(&mut q2),
        NonEquivType::DistinctChange => toggle_distinct(&mut q2),
        NonEquivType::ProjectionChange => change_projection(&mut q2),
        NonEquivType::WhereDrop => drop_conjunct(&mut q2),
    };
    ok.then_some((q.clone(), q2))
}

fn change_agg_function(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            let mut done = false;
            rewrite_expr(expr, &mut |e| {
                if done {
                    return;
                }
                if let Expr::Function { name, .. } = e {
                    let swap = match name.to_ascii_uppercase().as_str() {
                        "AVG" => Some("SUM"),
                        "SUM" => Some("AVG"),
                        "MIN" => Some("MAX"),
                        "MAX" => Some("MIN"),
                        _ => None,
                    };
                    if let Some(s) = swap {
                        *name = s.to_string();
                        done = true;
                    }
                }
            });
            if done {
                return true;
            }
        }
    }
    false
}

fn change_join_kind(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    fn walk(tr: &mut TableRef) -> bool {
        if let TableRef::Join {
            kind, left, right, ..
        } = tr
        {
            if *kind == JoinKind::Inner {
                *kind = JoinKind::Left;
                return true;
            }
            return walk(left) || walk(right);
        }
        false
    }
    select.from.iter_mut().any(walk)
}

fn and_to_or(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    // see de_morgan: an OR at the top defeats pushdown on wide joins
    if from_table_count(select) > 4 {
        return false;
    }
    match select.selection.as_mut() {
        Some(Expr::And(a, b)) => {
            let (a, b) = (a.clone(), b.clone());
            select.selection = Some(Expr::Or(a, b));
            true
        }
        _ => false,
    }
}

fn change_value(q: &mut Query, rng: &mut StdRng) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    let Some(w) = select.selection.as_mut() else {
        return false;
    };
    // Count candidate literal sites first, then edit one drawn at random,
    // so each retry can explore a different comparison instead of always
    // re-shifting the first one.
    let mut sites = 0usize;
    rewrite_expr(w, &mut |e| {
        if let Expr::Compare { right, .. } = e {
            if matches!(&**right, Expr::Literal(Literal::Number(_))) {
                sites += 1;
            }
        }
    });
    if sites == 0 {
        return false;
    }
    let target = rng.gen_range(0..sites);
    let mut seen = 0usize;
    let mut done = false;
    rewrite_expr(w, &mut |e| {
        if let Expr::Compare { right, .. } = e {
            if let Expr::Literal(Literal::Number(v)) = &mut **right {
                if seen == target {
                    // shift far enough to move the cut-point across the
                    // witness value range (0..1000)
                    let delta = rng.gen_range(200.0..600.0_f64);
                    *v = if *v > 500.0 { *v - delta } else { *v + delta };
                    *v = (*v * 10.0).round() / 10.0;
                    done = true;
                }
                seen += 1;
            }
        }
    });
    done
}

fn reverse_comparison(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    let Some(w) = select.selection.as_mut() else {
        return false;
    };
    let mut done = false;
    rewrite_expr(w, &mut |e| {
        if done {
            return;
        }
        if let Expr::Compare { op, right, .. } = e {
            // only reverse against literals (reversing join conditions
            // would often still be satisfiable the same way)
            if matches!(**right, Expr::Literal(Literal::Number(_)))
                && matches!(
                    op,
                    CompareOp::Lt | CompareOp::LtEq | CompareOp::Gt | CompareOp::GtEq
                )
            {
                *op = match *op {
                    CompareOp::Lt => CompareOp::Gt,
                    CompareOp::LtEq => CompareOp::GtEq,
                    CompareOp::Gt => CompareOp::Lt,
                    CompareOp::GtEq => CompareOp::LtEq,
                    other => other,
                };
                done = true;
            }
        }
    });
    done
}

fn toggle_distinct(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    if select.group_by.is_empty()
        && !select
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        select.distinct = !select.distinct;
        true
    } else {
        false
    }
}

fn change_projection(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    // swap the first two projected columns' *names* → different output
    let cols: Vec<usize> = select
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, item)| match item {
            SelectItem::Expr {
                expr: Expr::Column(_),
                ..
            } => Some(i),
            _ => None,
        })
        .collect();
    if cols.len() < 2 {
        return false;
    }
    // drop the second projected column: output schema visibly changes
    select.items.remove(cols[1]);
    true
}

fn drop_conjunct(q: &mut Query) -> bool {
    let Some(select) = q.as_select_mut() else {
        return false;
    };
    match select.selection.take() {
        Some(Expr::And(a, _)) => {
            select.selection = Some(*a);
            true
        }
        other => {
            select.selection = other;
            false
        }
    }
}

// ---------------- expression rewriting plumbing ----------------

/// Visit every expression node mutably (pre-order), without descending
/// into subqueries.
fn rewrite_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    f(e);
    mutate_children(e, &mut |ch| rewrite_expr(ch, f));
}

fn mutate_children(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    match e {
        Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            f(a);
            f(b);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::Cast { expr: x, .. } => f(x),
        Expr::IsNull { expr, .. } => f(expr),
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            for x in list {
                f(x);
            }
        }
        Expr::InSubquery { expr, .. } => f(expr),
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Function { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                f(op);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(x) = else_expr {
                f(x);
            }
        }
        _ => {}
    }
}

// ---------------- differential verification ----------------

/// Verdict of differential execution on a witness batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Results agreed on every witness.
    AgreedEverywhere,
    /// Results differed on at least one witness.
    Differed,
    /// Execution failed (unsupported feature, etc.).
    Failed,
}

/// Execute both queries on every witness and compare results.
pub fn differential_verdict(q1: &Query, q2: &Query, witnesses: &[Database]) -> Verdict {
    let mut any = false;
    for db in witnesses {
        let r1 = match execute_query(q1, db) {
            Ok((r, _)) => r,
            Err(_) => return Verdict::Failed,
        };
        let r2 = match execute_query(q2, db) {
            Ok((r, _)) => r,
            Err(_) => return Verdict::Failed,
        };
        if !r1.result_equal(&r2) {
            any = true;
        }
    }
    if any {
        Verdict::Differed
    } else {
        Verdict::AgreedEverywhere
    }
}

/// Build the query-equivalence dataset: one pair per SELECT workload query,
/// alternating equivalent / non-equivalent, every label differentially
/// verified on a witness batch of the query's schema.
pub fn build_equiv_dataset(ds: &Dataset, seed: u64) -> Vec<EquivExample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE001);
    let mut out = Vec::new();
    let mut want_equiv = true;
    // Per-subtype success counts for the non-equivalent class. Transform
    // order inside `make_pair` prefers the least-represented subtype, so
    // hard-to-land edits (value changes only differ where a witness row
    // actually matches the predicate) are not crowded out by easy ones.
    let mut non_equiv_counts = [0usize; NonEquivType::ALL.len()];
    for wq in &ds.queries {
        if wq.props.query_type != "SELECT" {
            continue;
        }
        if let Some(ex) = make_pair(wq, want_equiv, &mut rng, &mut non_equiv_counts) {
            out.push(ex);
            want_equiv = !want_equiv;
        }
    }
    out
}

fn make_pair(
    wq: &WorkloadQuery,
    want_equiv: bool,
    rng: &mut StdRng,
    non_equiv_counts: &mut [usize; NonEquivType::ALL.len()],
) -> Option<EquivExample> {
    let q = parse_query(&wq.sql).ok()?;
    let schema = schema_for(wq.workload, &wq.schema_name);
    // Witness seed is keyed by schema, not by query: every pair over the
    // same schema shares one differential-testing batch, so the memoized
    // generator does the expensive work once per schema instead of once
    // per query.
    let witnesses = witness_batch_cached(&schema, 0xBEE5 ^ seed_of(&wq.schema_name));
    // A produced pair must also be statically valid: the transforms edit
    // ASTs structurally and can strand a reference (e.g. dropping the
    // projection item an ORDER BY key named). The lenient execution engine
    // still runs such queries, so differential verification alone would
    // let them through — gate on a clean binder analysis instead.
    let analyzes_clean =
        |q: &Query| squ_schema::analyze(&Statement::Query(q.clone()), &schema).is_empty();
    if want_equiv {
        let mut types = EquivType::ALL;
        types.shuffle(rng);
        for ty in types {
            if let Some((q1, q2)) = apply_equiv(&q, ty, rng) {
                if analyzes_clean(&q1)
                    && analyzes_clean(&q2)
                    && differential_verdict(&q1, &q2, &witnesses) == Verdict::AgreedEverywhere
                {
                    return Some(example(wq, &q1, &q2, true, ty.label()));
                }
            }
        }
        None
    } else {
        // Try the least-represented subtype first (random tie-break via a
        // shuffle before the stable sort), so the class stays balanced even
        // though some transforms succeed far more often than others.
        let mut order: Vec<usize> = (0..NonEquivType::ALL.len()).collect();
        order.shuffle(rng);
        order.sort_by_key(|&i| non_equiv_counts[i]);
        for i in order {
            let ty = NonEquivType::ALL[i];
            // Value changes draw the edit site and replacement from the rng,
            // so a retry can land on a literal the witnesses discriminate;
            // the other transforms are deterministic and get one shot.
            let attempts = if ty == NonEquivType::ValueChange {
                4
            } else {
                1
            };
            for _ in 0..attempts {
                if let Some((q1, q2)) = apply_non_equiv(&q, ty, rng) {
                    if analyzes_clean(&q1)
                        && analyzes_clean(&q2)
                        && differential_verdict(&q1, &q2, &witnesses) == Verdict::Differed
                    {
                        non_equiv_counts[i] += 1;
                        return Some(example(wq, &q1, &q2, false, ty.label()));
                    }
                }
            }
        }
        None
    }
}

pub(crate) fn seed_of(id: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    id.hash(&mut h);
    h.finish()
}

fn example(
    wq: &WorkloadQuery,
    q1: &Query,
    q2: &Query,
    equivalent: bool,
    transform: &str,
) -> EquivExample {
    let sql1 = print_query(q1);
    let stmt1 = Statement::Query(q1.clone());
    EquivExample {
        query_id: wq.id.clone(),
        schema_name: wq.schema_name.clone(),
        sql2: print_query(q2),
        props: squ_workload::query_props(&sql1, &stmt1),
        sql1,
        equivalent,
        transform: transform.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_engine::witness_batch;
    use squ_schema::schemas::sdss;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    fn verify_equiv(sql: &str, ty: EquivType) -> (String, String) {
        let q = parse_query(sql).unwrap();
        let (q1, q2) = apply_equiv(&q, ty, &mut rng())
            .unwrap_or_else(|| panic!("{ty} not applicable to {sql}"));
        let witnesses = witness_batch(&sdss(), 77);
        assert_eq!(
            differential_verdict(&q1, &q2, &witnesses),
            Verdict::AgreedEverywhere,
            "{ty}: {} vs {}",
            print_query(&q1),
            print_query(&q2)
        );
        (print_query(&q1), print_query(&q2))
    }

    #[test]
    fn equivalence_transforms_verified() {
        verify_equiv(
            "SELECT plate FROM SpecObj WHERE z > 0.5 AND ra < 200 AND mjd = 100",
            EquivType::ReorderConditions,
        );
        verify_equiv(
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            EquivType::Cte,
        );
        verify_equiv(
            "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 180 AND s.z > 0.5",
            EquivType::JoinNested,
        );
        verify_equiv(
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
            EquivType::SwapSubqueries,
        );
        verify_equiv(
            "SELECT plate FROM SpecObj WHERE z BETWEEN 100 AND 600",
            EquivType::BetweenRange,
        );
        verify_equiv(
            "SELECT plate FROM SpecObj WHERE plate IN (1, 2, 3)",
            EquivType::InToOr,
        );
        verify_equiv(
            "SELECT plate FROM SpecObj WHERE z > 100 AND ra < 600",
            EquivType::DeMorgan,
        );
        verify_equiv(
            "SELECT plate FROM SpecObj WHERE z > 300",
            EquivType::ComparisonFlip,
        );
        verify_equiv(
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            EquivType::AliasRename,
        );
        verify_equiv(
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            EquivType::DerivedTable,
        );
    }

    fn verify_non_equiv(sql: &str, ty: NonEquivType) {
        let q = parse_query(sql).unwrap();
        let (q1, q2) = apply_non_equiv(&q, ty, &mut rng())
            .unwrap_or_else(|| panic!("{ty} not applicable to {sql}"));
        let witnesses = witness_batch(&sdss(), 77);
        assert_eq!(
            differential_verdict(&q1, &q2, &witnesses),
            Verdict::Differed,
            "{ty}: {} vs {}",
            print_query(&q1),
            print_query(&q2)
        );
    }

    #[test]
    fn non_equivalence_transforms_verified() {
        verify_non_equiv(
            "SELECT plate, AVG(z) FROM SpecObj GROUP BY plate",
            NonEquivType::AggFunction,
        );
        verify_non_equiv(
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            NonEquivType::ChangeJoinCondition,
        );
        verify_non_equiv(
            "SELECT plate FROM SpecObj WHERE z > 300 AND ra < 500",
            NonEquivType::LogicalConditions,
        );
        verify_non_equiv(
            "SELECT plate FROM SpecObj WHERE z > 400",
            NonEquivType::ValueChange,
        );
        verify_non_equiv(
            "SELECT plate FROM SpecObj WHERE z > 400",
            NonEquivType::ComparisonDirection,
        );
        verify_non_equiv("SELECT class FROM SpecObj", NonEquivType::DistinctChange);
        verify_non_equiv(
            "SELECT plate, mjd FROM SpecObj WHERE z > 100",
            NonEquivType::ProjectionChange,
        );
        verify_non_equiv(
            "SELECT plate FROM SpecObj WHERE z > 300 AND ra < 400",
            NonEquivType::WhereDrop,
        );
    }

    #[test]
    fn inapplicable_transforms_return_none() {
        let q = parse_query("SELECT plate FROM SpecObj").unwrap();
        assert!(apply_equiv(&q, EquivType::ReorderConditions, &mut rng()).is_none());
        assert!(apply_equiv(&q, EquivType::BetweenRange, &mut rng()).is_none());
        assert!(apply_non_equiv(&q, NonEquivType::AggFunction, &mut rng()).is_none());
        assert!(apply_non_equiv(&q, NonEquivType::WhereDrop, &mut rng()).is_none());
    }

    #[test]
    fn dataset_builds_with_verified_labels() {
        let ds = squ_workload::build(squ_workload::Workload::Sdss, 2023);
        // subsample for test speed: first 60 queries
        let small = squ_workload::Dataset {
            workload: ds.workload,
            queries: ds.queries.into_iter().take(60).collect(),
        };
        let pairs = build_equiv_dataset(&small, 11);
        assert!(pairs.len() >= 40, "only {} pairs", pairs.len());
        let eq = pairs.iter().filter(|p| p.equivalent).count();
        let ne = pairs.len() - eq;
        assert!(eq >= 15 && ne >= 15, "balance {eq}/{ne}");
        // Least-represented-first selection must keep every non-equivalent
        // subtype populated — a uniform shuffle used to leave value-change
        // with a handful of pairs, starving the paper's per-subtype FP
        // analysis (tests/paper_shape.rs).
        let mut counts = std::collections::BTreeMap::new();
        for p in pairs.iter().filter(|p| !p.equivalent) {
            *counts.entry(p.transform.as_str()).or_insert(0usize) += 1;
        }
        for ty in NonEquivType::ALL {
            let n = counts.get(ty.label()).copied().unwrap_or(0);
            assert!(n >= 1, "subtype {} unrepresented ({counts:?})", ty.label());
        }
        // re-verify a sample
        for p in pairs.iter().take(10) {
            let q1 = parse_query(&p.sql1).unwrap();
            let q2 = parse_query(&p.sql2).unwrap();
            let schema = schema_for(squ_workload::Workload::Sdss, &p.schema_name);
            // same schema-keyed seed formula as make_pair
            let witnesses = witness_batch(&schema, 0xBEE5 ^ seed_of(&p.schema_name));
            let v = differential_verdict(&q1, &q2, &witnesses);
            if p.equivalent {
                assert_eq!(v, Verdict::AgreedEverywhere);
            } else {
                assert_eq!(v, Verdict::Differed);
            }
        }
    }
}
