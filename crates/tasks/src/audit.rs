//! Audit support shared by every [`crate::Task`] implementation: the
//! violation record, and an accumulating context wrapping the `squ-lint`
//! analyzer with a memoized schema lookup.
//!
//! The invariant *checks* live with each task (`Task::audit`); the suite
//! driver that fans sections over worker threads and merges them lives in
//! the `squ` core crate.

use serde::{Deserialize, Serialize};
use squ_lint::{lint, LintReport};
use squ_workload::{schema_for, Workload};
use std::collections::{BTreeMap, HashMap};

/// One audited invariant that did not hold.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Violation {
    /// Which dataset the artifact came from, e.g. `syntax/sdss`.
    pub dataset: String,
    /// Source query id of the artifact.
    pub query_id: String,
    /// Machine-readable invariant name, e.g. `positive-expected-diagnostic`.
    pub invariant: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Static-certification tallies from the `squ-sema` equivalence certifier,
/// accumulated over every equivalence pair an audit touches. Deterministic
/// for a given suite, merged across sections in canonical order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CertStats {
    /// Equivalence pairs run through the certifier.
    pub pairs: usize,
    /// Pairs certified equivalent (canonical forms coincide).
    pub certified_equivalent: usize,
    /// Pairs certified inequivalent (a distinguishing witness provably
    /// exists).
    pub certified_inequivalent: usize,
    /// Pairs the certifier left undecided.
    pub certified_unknown: usize,
    /// Pairs labeled non-equivalent by the dataset builder.
    pub noneq_pairs: usize,
    /// Non-equivalent-labeled pairs the certifier statically convicted —
    /// inequivalence proven without executing either query.
    pub noneq_convicted: usize,
}

impl CertStats {
    /// Fold another tally into this one.
    pub fn absorb(&mut self, other: &CertStats) {
        self.pairs += other.pairs;
        self.certified_equivalent += other.certified_equivalent;
        self.certified_inequivalent += other.certified_inequivalent;
        self.certified_unknown += other.certified_unknown;
        self.noneq_pairs += other.noneq_pairs;
        self.noneq_convicted += other.noneq_convicted;
    }

    /// Fraction of non-equivalent-labeled pairs statically convicted, in
    /// percent (0 when no such pairs were seen).
    pub fn conviction_rate(&self) -> f64 {
        if self.noneq_pairs == 0 {
            return 0.0;
        }
        100.0 * self.noneq_convicted as f64 / self.noneq_pairs as f64
    }
}

/// Memoizing schema lookup: SQLShare/Spider resolve schemas by name from a
/// zoo, so per-example lookups inside one audit section are cached.
struct Schemas {
    workload: Workload,
    cache: HashMap<String, squ_schema::Schema>,
}

impl Schemas {
    fn get(&mut self, name: &str) -> &squ_schema::Schema {
        let w = self.workload;
        self.cache
            .entry(name.to_string())
            .or_insert_with(|| schema_for(w, name))
    }
}

/// Per-section audit accumulator: rule-hit counts, checked-artifact count,
/// and the violations a task's checks record. Sections are merged in
/// canonical order by the driver, so reports are thread-count independent.
pub struct AuditCtx {
    schemas: Schemas,
    /// Artifacts linted so far.
    pub checked: usize,
    /// How many times each `SQU0xx` rule fired, warnings included.
    pub hits: BTreeMap<String, usize>,
    /// Violations recorded so far, in check order.
    pub violations: Vec<Violation>,
    /// Static equivalence-certification tallies.
    pub certs: CertStats,
}

impl AuditCtx {
    /// A fresh context auditing artifacts of one workload.
    pub fn new(workload: Workload) -> AuditCtx {
        AuditCtx {
            schemas: Schemas {
                workload,
                cache: HashMap::new(),
            },
            checked: 0,
            hits: BTreeMap::new(),
            violations: Vec::new(),
            certs: CertStats::default(),
        }
    }

    /// Resolve the named schema (memoized) for certifier calls.
    pub fn schema(&mut self, name: &str) -> &squ_schema::Schema {
        self.schemas.get(name)
    }

    /// Lint `sql` against the named schema and count rule hits; returns the
    /// report for the caller's invariant checks.
    pub fn lint(&mut self, sql: &str, schema_name: &str) -> LintReport {
        let report = lint(sql, self.schemas.get(schema_name));
        for d in &report.diagnostics {
            *self.hits.entry(d.code.to_string()).or_insert(0) += 1;
        }
        self.checked += 1;
        report
    }

    /// Record one violation.
    pub fn violation(&mut self, dataset: &str, query_id: &str, invariant: &str, detail: String) {
        self.violations.push(Violation {
            dataset: dataset.to_string(),
            query_id: query_id.to_string(),
            invariant: invariant.to_string(),
            detail,
        });
    }

    /// Record a `clean-analysis` violation for every error-severity finding.
    pub fn require_clean(&mut self, dataset: &str, query_id: &str, report: &LintReport, sql: &str) {
        if report.is_clean() {
            return;
        }
        let detail = format!("{} in `{sql}`", render_codes(report));
        self.violation(dataset, query_id, "clean-analysis", detail);
    }
}

/// Render a report's error codes for violation details, e.g. `[SQU011 x2]`.
pub fn render_codes(report: &LintReport) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in report.errors() {
        *counts.entry(d.code).or_insert(0) += 1;
    }
    if counts.is_empty() {
        return "[no errors]".to_string();
    }
    let parts: Vec<String> = counts
        .iter()
        .map(|(c, n)| {
            if *n == 1 {
                (*c).to_string()
            } else {
                format!("{c} x{n}")
            }
        })
        .collect();
    format!("[{}]", parts.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_codes_counts_errors() {
        use squ_schema::schemas::sdss;
        let schema = sdss();
        let report = lint("SELECT nosuch, nosuch2 FROM SpecObj", &schema);
        let rendered = render_codes(&report);
        assert_eq!(rendered, "[SQU011 x2]", "{rendered}");
        let clean = lint("SELECT plate FROM SpecObj", &schema);
        assert_eq!(render_codes(&clean), "[no errors]");
    }

    #[test]
    fn ctx_lint_counts_hits() {
        let mut ctx = AuditCtx::new(Workload::Sdss);
        ctx.lint("SELECT nosuch FROM SpecObj", "sdss");
        ctx.lint("SELECT plate FROM SpecObj", "sdss");
        assert_eq!(ctx.checked, 2);
        assert_eq!(ctx.hits.get("SQU011"), Some(&1));
    }

    #[test]
    fn require_clean_records_violation() {
        let mut ctx = AuditCtx::new(Workload::Sdss);
        let report = ctx.lint("SELECT nosuch FROM SpecObj", "sdss");
        ctx.require_clean(
            "perf/sdss",
            "sdss-0001",
            &report,
            "SELECT nosuch FROM SpecObj",
        );
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].invariant, "clean-analysis");
    }
}
