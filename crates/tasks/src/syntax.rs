//! Syntax-error injection (paper §3.1 `syntax_error`, Listing 1).
//!
//! Injects the paper's six error types into semantically-clean workload
//! queries. Injection is AST-level and schema-aware, and every injected
//! error is **verified**: the binder must report the intended diagnostic on
//! the corrupted query, so labels are machine-checked rather than assumed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use squ_parser::ast::*;
use squ_parser::{parse, print_statement, CompareOp};
use squ_schema::{analyze, may_return_multiple_rows, DiagnosticKind, Schema, SqlType};
use squ_workload::{schema_for, Dataset, WorkloadQuery};

/// The paper's six syntax-error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntaxErrorType {
    /// Aggregates mixed with ungrouped columns (`aggr-attr`).
    AggrAttr,
    /// `HAVING` on a non-aggregated column (`aggr-having`).
    AggrHaving,
    /// Scalar comparison with a multi-row subquery (`nested-mismatch`).
    NestedMismatch,
    /// Type-incompatible comparison (`condition-mismatch`).
    ConditionMismatch,
    /// Use of an undefined alias (`alias-undefined`).
    AliasUndefined,
    /// Ambiguous unqualified column (`alias-ambiguous`).
    AliasAmbiguous,
}

impl SyntaxErrorType {
    /// All six types.
    pub const ALL: [SyntaxErrorType; 6] = [
        SyntaxErrorType::AggrAttr,
        SyntaxErrorType::AggrHaving,
        SyntaxErrorType::NestedMismatch,
        SyntaxErrorType::ConditionMismatch,
        SyntaxErrorType::AliasUndefined,
        SyntaxErrorType::AliasAmbiguous,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            SyntaxErrorType::AggrAttr => "aggr-attr",
            SyntaxErrorType::AggrHaving => "aggr-having",
            SyntaxErrorType::NestedMismatch => "nested-mismatch",
            SyntaxErrorType::ConditionMismatch => "condition-mismatch",
            SyntaxErrorType::AliasUndefined => "alias-undefined",
            SyntaxErrorType::AliasAmbiguous => "alias-ambiguous",
        }
    }

    /// Parse a paper label.
    pub fn from_label(s: &str) -> Option<SyntaxErrorType> {
        Self::ALL.iter().copied().find(|t| t.label() == s)
    }

    /// The binder diagnostic this error type must trigger.
    pub fn expected_diagnostic(&self) -> DiagnosticKind {
        match self {
            SyntaxErrorType::AggrAttr => DiagnosticKind::AggrWithoutGroupBy,
            SyntaxErrorType::AggrHaving => DiagnosticKind::HavingNonAggregate,
            SyntaxErrorType::NestedMismatch => DiagnosticKind::ScalarSubqueryMultiRow,
            SyntaxErrorType::ConditionMismatch => DiagnosticKind::ComparisonTypeMismatch,
            SyntaxErrorType::AliasUndefined => DiagnosticKind::UndefinedAlias,
            SyntaxErrorType::AliasAmbiguous => DiagnosticKind::AmbiguousColumn,
        }
    }
}

impl std::fmt::Display for SyntaxErrorType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One labeled example of the `syntax_error` / `syntax_error_type` tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntaxExample {
    /// Source workload query id.
    pub query_id: String,
    /// Schema the query targets.
    pub schema_name: String,
    /// The (possibly corrupted) SQL shown to the model.
    pub sql: String,
    /// Ground truth: does the query contain an error?
    pub has_error: bool,
    /// Ground truth error type (None for error-free examples).
    pub error_type: Option<SyntaxErrorType>,
    /// Byte range `[start, end)` in `sql` at which the expected diagnostic
    /// must point (located from the injection site itself, independently of
    /// the binder; None for error-free examples).
    #[serde(default)]
    pub expected_span: Option<(usize, usize)>,
    /// Properties of the *shown* query text (used for failure slicing).
    pub props: squ_workload::QueryProps,
}

/// Inject `ty` into `stmt` (clean, bound against `schema`). Returns `None`
/// when the query offers no injection site for this type.
pub fn inject_error(
    stmt: &Statement,
    schema: &Schema,
    ty: SyntaxErrorType,
    rng: &mut StdRng,
) -> Option<Statement> {
    let mut out = stmt.clone();
    let ok = match ty {
        SyntaxErrorType::AggrAttr => inject_aggr_attr(&mut out, schema),
        SyntaxErrorType::AggrHaving => inject_aggr_having(&mut out, schema, rng),
        SyntaxErrorType::NestedMismatch => inject_nested_mismatch(&mut out, schema, rng),
        SyntaxErrorType::ConditionMismatch => inject_condition_mismatch(&mut out, schema, rng),
        SyntaxErrorType::AliasUndefined => inject_alias_undefined(&mut out),
        SyntaxErrorType::AliasAmbiguous => inject_alias_ambiguous(&mut out, schema),
    };
    ok.then_some(out)
}

/// First (outermost) SELECT of a statement, mutable.
fn main_select(stmt: &mut Statement) -> Option<&mut Select> {
    stmt.query_mut().and_then(|q| q.as_select_mut())
}

/// The base tables visible in a select's FROM, with binding names.
fn scope_tables<'s>(select: &Select, schema: &'s Schema) -> Vec<(String, &'s squ_schema::Table)> {
    let mut out = Vec::new();
    fn walk<'s>(tr: &TableRef, schema: &'s Schema, out: &mut Vec<(String, &'s squ_schema::Table)>) {
        match tr {
            TableRef::Named { name, alias } => {
                if let Some(t) = schema.table(name) {
                    out.push((alias.clone().unwrap_or_else(|| name.clone()), t));
                }
            }
            TableRef::Derived { .. } => {}
            TableRef::Join { left, right, .. } => {
                walk(left, schema, out);
                walk(right, schema, out);
            }
        }
    }
    for tr in &select.from {
        walk(tr, schema, &mut out);
    }
    out
}

/// Q1 pattern: aggregates alongside ungrouped columns.
fn inject_aggr_attr(stmt: &mut Statement, schema: &Schema) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    // need at least one bare-column projection item
    let has_bare = select.items.iter().any(|i| {
        matches!(
            i,
            SelectItem::Expr {
                expr: Expr::Column(_),
                ..
            }
        )
    });
    if !has_bare {
        return false;
    }
    if select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
    {
        // already aggregating: dropping GROUP BY recreates Q1 exactly
        select.group_by.clear();
        select.having = None;
        return true;
    }
    // add COUNT(*) (and AVG over a numeric column if available), no GROUP BY
    select.items.push(SelectItem::Expr {
        expr: Expr::Function {
            name: "COUNT".into(),
            args: vec![Expr::Wildcard],
            distinct: false,
        },
        alias: None,
    });
    let tables = scope_tables(select, schema);
    if let Some((binding, col)) = tables.iter().find_map(|(b, t)| {
        t.columns
            .iter()
            .find(|c| c.ty == SqlType::Float)
            .map(|c| (b.clone(), c.name.clone()))
    }) {
        let q = (tables.len() > 1).then_some(binding);
        select.items.push(SelectItem::Expr {
            expr: Expr::Function {
                name: "AVG".into(),
                args: vec![Expr::column(q.as_deref(), &col)],
                distinct: false,
            },
            alias: None,
        });
    }
    select.group_by.clear();
    select.having = None;
    true
}

/// Q2 pattern: HAVING filters an ungrouped, unaggregated column.
fn inject_aggr_having(stmt: &mut Statement, schema: &Schema, rng: &mut StdRng) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    let tables = scope_tables(select, schema);
    if tables.is_empty() {
        return false;
    }
    // ensure a grouping context exists
    if select.group_by.is_empty() {
        let Some(SelectItem::Expr {
            expr: key @ Expr::Column(_),
            ..
        }) = select.items.iter().find(|i| {
            matches!(
                i,
                SelectItem::Expr {
                    expr: Expr::Column(_),
                    ..
                }
            )
        })
        else {
            return false;
        };
        let key = key.clone();
        select
            .items
            .retain(|i| matches!(i, SelectItem::Expr { expr, .. } if *expr == key));
        select.items.push(SelectItem::Expr {
            expr: Expr::Function {
                name: "COUNT".into(),
                args: vec![Expr::Wildcard],
                distinct: false,
            },
            alias: None,
        });
        select.group_by = vec![key];
    }
    // pick a column NOT in the group-by list
    let grouped: Vec<String> = select
        .group_by
        .iter()
        .filter_map(|g| match g {
            Expr::Column(c) => Some(c.name.to_ascii_lowercase()),
            _ => None,
        })
        .collect();
    let mut candidates = Vec::new();
    for (binding, t) in &tables {
        for c in &t.columns {
            if c.ty.is_numeric() && !grouped.contains(&c.name.to_ascii_lowercase()) {
                candidates.push((binding.clone(), c.name.clone()));
            }
        }
    }
    let Some((binding, col)) = candidates.choose(rng).cloned() else {
        return false;
    };
    let q = (tables.len() > 1).then_some(binding);
    select.having = Some(
        Expr::column(q.as_deref(), &col)
            .compare(CompareOp::Gt, Expr::number(rng.gen_range(0..500) as f64)),
    );
    true
}

/// Q3 pattern: scalar comparison against a multi-row subquery.
fn inject_nested_mismatch(stmt: &mut Statement, schema: &Schema, rng: &mut StdRng) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    let tables = scope_tables(select, schema);
    let Some((binding, table)) = tables.first() else {
        return false;
    };
    let Some(col) = table
        .columns
        .iter()
        .find(|c| squ_engine::is_id_column(&c.name) || c.ty.is_numeric())
    else {
        return false;
    };
    // subquery over a (possibly different) table, unaggregated, unlimited
    let inner_table = schema.tables[rng.gen_range(0..schema.tables.len())].clone();
    let Some(inner_col) = inner_table
        .columns
        .iter()
        .find(|c| c.ty.is_numeric())
        .map(|c| c.name.clone())
    else {
        return false;
    };
    let sub = Query::from_select(Select {
        items: vec![SelectItem::column(None, &inner_col)],
        from: vec![TableRef::named(&inner_table.name, None)],
        ..Select::new()
    });
    let q = (tables.len() > 1).then(|| binding.clone());
    let pred = Expr::column(q.as_deref(), &col.name)
        .compare(CompareOp::Eq, Expr::ScalarSubquery(Box::new(sub)));
    select.selection = Some(match select.selection.take() {
        Some(w) => w.and(pred),
        None => pred,
    });
    true
}

/// Q4 pattern: numeric column compared with a string literal.
fn inject_condition_mismatch(stmt: &mut Statement, schema: &Schema, rng: &mut StdRng) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    // prefer mutating an existing numeric comparison's literal
    if let Some(w) = &mut select.selection {
        if mutate_numeric_literal_to_string(w, rng) {
            return true;
        }
    }
    // otherwise add a fresh mismatched predicate
    let tables = scope_tables(select, schema);
    let mut candidates = Vec::new();
    for (binding, t) in &tables {
        for c in &t.columns {
            if c.ty.is_numeric() {
                candidates.push((binding.clone(), c.name.clone()));
            }
        }
    }
    let Some((binding, col)) = candidates.choose(rng).cloned() else {
        return false;
    };
    let q = (tables.len() > 1).then_some(binding);
    let word = *["high", "low", "fast", "bright"]
        .choose(rng)
        .expect("non-empty"); // lint:allow: drawn from a non-empty set
    let pred = Expr::column(q.as_deref(), &col).compare(CompareOp::Eq, Expr::string(word));
    select.selection = Some(match select.selection.take() {
        Some(w) => w.and(pred),
        None => pred,
    });
    true
}

/// Replace the numeric literal of some comparison with a string.
fn mutate_numeric_literal_to_string(e: &mut Expr, rng: &mut StdRng) -> bool {
    match e {
        Expr::Compare { right, .. } => {
            if let Expr::Literal(Literal::Number(_)) = **right {
                let word = *["high", "low", "fast", "bright"]
                    .choose(rng)
                    .expect("non-empty"); // lint:allow: drawn from a non-empty set
                **right = Expr::string(word);
                return true;
            }
            false
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            mutate_numeric_literal_to_string(a, rng) || mutate_numeric_literal_to_string(b, rng)
        }
        Expr::Not(inner) => mutate_numeric_literal_to_string(inner, rng),
        _ => false,
    }
}

/// Q5 pattern: rewrite a qualified reference to an undefined qualifier
/// (the table's original name when it is aliased, as in the paper).
fn inject_alias_undefined(stmt: &mut Statement) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    // map alias -> original table name
    let mut aliased: Vec<(String, String)> = Vec::new();
    fn walk(tr: &TableRef, out: &mut Vec<(String, String)>) {
        match tr {
            TableRef::Named {
                name,
                alias: Some(a),
            } => out.push((a.clone(), name.clone())),
            TableRef::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            _ => {}
        }
    }
    for tr in &select.from {
        walk(tr, &mut aliased);
    }
    if aliased.is_empty() {
        return false;
    }
    // rewrite the first qualified column using that alias
    let mut done = false;
    rewrite_exprs_in_select(select, &mut |e| {
        if done {
            return;
        }
        if let Expr::Column(c) = e {
            if let Some(q) = &c.qualifier {
                if let Some((_, orig)) = aliased.iter().find(|(a, _)| a.eq_ignore_ascii_case(q)) {
                    c.qualifier = Some(orig.to_ascii_lowercase());
                    done = true;
                }
            }
        }
    });
    done
}

/// Q6 pattern: drop the qualifier from a column whose name exists in
/// several scope tables.
fn inject_alias_ambiguous(stmt: &mut Statement, schema: &Schema) -> bool {
    let Some(select) = main_select(stmt) else {
        return false;
    };
    let tables = scope_tables(select, schema);
    if tables.len() < 2 {
        return false;
    }
    // column names present in >= 2 scope tables
    let mut shared = Vec::new();
    for (i, (_, a)) in tables.iter().enumerate() {
        for c in &a.columns {
            if tables
                .iter()
                .skip(i + 1)
                .any(|(_, b)| b.has_column(&c.name))
            {
                shared.push(c.name.to_ascii_lowercase());
            }
        }
    }
    if shared.is_empty() {
        return false;
    }
    // strip the qualifier from an existing reference to a shared column …
    let mut done = false;
    rewrite_exprs_in_select(select, &mut |e| {
        if done {
            return;
        }
        if let Expr::Column(c) = e {
            if c.qualifier.is_some() && shared.contains(&c.name.to_ascii_lowercase()) {
                c.qualifier = None;
                done = true;
            }
        }
    });
    if done {
        return true;
    }
    // … or add an unqualified predicate on a shared column
    let col = shared[0].clone();
    let pred = Expr::column(None, &col).compare(CompareOp::Gt, Expr::number(100.0));
    select.selection = Some(match select.selection.take() {
        Some(w) => w.and(pred),
        None => pred,
    });
    true
}

/// Apply `f` to every expression node in the select (projection, WHERE,
/// GROUP BY, HAVING, join conditions), mutably.
fn rewrite_exprs_in_select(select: &mut Select, f: &mut dyn FnMut(&mut Expr)) {
    fn walk_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
        f(e);
        match e {
            Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
                walk_expr(left, f);
                walk_expr(right, f);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                walk_expr(a, f);
                walk_expr(b, f);
            }
            Expr::Not(x) | Expr::Neg(x) | Expr::Cast { expr: x, .. } => walk_expr(x, f),
            Expr::IsNull { expr, .. } => walk_expr(expr, f),
            Expr::Between {
                expr, low, high, ..
            } => {
                walk_expr(expr, f);
                walk_expr(low, f);
                walk_expr(high, f);
            }
            Expr::InList { expr, list, .. } => {
                walk_expr(expr, f);
                for x in list {
                    walk_expr(x, f);
                }
            }
            Expr::InSubquery { expr, .. } => walk_expr(expr, f),
            Expr::Like { expr, pattern, .. } => {
                walk_expr(expr, f);
                walk_expr(pattern, f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    walk_expr(a, f);
                }
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(op) = operand {
                    walk_expr(op, f);
                }
                for (w, t) in branches {
                    walk_expr(w, f);
                    walk_expr(t, f);
                }
                if let Some(x) = else_expr {
                    walk_expr(x, f);
                }
            }
            _ => {}
        }
    }
    fn walk_tr(tr: &mut TableRef, f: &mut dyn FnMut(&mut Expr)) {
        if let TableRef::Join {
            left,
            right,
            constraint,
            ..
        } = tr
        {
            walk_tr(left, f);
            walk_tr(right, f);
            if let JoinConstraint::On(e) = constraint {
                walk_expr(e, f);
            }
        }
    }
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, f);
        }
    }
    for tr in &mut select.from {
        walk_tr(tr, f);
    }
    if let Some(w) = &mut select.selection {
        walk_expr(w, f);
    }
    for g in &mut select.group_by {
        walk_expr(g, f);
    }
    if let Some(h) = &mut select.having {
        walk_expr(h, f);
    }
}

/// Locate, from the corrupted statement alone, the byte span at which the
/// expected diagnostic for `ty` must point. This mirrors each injector's
/// site (first bare projection column, the HAVING column, the multi-row
/// subquery, …) without consulting the binder's own span bookkeeping, so
/// generation — and later the dataset auditor — can cross-check the two
/// independently. Returns `None` when no site can be identified.
pub fn locate_expected(stmt: &Statement, schema: &Schema, ty: SyntaxErrorType) -> Option<Span> {
    let query = stmt.query()?;
    let select = query.as_select()?;
    match ty {
        // every bare projection column is ungrouped after injection; the
        // binder flags them in projection order
        SyntaxErrorType::AggrAttr => select.items.iter().find_map(|i| match i {
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => Some(c.span),
            _ => None,
        }),
        // the injector replaces HAVING with `col > n`
        SyntaxErrorType::AggrHaving => {
            let mut bare = Vec::new();
            collect_bare_columns(select.having.as_ref()?, &mut bare);
            bare.first().map(|c| c.span)
        }
        // the injected subquery is the only multi-row scalar subquery (the
        // source query was verified clean)
        SyntaxErrorType::NestedMismatch => {
            let mut found = None;
            if let Some(w) = &select.selection {
                find_multirow_subquery(w, &mut found);
            }
            found
        }
        SyntaxErrorType::ConditionMismatch => {
            let tables = scope_tables(select, schema);
            find_mismatched_compare(select.selection.as_ref()?, &tables)
        }
        SyntaxErrorType::AliasUndefined => {
            let names = binding_names(select);
            first_column_span(query, &|c| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|q| !names.iter().any(|n| n.eq_ignore_ascii_case(q)))
            })
        }
        SyntaxErrorType::AliasAmbiguous => {
            let tables = scope_tables(select, schema);
            first_column_span(query, &|c| {
                c.qualifier.is_none()
                    && tables.iter().filter(|(_, t)| t.has_column(&c.name)).count() >= 2
            })
        }
    }
}

/// Columns appearing outside aggregate calls (locator-side mirror of the
/// binder's grouping walk; does not descend into subqueries).
fn collect_bare_columns(e: &Expr, out: &mut Vec<ColumnRef>) {
    match e {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Function { name, args, .. } => {
            if !is_aggregate_name(name) {
                for a in args {
                    collect_bare_columns(a, out);
                }
            }
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::InSubquery { expr, .. } => collect_bare_columns(expr, out),
        other => other.for_each_child(&mut |c| collect_bare_columns(c, out)),
    }
}

fn find_multirow_subquery(e: &Expr, out: &mut Option<Span>) {
    if out.is_some() {
        return;
    }
    match e {
        Expr::ScalarSubquery(q) => {
            if may_return_multiple_rows(q) {
                *out = Some(q.span);
            }
        }
        other => other.for_each_child(&mut |c| find_multirow_subquery(c, out)),
    }
}

/// First comparison of a numeric operand against a string literal; the
/// span is the operand's, matching where the binder anchors the mismatch.
fn find_mismatched_compare(e: &Expr, tables: &[(String, &squ_schema::Table)]) -> Option<Span> {
    match e {
        Expr::Compare { left, right, .. } => {
            if matches!(**right, Expr::Literal(Literal::String(_)))
                && is_numeric_operand(left, tables)
            {
                return expr_span(left).or_else(|| expr_span(right));
            }
            None
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            find_mismatched_compare(a, tables).or_else(|| find_mismatched_compare(b, tables))
        }
        Expr::Not(inner) => find_mismatched_compare(inner, tables),
        _ => None,
    }
}

fn is_numeric_operand(e: &Expr, tables: &[(String, &squ_schema::Table)]) -> bool {
    match e {
        Expr::Column(c) => tables
            .iter()
            .filter(|(b, _)| {
                c.qualifier
                    .as_deref()
                    .map_or(true, |q| b.eq_ignore_ascii_case(q))
            })
            .find_map(|(_, t)| {
                t.columns
                    .iter()
                    .find(|col| col.name.eq_ignore_ascii_case(&c.name))
            })
            .is_some_and(|col| col.ty.is_numeric()),
        Expr::Arith { .. } | Expr::Neg(_) => true,
        _ => false,
    }
}

/// Every binding name visible in the select's FROM (schema tables, CTE
/// references, and derived-table aliases alike).
fn binding_names(select: &Select) -> Vec<String> {
    fn walk(tr: &TableRef, out: &mut Vec<String>) {
        match tr {
            TableRef::Named { name, alias } => {
                out.push(alias.clone().unwrap_or_else(|| name.clone()));
            }
            TableRef::Derived { alias, .. } => {
                if let Some(a) = alias {
                    out.push(a.clone());
                }
            }
            TableRef::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    for tr in &select.from {
        walk(tr, &mut out);
    }
    out
}

/// Span of the first top-level column of `q` satisfying `pred` (projection,
/// join conditions, WHERE, GROUP BY, HAVING, ORDER BY; not subqueries).
fn first_column_span(q: &Query, pred: &dyn Fn(&ColumnRef) -> bool) -> Option<Span> {
    fn walk(e: &Expr, pred: &dyn Fn(&ColumnRef) -> bool, out: &mut Option<Span>) {
        if out.is_some() {
            return;
        }
        if let Expr::Column(c) = e {
            if pred(c) {
                *out = Some(c.span);
            }
            return;
        }
        e.for_each_child(&mut |child| walk(child, pred, out));
    }
    let mut out = None;
    squ_parser::visit::for_each_query_expr(q, &mut |e| walk(e, pred, &mut out));
    out
}

/// Build the `syntax_error` dataset from a workload: roughly 40% of
/// examples stay error-free (the negative class); the rest receive a
/// uniformly chosen error type. Every injected example is verified against
/// the binder before being emitted.
pub fn build_syntax_dataset(ds: &Dataset, seed: u64) -> Vec<SyntaxExample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E01);
    let mut out = Vec::with_capacity(ds.queries.len());
    for wq in &ds.queries {
        out.push(make_example(wq, &mut rng));
    }
    out
}

fn make_example(wq: &WorkloadQuery, rng: &mut StdRng) -> SyntaxExample {
    let schema = schema_for(wq.workload, &wq.schema_name);
    let stmt = parse(&wq.sql).expect("workload queries parse"); // lint:allow: generated/fixed SQL, parse covered by tests
    let error_free = rng.gen_bool(0.4);
    if !error_free {
        // try a shuffled order of types until one applies and verifies
        let mut types = SyntaxErrorType::ALL;
        types.shuffle(rng);
        for ty in types {
            if let Some(corrupted) = inject_error(&stmt, &schema, ty, rng) {
                // re-parse the printed text so spans refer to the SQL the
                // model (and the auditor) actually sees
                let sql = print_statement(&corrupted);
                let reparsed = parse(&sql).expect("printed SQL reparses"); // lint:allow: printer-parser roundtrip is test-covered
                let diags = analyze(&reparsed, &schema);
                let Some(span) = locate_expected(&reparsed, &schema, ty) else {
                    continue;
                };
                let verified = diags.iter().any(|d| {
                    d.kind == ty.expected_diagnostic()
                        && d.span
                            .is_some_and(|s| s.start < span.end && span.start < s.end)
                });
                if verified {
                    let props = squ_workload::query_props(&sql, &reparsed);
                    return SyntaxExample {
                        query_id: wq.id.clone(),
                        schema_name: wq.schema_name.clone(),
                        sql,
                        has_error: true,
                        error_type: Some(ty),
                        expected_span: Some((span.start, span.end)),
                        props,
                    };
                }
            }
        }
        // no type applied: fall through to error-free
    }
    SyntaxExample {
        query_id: wq.id.clone(),
        schema_name: wq.schema_name.clone(),
        sql: wq.sql.clone(),
        has_error: false,
        error_type: None,
        expected_span: None,
        props: wq.props.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_schema::schemas::sdss;
    use squ_workload::{build, Workload};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn check_inject(sql: &str, ty: SyntaxErrorType) {
        let schema = sdss();
        let stmt = parse(sql).unwrap();
        assert!(analyze(&stmt, &schema).is_empty(), "precondition: clean");
        let out = inject_error(&stmt, &schema, ty, &mut rng())
            .unwrap_or_else(|| panic!("{ty} not applicable to {sql}"));
        let diags = analyze(&out, &schema);
        assert!(
            diags.iter().any(|d| d.kind == ty.expected_diagnostic()),
            "{ty} on {sql} gave {:?}\n→ {}",
            diags,
            print_statement(&out)
        );
    }

    #[test]
    fn inject_each_type_on_representative_queries() {
        check_inject(
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            SyntaxErrorType::AggrAttr,
        );
        check_inject(
            "SELECT plate, COUNT(*) FROM SpecObj GROUP BY plate",
            SyntaxErrorType::AggrHaving,
        );
        check_inject("SELECT plate FROM SpecObj", SyntaxErrorType::NestedMismatch);
        check_inject(
            "SELECT plate FROM SpecObj WHERE z > 0.5",
            SyntaxErrorType::ConditionMismatch,
        );
        check_inject(
            "SELECT s.plate FROM SpecObj AS s WHERE s.z > 1",
            SyntaxErrorType::AliasUndefined,
        );
        check_inject(
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            SyntaxErrorType::AliasAmbiguous,
        );
    }

    #[test]
    fn inapplicable_types_return_none() {
        let schema = sdss();
        // no aliases -> alias-undefined has no site
        let stmt = parse("SELECT plate FROM SpecObj").unwrap();
        assert!(
            inject_error(&stmt, &schema, SyntaxErrorType::AliasUndefined, &mut rng()).is_none()
        );
        // single table -> no ambiguity possible
        assert!(
            inject_error(&stmt, &schema, SyntaxErrorType::AliasAmbiguous, &mut rng()).is_none()
        );
        // no bare column projection -> aggr-attr has no site
        let stmt = parse("SELECT COUNT(*) FROM SpecObj").unwrap();
        assert!(inject_error(&stmt, &schema, SyntaxErrorType::AggrAttr, &mut rng()).is_none());
    }

    #[test]
    fn dataset_is_labeled_and_verified() {
        let ds = build(Workload::Sdss, 2023);
        let examples = build_syntax_dataset(&ds, 99);
        assert_eq!(examples.len(), ds.len());
        let with_error = examples.iter().filter(|e| e.has_error).count();
        assert!(
            with_error > 100,
            "should inject into most of the 60%: {with_error}"
        );
        // labels verified by binder
        for e in &examples {
            let schema = schema_for(Workload::Sdss, &e.schema_name);
            let stmt = parse(&e.sql).unwrap();
            let diags = analyze(&stmt, &schema);
            match e.error_type {
                Some(ty) => assert!(
                    diags.iter().any(|d| d.kind == ty.expected_diagnostic()),
                    "{}: expected {ty}: {}",
                    e.query_id,
                    e.sql
                ),
                None => assert!(
                    diags.is_empty(),
                    "{} should be clean: {}",
                    e.query_id,
                    e.sql
                ),
            }
        }
        // every error type is represented
        for ty in SyntaxErrorType::ALL {
            assert!(
                examples.iter().any(|e| e.error_type == Some(ty)),
                "type {ty} never injected"
            );
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let ds = build(Workload::SqlShare, 2023);
        let a = build_syntax_dataset(&ds, 5);
        let b = build_syntax_dataset(&ds, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.error_type, y.error_type);
        }
    }

    #[test]
    fn labels_round_trip() {
        for ty in SyntaxErrorType::ALL {
            assert_eq!(SyntaxErrorType::from_label(ty.label()), Some(ty));
        }
        assert_eq!(SyntaxErrorType::from_label("nope"), None);
    }
}
