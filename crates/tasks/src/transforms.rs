//! Introspection over the equivalence-transform catalog.
//!
//! The equivalence task applies its rewrites through per-type entry points
//! ([`apply_equiv`] / [`apply_non_equiv`]); this module exposes the whole
//! catalog as one uniform list so generic drivers — `squ-fuzz`'s
//! metamorphic oracle in particular — can iterate every transform without
//! matching on the type enums. [`TransformInfo::custom`] additionally lets
//! a test inject a transform that is *not* in the catalog (for example, one
//! that claims to preserve equivalence but does not) to prove the harness
//! catches it.

use crate::equiv::{apply_equiv, apply_non_equiv, EquivType, NonEquivType};
use rand::rngs::StdRng;
use squ_parser::ast::Query;

/// Does a transform claim to preserve result equivalence?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformKind {
    /// The rewritten query must return the same results everywhere.
    Preserving,
    /// The rewrite must be distinguishable on some witness database.
    Breaking,
}

/// A custom rewrite: `(original) -> Option<(query1, query2)>`, like the
/// catalog entry points. `None` means "not applicable to this query".
pub type TransformFn = fn(&Query, &mut StdRng) -> Option<(Query, Query)>;

enum Apply {
    Equiv(EquivType),
    NonEquiv(NonEquivType),
    Custom(TransformFn),
}

/// One introspectable transform: a stable label, whether it claims to
/// preserve equivalence, and the rewrite itself.
pub struct TransformInfo {
    label: &'static str,
    kind: TransformKind,
    apply: Apply,
}

impl TransformInfo {
    /// A transform outside the built-in catalog (test harnesses only).
    pub fn custom(label: &'static str, kind: TransformKind, f: TransformFn) -> TransformInfo {
        TransformInfo {
            label,
            kind,
            apply: Apply::Custom(f),
        }
    }

    /// The transform's stable label (matches the dataset `transform` field
    /// for catalog entries).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Preserving or breaking.
    pub fn kind(&self) -> TransformKind {
        self.kind
    }

    /// Apply the transform. Returns the `(query1, query2)` pair to compare,
    /// or `None` when the rewrite does not apply to this query shape.
    pub fn apply(&self, q: &Query, rng: &mut StdRng) -> Option<(Query, Query)> {
        match &self.apply {
            Apply::Equiv(ty) => apply_equiv(q, *ty, rng),
            Apply::NonEquiv(ty) => apply_non_equiv(q, *ty, rng),
            Apply::Custom(f) => f(q, rng),
        }
    }
}

/// Every transform the equivalence task knows: the ten
/// equivalence-preserving rewrites followed by the eight
/// equivalence-breaking ones, in their canonical (`ALL`) order.
pub fn transform_catalog() -> Vec<TransformInfo> {
    let mut out = Vec::with_capacity(EquivType::ALL.len() + NonEquivType::ALL.len());
    for ty in EquivType::ALL {
        out.push(TransformInfo {
            label: ty.label(),
            kind: TransformKind::Preserving,
            apply: Apply::Equiv(ty),
        });
    }
    for ty in NonEquivType::ALL {
        out.push(TransformInfo {
            label: ty.label(),
            kind: TransformKind::Breaking,
            apply: Apply::NonEquiv(ty),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use squ_parser::parse_query;

    #[test]
    fn catalog_covers_both_enums_with_matching_labels() {
        let cat = transform_catalog();
        assert_eq!(cat.len(), EquivType::ALL.len() + NonEquivType::ALL.len());
        let preserving: Vec<&str> = cat
            .iter()
            .filter(|t| t.kind() == TransformKind::Preserving)
            .map(|t| t.label())
            .collect();
        let breaking: Vec<&str> = cat
            .iter()
            .filter(|t| t.kind() == TransformKind::Breaking)
            .map(|t| t.label())
            .collect();
        let want_p: Vec<&str> = EquivType::ALL.iter().map(|t| t.label()).collect();
        let want_b: Vec<&str> = NonEquivType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(preserving, want_p);
        assert_eq!(breaking, want_b);
    }

    #[test]
    fn catalog_entries_dispatch_to_the_real_rewrites() {
        let q = parse_query("SELECT a FROM t WHERE a > 1 AND b < 2").unwrap();
        let cat = transform_catalog();
        let reorder = cat
            .iter()
            .find(|t| t.label() == "reorder-conditions")
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (q1, q2) = reorder.apply(&q, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let direct = apply_equiv(&q, EquivType::ReorderConditions, &mut rng).unwrap();
        assert_eq!((q1, q2), direct);
    }

    #[test]
    fn custom_transforms_are_injectable() {
        fn identity_pair(q: &Query, _rng: &mut StdRng) -> Option<(Query, Query)> {
            Some((q.clone(), q.clone()))
        }
        let t = TransformInfo::custom("identity", TransformKind::Preserving, identity_pair);
        let q = parse_query("SELECT a FROM t").unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let (a, b) = t.apply(&q, &mut rng).unwrap();
        assert_eq!(a, b);
    }
}
