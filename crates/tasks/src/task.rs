//! The [`Task`] abstraction: one trait implemented by each task family
//! (the paper's five plus the dialect-translation extension), so every
//! downstream layer (suite construction, pipeline, audit, faults, export)
//! can iterate a registry of trait objects instead of matching hard-coded
//! variants.
//!
//! The trait lives here — next to the dataset builders — and covers
//! everything derivable from an example alone: identity, dataset
//! construction, the prompt payload, the ground truth handed to
//! simulators, and the static audit of the labels. Model-facing behavior
//! (prompt rendering, response extraction, scoring) extends this trait as
//! `RunTask` in `squ-llm`, which owns the extractors.
//!
//! `TaskId` metadata (names, workloads, schedule class) is the single
//! source of truth the registry exposes; the per-variant `match`es below
//! are the one place in the workspace allowed to enumerate all six tasks.

use crate::audit::AuditCtx;
use crate::equiv::seed_of;
use crate::{
    build_equiv_dataset, build_explain_dataset, build_perf_dataset, build_syntax_dataset,
    build_token_dataset, build_translate_dataset, EquivExample, ExplainExample, KeyFacts,
    PerfExample, SyntaxExample, TokenExample, TokenType, TranslateExample,
};
use serde::{Deserialize, Serialize};
use squ_lexer::word_index_at;
use squ_workload::{Dataset, QueryProps, Workload};

/// The composite task families, one per paper prompt (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskId {
    /// `syntax_error` + `syntax_error_type` (one composite prompt).
    Syntax,
    /// `miss_token` + `miss_token_type` + missing word + `miss_token_loc`.
    MissToken,
    /// `query_equiv` + `query_equiv_type`.
    Equiv,
    /// `performance_pred`.
    Perf,
    /// `query_exp`.
    Explain,
    /// `dialect_translate` (extension beyond the paper's five).
    Translate,
}

impl TaskId {
    /// All six tasks, in canonical registry order. [`TaskId::Translate`]
    /// is appended last so the first five keep their slots (and store
    /// fingerprints) from before the dialect extension.
    pub const ALL: [TaskId; 6] = [
        TaskId::Syntax,
        TaskId::MissToken,
        TaskId::Equiv,
        TaskId::Perf,
        TaskId::Explain,
        TaskId::Translate,
    ];

    /// Paper-style identifier.
    pub fn name(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax_error",
            TaskId::MissToken => "miss_token",
            TaskId::Equiv => "query_equiv",
            TaskId::Perf => "performance_pred",
            TaskId::Explain => "query_exp",
            TaskId::Translate => "dialect_translate",
        }
    }

    /// Short slug used in timing spans and audit section names.
    pub fn short(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax",
            TaskId::MissToken => "tokens",
            TaskId::Equiv => "equiv",
            TaskId::Perf => "perf",
            TaskId::Explain => "explain",
            TaskId::Translate => "translate",
        }
    }

    /// File-name stem of the task's benchmark export.
    pub fn file_stem(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax",
            TaskId::MissToken => "miss_token",
            TaskId::Equiv => "query_equiv",
            TaskId::Perf => "performance_pred",
            TaskId::Explain => "query_exp",
            TaskId::Translate => "dialect_translate",
        }
    }

    /// Workloads the task derives its dataset from.
    pub fn workloads(&self) -> &'static [Workload] {
        const TASK_WORKLOADS: [Workload; 3] =
            [Workload::Sdss, Workload::SqlShare, Workload::JoinOrder];
        match self {
            TaskId::Syntax | TaskId::MissToken | TaskId::Equiv | TaskId::Translate => {
                &TASK_WORKLOADS
            }
            TaskId::Perf => &[Workload::Sdss],
            TaskId::Explain => &[Workload::Spider],
        }
    }

    /// Build-scheduling priority class: lower runs earlier. Equivalence
    /// and translation datasets lead the queue because differential
    /// verification dominates the suite's wall-clock, so they get worker
    /// threads first.
    pub fn schedule_class(&self) -> u8 {
        match self {
            TaskId::Equiv | TaskId::Translate => 0,
            _ => 1,
        }
    }

    /// Whether the task's outcomes carry a `needs_review` bucket (binary
    /// extraction). The explanation task is rubric-scored free text and has
    /// no review routing, so fault-injection sweeps exclude it.
    pub fn reviewable(&self) -> bool {
        !matches!(self, TaskId::Explain)
    }
}

/// Ground truth attached to a request (consumed only by simulators).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Syntax-error task truth.
    Syntax {
        /// Does the query contain an error?
        has_error: bool,
        /// Error-type label if any.
        error_type: Option<String>,
    },
    /// Missing-token task truth.
    Token {
        /// Is a token missing?
        missing: bool,
        /// Token-type label if any.
        token_type: Option<String>,
        /// The removed text.
        removed: Option<String>,
        /// Word position of the removal.
        position: Option<usize>,
        /// Word count of the shown query.
        word_count: usize,
    },
    /// Query-equivalence task truth.
    Equiv {
        /// Are the two queries equivalent?
        equivalent: bool,
        /// Transformation label.
        transform: String,
    },
    /// Performance-prediction task truth.
    Perf {
        /// Is the query costly (> 200 ms)?
        costly: bool,
    },
    /// Explanation task truth.
    Explain {
        /// Reference description.
        reference: String,
        /// Rubric key facts.
        facts: KeyFacts,
        /// The SQL being explained.
        sql: String,
    },
    /// Dialect-translation task truth.
    Translate {
        /// The verified gold translation in the target dialect.
        gold_sql: String,
        /// Target dialect name.
        target: String,
    },
}

/// One task family (the paper's five, or the dialect-translation
/// extension).
///
/// Implementations are stateless unit structs; everything varies through
/// the associated `Example` type and the methods. The contract:
///
/// * [`build`](Task::build) is deterministic in `(dataset, seed)` and is
///   the only way examples come into existence;
/// * [`payload`](Task::payload) is the task-specific part of the prompt
///   (the instruction preamble is owned by `squ-llm`);
/// * [`ground_truth`](Task::ground_truth) packages the labels a simulator
///   consumes (a real API backend never sees it);
/// * [`audit`](Task::audit) statically re-proves every label with the
///   `squ-lint` analyzer, reporting disagreements on the context.
pub trait Task {
    /// The labeled example type this task derives.
    type Example: Clone + Serialize + Deserialize + Send + Sync + 'static;

    /// Which task family this is.
    fn id(&self) -> TaskId;

    /// Bump when the builder's output changes for the same inputs; part of
    /// the artifact-store fingerprint, so stale caches self-invalidate.
    fn version(&self) -> u32 {
        1
    }

    /// Derive the labeled dataset from a sampled workload.
    fn build(&self, ds: &Dataset, seed: u64) -> Vec<Self::Example>;

    /// Stable example id (also the simulator randomness seed component).
    fn example_id<'a>(&self, e: &'a Self::Example) -> &'a str;

    /// The task-specific prompt payload (what follows the instruction).
    fn payload(&self, e: &Self::Example) -> String;

    /// Syntactic properties of the example's (first) query.
    fn props<'a>(&self, e: &'a Self::Example) -> &'a QueryProps;

    /// Ground truth for simulators.
    fn ground_truth(&self, e: &Self::Example) -> GroundTruth;

    /// Statically audit every label against the analyzer.
    fn audit(&self, w: Workload, examples: &[Self::Example], ctx: &mut AuditCtx);
}

/// Word-distance slack allowed between a parse error's reported location
/// and a token deletion's labeled position. The recursive-descent parser
/// cannot reject before the deletion site, but bounded lookahead means the
/// error can surface up to two words earlier than the splice point.
const PARSE_LOCATION_SLACK: usize = 2;

/// The syntax-error detection task (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntaxTask;

impl Task for SyntaxTask {
    type Example = SyntaxExample;

    fn id(&self) -> TaskId {
        TaskId::Syntax
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<SyntaxExample> {
        build_syntax_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a SyntaxExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &SyntaxExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a SyntaxExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &SyntaxExample) -> GroundTruth {
        GroundTruth::Syntax {
            has_error: e.has_error,
            error_type: e.error_type.map(|t| t.label().to_string()),
        }
    }

    /// Syntax positives must carry the labeled diagnostic at the labeled
    /// span; negatives must lint clean.
    fn audit(&self, w: Workload, examples: &[SyntaxExample], ctx: &mut AuditCtx) {
        let name = format!("syntax/{}", w.name());
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            if !ex.has_error {
                ctx.require_clean(&name, &ex.query_id, &report, &ex.sql);
                continue;
            }
            let (Some(ty), Some((start, end))) = (ex.error_type, ex.expected_span) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-label-complete",
                    "positive example lacks error_type or expected_span".into(),
                );
                continue;
            };
            let code = ty.expected_diagnostic().code();
            let hit = report
                .diagnostics
                .iter()
                .any(|d| d.code == code && d.overlaps(start, end));
            if !hit {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-expected-diagnostic",
                    format!(
                        "no {code} diagnostic overlapping bytes {start}..{end} (got {})",
                        crate::audit::render_codes(&report)
                    ),
                );
            }
        }
    }
}

/// The missing-token task (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenTask;

impl Task for TokenTask {
    type Example = TokenExample;

    fn id(&self) -> TaskId {
        TaskId::MissToken
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<TokenExample> {
        build_token_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a TokenExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &TokenExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a TokenExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &TokenExample) -> GroundTruth {
        GroundTruth::Token {
            missing: e.has_missing,
            token_type: e.token_type.map(|t| t.label().to_string()),
            removed: e.removed_text.clone(),
            position: e.position,
            word_count: e.props.word_count,
        }
    }

    /// Token-deletion positives must be detectable by the analyzer (except
    /// the whole-predicate class), with parse errors locating near the
    /// labeled word position; negatives must lint clean.
    fn audit(&self, w: Workload, examples: &[TokenExample], ctx: &mut AuditCtx) {
        let name = format!("tokens/{}", w.name());
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            if !ex.has_missing {
                ctx.require_clean(&name, &ex.query_id, &report, &ex.sql);
                continue;
            }
            let (Some(ty), Some(position)) = (ex.token_type, ex.position) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-label-complete",
                    "positive example lacks token_type or position".into(),
                );
                continue;
            };
            // The labeled position and the recorded splice offset must agree.
            // A deletion that removed the tail of a word (e.g. the column of a
            // `t.plate` qualified name) leaves the splice point on the word
            // boundary *after* the remaining fragment, so when the splice abuts
            // a preceding non-whitespace character the next word index is also
            // accepted.
            if let Some(at) = ex.removed_at {
                let wi = word_index_at(&ex.sql, at);
                let tail_of_word = at > 0
                    && !ex.sql.as_bytes()[at - 1].is_ascii_whitespace()
                    && wi == position + 1;
                if wi != position && !tail_of_word {
                    ctx.violation(
                        &name,
                        &ex.query_id,
                        "position-matches-splice",
                        format!("splice offset {at} is word {wi}, labeled position {position}"),
                    );
                }
            }
            if ty == TokenType::Predicate {
                // The paper's hard class: deleting a whole predicate often
                // yields a valid query, so no detectability is required.
                continue;
            }
            if report.is_clean() {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-detectable",
                    format!("deleting {ty} token left an analyzably-clean query"),
                );
                continue;
            }
            // Any parse error must locate at (or within lookahead slack of)
            // the deletion site — the parser cannot reject an intact prefix.
            for d in report.errors() {
                if d.code != "SQU001" && d.code != "SQU002" {
                    continue; // binder errors point at uses, not the splice
                }
                let Some(span) = d.span else { continue };
                let wi = word_index_at(&ex.sql, span.start);
                if wi + PARSE_LOCATION_SLACK < position {
                    ctx.violation(
                        &name,
                        &ex.query_id,
                        "parse-error-near-site",
                        format!(
                            "{} reported at word {wi}, {} words before labeled position {position}",
                            d.code,
                            position - wi
                        ),
                    );
                }
            }
        }
    }
}

/// The query-equivalence task (§3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EquivTask;

impl Task for EquivTask {
    type Example = EquivExample;

    fn id(&self) -> TaskId {
        TaskId::Equiv
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<EquivExample> {
        build_equiv_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a EquivExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &EquivExample) -> String {
        format!("Query 1: {}\nQuery 2: {}", e.sql1, e.sql2)
    }

    fn props<'a>(&self, e: &'a EquivExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &EquivExample) -> GroundTruth {
        GroundTruth::Equiv {
            equivalent: e.equivalent,
            transform: e.transform.clone(),
        }
    }

    /// Both sides of every pair must lint clean; equivalent pairs must have
    /// identical resolution signatures, non-equivalent pairs must differ.
    /// Every pair additionally runs through the `squ-sema` certifier, which
    /// must never contradict the label: an equivalent pair statically
    /// convicted, or a non-equivalent pair certified equivalent, is a
    /// violation. Certifier tallies (including the fraction of
    /// non-equivalence labels proven without execution) accumulate on the
    /// context.
    fn audit(&self, w: Workload, examples: &[EquivExample], ctx: &mut AuditCtx) {
        let name = format!("equiv/{}", w.name());
        for ex in examples {
            let r1 = ctx.lint(&ex.sql1, &ex.schema_name);
            let r2 = ctx.lint(&ex.sql2, &ex.schema_name);
            ctx.require_clean(&name, &ex.query_id, &r1, &ex.sql1);
            ctx.require_clean(&name, &ex.query_id, &r2, &ex.sql2);
            certify_example(&name, ex, ctx);
            if ex.equivalent {
                match (&r1.resolution, &r2.resolution) {
                    (Some(a), Some(b)) if a == b => {}
                    (Some(a), Some(b)) => ctx.violation(
                        &name,
                        &ex.query_id,
                        "equivalent-same-resolution",
                        format!(
                            "{} rewrite changed resolution: {} vs {}",
                            ex.transform,
                            a.render(),
                            b.render()
                        ),
                    ),
                    _ => ctx.violation(
                        &name,
                        &ex.query_id,
                        "equivalent-same-resolution",
                        format!("{} pair has an unanalyzable side", ex.transform),
                    ),
                }
            } else if ex.sql1 == ex.sql2 {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "non-equivalent-differs",
                    format!("{} pair is textually identical", ex.transform),
                );
            }
        }
    }
}

/// Run one equivalence pair through the static certifier, recording the
/// tally and any label contradiction. Unparseable sides (never produced by
/// the builder) simply count as undecided.
fn certify_example(dataset: &str, ex: &EquivExample, ctx: &mut AuditCtx) {
    use squ_sema::Certificate;

    ctx.certs.pairs += 1;
    if !ex.equivalent {
        ctx.certs.noneq_pairs += 1;
    }
    let (Ok(q1), Ok(q2)) = (
        squ_parser::parse_query(&ex.sql1),
        squ_parser::parse_query(&ex.sql2),
    ) else {
        ctx.certs.certified_unknown += 1;
        return;
    };
    let cert = {
        let schema = ctx.schema(&ex.schema_name);
        squ_sema::certify_pair(&q1, &q2, schema)
    };
    match cert {
        Certificate::Equivalent(reason) => {
            ctx.certs.certified_equivalent += 1;
            if !ex.equivalent {
                ctx.violation(
                    dataset,
                    &ex.query_id,
                    "non-equivalent-not-certified-equivalent",
                    format!(
                        "{} pair is labeled non-equivalent but certified equivalent ({reason})",
                        ex.transform
                    ),
                );
            }
        }
        Certificate::Inequivalent(reason) => {
            ctx.certs.certified_inequivalent += 1;
            if ex.equivalent {
                ctx.violation(
                    dataset,
                    &ex.query_id,
                    "equivalent-not-statically-convicted",
                    format!(
                        "{} pair is labeled equivalent but statically convicted ({reason})",
                        ex.transform
                    ),
                );
            } else {
                ctx.certs.noneq_convicted += 1;
            }
        }
        Certificate::Unknown => ctx.certs.certified_unknown += 1,
    }
}

/// The performance-prediction task (§3.2, SDSS only).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfTask;

impl Task for PerfTask {
    type Example = PerfExample;

    fn id(&self) -> TaskId {
        TaskId::Perf
    }

    fn build(&self, ds: &Dataset, _seed: u64) -> Vec<PerfExample> {
        build_perf_dataset(ds)
    }

    fn example_id<'a>(&self, e: &'a PerfExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &PerfExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a PerfExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &PerfExample) -> GroundTruth {
        GroundTruth::Perf {
            costly: e.is_costly,
        }
    }

    /// Performance examples (real SDSS queries) must lint clean.
    fn audit(&self, _w: Workload, examples: &[PerfExample], ctx: &mut AuditCtx) {
        for ex in examples {
            let report = ctx.lint(&ex.sql, "sdss");
            ctx.require_clean("perf/sdss", &ex.query_id, &report, &ex.sql);
        }
    }
}

/// The query-explanation task (§3.2, Spider only).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainTask;

impl Task for ExplainTask {
    type Example = ExplainExample;

    fn id(&self) -> TaskId {
        TaskId::Explain
    }

    fn build(&self, ds: &Dataset, _seed: u64) -> Vec<ExplainExample> {
        build_explain_dataset(ds)
    }

    fn example_id<'a>(&self, e: &'a ExplainExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &ExplainExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a ExplainExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &ExplainExample) -> GroundTruth {
        GroundTruth::Explain {
            reference: e.reference.clone(),
            facts: e.facts.clone(),
            sql: e.sql.clone(),
        }
    }

    /// Explanation examples (Spider queries) must lint clean.
    fn audit(&self, _w: Workload, examples: &[ExplainExample], ctx: &mut AuditCtx) {
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            ctx.require_clean("explain/spider", &ex.query_id, &report, &ex.sql);
        }
    }
}

/// The dialect-translation task (extension beyond the paper's five).
#[derive(Debug, Clone, Copy, Default)]
pub struct TranslateTask;

impl Task for TranslateTask {
    type Example = TranslateExample;

    fn id(&self) -> TaskId {
        TaskId::Translate
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<TranslateExample> {
        build_translate_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a TranslateExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &TranslateExample) -> String {
        format!(
            "Source dialect: {}\nTarget dialect: {}\nQuery: {}",
            e.source_dialect, e.target_dialect, e.source_sql
        )
    }

    fn props<'a>(&self, e: &'a TranslateExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &TranslateExample) -> GroundTruth {
        GroundTruth::Translate {
            gold_sql: e.gold_sql.clone(),
            target: e.target_dialect.clone(),
        }
    }

    /// Re-prove every gold translation from scratch: dialect names must
    /// resolve, both surfaces must parse in their own dialect, the
    /// canonical form must lint clean, and source and gold must execute
    /// row-for-row identically on every witness database — on both the
    /// compiled engine and the independent reference interpreter (whose
    /// row-cap failures count as skips, not violations). This is the
    /// cross-dialect conformance gate: a translation that means something
    /// different than its source cannot pass it.
    fn audit(&self, w: Workload, examples: &[TranslateExample], ctx: &mut AuditCtx) {
        use squ_engine::{execute_query, reference_query, witness_batch_cached};

        let name = format!("translate/{}", w.name());
        for ex in examples {
            let (Some(from), Some(to)) = (
                squ_dialect::Dialect::by_name(&ex.source_dialect),
                squ_dialect::Dialect::by_name(&ex.target_dialect),
            ) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "dialect-names-resolve",
                    format!(
                        "unresolvable dialect pair {} -> {}",
                        ex.source_dialect, ex.target_dialect
                    ),
                );
                continue;
            };
            let (Ok(q_src), Ok(q_gold)) = (
                squ_parser::parse_query_dialect(&ex.source_sql, from),
                squ_parser::parse_query_dialect(&ex.gold_sql, to),
            ) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "parses-in-own-dialect",
                    format!(
                        "a surface does not parse in its own dialect: `{}` ({}) / `{}` ({})",
                        ex.source_sql, ex.source_dialect, ex.gold_sql, ex.target_dialect
                    ),
                );
                continue;
            };
            // Dialect surfaces may use quoting the Squ lexer rejects; lint
            // the canonical re-print, which carries the same structure.
            let canonical = squ_parser::print_query(&q_src);
            let report = ctx.lint(&canonical, &ex.schema_name);
            ctx.require_clean(&name, &ex.query_id, &report, &canonical);
            let witnesses = {
                let schema = ctx.schema(&ex.schema_name);
                witness_batch_cached(schema, 0xBEE5 ^ seed_of(&ex.schema_name))
            };
            for (i, db) in witnesses.iter().enumerate() {
                match (execute_query(&q_src, db), execute_query(&q_gold, db)) {
                    (Ok((r1, _)), Ok((r2, _))) => {
                        if !r1.result_equal(&r2) {
                            ctx.violation(
                                &name,
                                &ex.query_id,
                                "gold-agrees-on-engine",
                                format!(
                                    "witness {i}: source and gold rows differ ({} -> {})",
                                    ex.source_dialect, ex.target_dialect
                                ),
                            );
                        }
                    }
                    _ => ctx.violation(
                        &name,
                        &ex.query_id,
                        "gold-agrees-on-engine",
                        format!("witness {i}: a side failed to execute"),
                    ),
                }
                // The reference interpreter caps row production earlier
                // than the compiled engine; its errors are skips.
                if let (Ok(r1), Ok(r2)) =
                    (reference_query(&q_src, db), reference_query(&q_gold, db))
                {
                    if !r1.result_equal(&r2) {
                        ctx.violation(
                            &name,
                            &ex.query_id,
                            "gold-agrees-on-reference",
                            format!("witness {i}: reference interpreter disagrees"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_enumerate_all_families() {
        let names: Vec<&str> = TaskId::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            [
                "syntax_error",
                "miss_token",
                "query_equiv",
                "performance_pred",
                "query_exp",
                "dialect_translate"
            ]
        );
    }

    #[test]
    fn workload_lists_match_paper() {
        assert_eq!(TaskId::Syntax.workloads().len(), 3);
        assert_eq!(TaskId::Perf.workloads(), &[Workload::Sdss]);
        assert_eq!(TaskId::Explain.workloads(), &[Workload::Spider]);
        assert!(!TaskId::Explain.reviewable());
        assert!(TaskId::Perf.reviewable());
    }

    #[test]
    fn equiv_schedules_first() {
        let mut order: Vec<TaskId> = TaskId::ALL.to_vec();
        order.sort_by_key(|t| t.schedule_class());
        assert_eq!(order[0], TaskId::Equiv);
        assert_eq!(order[1], TaskId::Translate);
    }

    #[test]
    fn translate_metadata() {
        assert_eq!(TaskId::Translate.workloads().len(), 3);
        assert_eq!(TaskId::Translate.short(), "translate");
        assert!(TaskId::Translate.reviewable());
    }
}
