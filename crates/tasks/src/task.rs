//! The [`Task`] abstraction: one trait implemented by each of the paper's
//! five task families, so every downstream layer (suite construction,
//! pipeline, audit, faults, export) can iterate a registry of trait
//! objects instead of matching five hard-coded variants.
//!
//! The trait lives here — next to the dataset builders — and covers
//! everything derivable from an example alone: identity, dataset
//! construction, the prompt payload, the ground truth handed to
//! simulators, and the static audit of the labels. Model-facing behavior
//! (prompt rendering, response extraction, scoring) extends this trait as
//! `RunTask` in `squ-llm`, which owns the extractors.
//!
//! `TaskId` metadata (names, workloads, schedule class) is the single
//! source of truth the registry exposes; the per-variant `match`es below
//! are the one place in the workspace allowed to enumerate all five tasks.

use crate::audit::AuditCtx;
use crate::{
    build_equiv_dataset, build_explain_dataset, build_perf_dataset, build_syntax_dataset,
    build_token_dataset, EquivExample, ExplainExample, KeyFacts, PerfExample, SyntaxExample,
    TokenExample, TokenType,
};
use serde::{Deserialize, Serialize};
use squ_lexer::word_index_at;
use squ_workload::{Dataset, QueryProps, Workload};

/// The composite task families, one per paper prompt (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskId {
    /// `syntax_error` + `syntax_error_type` (one composite prompt).
    Syntax,
    /// `miss_token` + `miss_token_type` + missing word + `miss_token_loc`.
    MissToken,
    /// `query_equiv` + `query_equiv_type`.
    Equiv,
    /// `performance_pred`.
    Perf,
    /// `query_exp`.
    Explain,
}

impl TaskId {
    /// All five tasks, in canonical registry order.
    pub const ALL: [TaskId; 5] = [
        TaskId::Syntax,
        TaskId::MissToken,
        TaskId::Equiv,
        TaskId::Perf,
        TaskId::Explain,
    ];

    /// Paper-style identifier.
    pub fn name(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax_error",
            TaskId::MissToken => "miss_token",
            TaskId::Equiv => "query_equiv",
            TaskId::Perf => "performance_pred",
            TaskId::Explain => "query_exp",
        }
    }

    /// Short slug used in timing spans and audit section names.
    pub fn short(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax",
            TaskId::MissToken => "tokens",
            TaskId::Equiv => "equiv",
            TaskId::Perf => "perf",
            TaskId::Explain => "explain",
        }
    }

    /// File-name stem of the task's benchmark export.
    pub fn file_stem(&self) -> &'static str {
        match self {
            TaskId::Syntax => "syntax",
            TaskId::MissToken => "miss_token",
            TaskId::Equiv => "query_equiv",
            TaskId::Perf => "performance_pred",
            TaskId::Explain => "query_exp",
        }
    }

    /// Workloads the task derives its dataset from.
    pub fn workloads(&self) -> &'static [Workload] {
        const TASK_WORKLOADS: [Workload; 3] =
            [Workload::Sdss, Workload::SqlShare, Workload::JoinOrder];
        match self {
            TaskId::Syntax | TaskId::MissToken | TaskId::Equiv => &TASK_WORKLOADS,
            TaskId::Perf => &[Workload::Sdss],
            TaskId::Explain => &[Workload::Spider],
        }
    }

    /// Build-scheduling priority class: lower runs earlier. Equivalence
    /// datasets lead the queue because differential verification dominates
    /// the suite's wall-clock, so they get worker threads first.
    pub fn schedule_class(&self) -> u8 {
        match self {
            TaskId::Equiv => 0,
            _ => 1,
        }
    }

    /// Whether the task's outcomes carry a `needs_review` bucket (binary
    /// extraction). The explanation task is rubric-scored free text and has
    /// no review routing, so fault-injection sweeps exclude it.
    pub fn reviewable(&self) -> bool {
        !matches!(self, TaskId::Explain)
    }
}

/// Ground truth attached to a request (consumed only by simulators).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GroundTruth {
    /// Syntax-error task truth.
    Syntax {
        /// Does the query contain an error?
        has_error: bool,
        /// Error-type label if any.
        error_type: Option<String>,
    },
    /// Missing-token task truth.
    Token {
        /// Is a token missing?
        missing: bool,
        /// Token-type label if any.
        token_type: Option<String>,
        /// The removed text.
        removed: Option<String>,
        /// Word position of the removal.
        position: Option<usize>,
        /// Word count of the shown query.
        word_count: usize,
    },
    /// Query-equivalence task truth.
    Equiv {
        /// Are the two queries equivalent?
        equivalent: bool,
        /// Transformation label.
        transform: String,
    },
    /// Performance-prediction task truth.
    Perf {
        /// Is the query costly (> 200 ms)?
        costly: bool,
    },
    /// Explanation task truth.
    Explain {
        /// Reference description.
        reference: String,
        /// Rubric key facts.
        facts: KeyFacts,
        /// The SQL being explained.
        sql: String,
    },
}

/// One of the paper's five task families.
///
/// Implementations are stateless unit structs; everything varies through
/// the associated `Example` type and the methods. The contract:
///
/// * [`build`](Task::build) is deterministic in `(dataset, seed)` and is
///   the only way examples come into existence;
/// * [`payload`](Task::payload) is the task-specific part of the prompt
///   (the instruction preamble is owned by `squ-llm`);
/// * [`ground_truth`](Task::ground_truth) packages the labels a simulator
///   consumes (a real API backend never sees it);
/// * [`audit`](Task::audit) statically re-proves every label with the
///   `squ-lint` analyzer, reporting disagreements on the context.
pub trait Task {
    /// The labeled example type this task derives.
    type Example: Clone + Serialize + Deserialize + Send + Sync + 'static;

    /// Which task family this is.
    fn id(&self) -> TaskId;

    /// Bump when the builder's output changes for the same inputs; part of
    /// the artifact-store fingerprint, so stale caches self-invalidate.
    fn version(&self) -> u32 {
        1
    }

    /// Derive the labeled dataset from a sampled workload.
    fn build(&self, ds: &Dataset, seed: u64) -> Vec<Self::Example>;

    /// Stable example id (also the simulator randomness seed component).
    fn example_id<'a>(&self, e: &'a Self::Example) -> &'a str;

    /// The task-specific prompt payload (what follows the instruction).
    fn payload(&self, e: &Self::Example) -> String;

    /// Syntactic properties of the example's (first) query.
    fn props<'a>(&self, e: &'a Self::Example) -> &'a QueryProps;

    /// Ground truth for simulators.
    fn ground_truth(&self, e: &Self::Example) -> GroundTruth;

    /// Statically audit every label against the analyzer.
    fn audit(&self, w: Workload, examples: &[Self::Example], ctx: &mut AuditCtx);
}

/// Word-distance slack allowed between a parse error's reported location
/// and a token deletion's labeled position. The recursive-descent parser
/// cannot reject before the deletion site, but bounded lookahead means the
/// error can surface up to two words earlier than the splice point.
const PARSE_LOCATION_SLACK: usize = 2;

/// The syntax-error detection task (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyntaxTask;

impl Task for SyntaxTask {
    type Example = SyntaxExample;

    fn id(&self) -> TaskId {
        TaskId::Syntax
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<SyntaxExample> {
        build_syntax_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a SyntaxExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &SyntaxExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a SyntaxExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &SyntaxExample) -> GroundTruth {
        GroundTruth::Syntax {
            has_error: e.has_error,
            error_type: e.error_type.map(|t| t.label().to_string()),
        }
    }

    /// Syntax positives must carry the labeled diagnostic at the labeled
    /// span; negatives must lint clean.
    fn audit(&self, w: Workload, examples: &[SyntaxExample], ctx: &mut AuditCtx) {
        let name = format!("syntax/{}", w.name());
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            if !ex.has_error {
                ctx.require_clean(&name, &ex.query_id, &report, &ex.sql);
                continue;
            }
            let (Some(ty), Some((start, end))) = (ex.error_type, ex.expected_span) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-label-complete",
                    "positive example lacks error_type or expected_span".into(),
                );
                continue;
            };
            let code = ty.expected_diagnostic().code();
            let hit = report
                .diagnostics
                .iter()
                .any(|d| d.code == code && d.overlaps(start, end));
            if !hit {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-expected-diagnostic",
                    format!(
                        "no {code} diagnostic overlapping bytes {start}..{end} (got {})",
                        crate::audit::render_codes(&report)
                    ),
                );
            }
        }
    }
}

/// The missing-token task (§3.1).
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenTask;

impl Task for TokenTask {
    type Example = TokenExample;

    fn id(&self) -> TaskId {
        TaskId::MissToken
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<TokenExample> {
        build_token_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a TokenExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &TokenExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a TokenExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &TokenExample) -> GroundTruth {
        GroundTruth::Token {
            missing: e.has_missing,
            token_type: e.token_type.map(|t| t.label().to_string()),
            removed: e.removed_text.clone(),
            position: e.position,
            word_count: e.props.word_count,
        }
    }

    /// Token-deletion positives must be detectable by the analyzer (except
    /// the whole-predicate class), with parse errors locating near the
    /// labeled word position; negatives must lint clean.
    fn audit(&self, w: Workload, examples: &[TokenExample], ctx: &mut AuditCtx) {
        let name = format!("tokens/{}", w.name());
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            if !ex.has_missing {
                ctx.require_clean(&name, &ex.query_id, &report, &ex.sql);
                continue;
            }
            let (Some(ty), Some(position)) = (ex.token_type, ex.position) else {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-label-complete",
                    "positive example lacks token_type or position".into(),
                );
                continue;
            };
            // The labeled position and the recorded splice offset must agree.
            // A deletion that removed the tail of a word (e.g. the column of a
            // `t.plate` qualified name) leaves the splice point on the word
            // boundary *after* the remaining fragment, so when the splice abuts
            // a preceding non-whitespace character the next word index is also
            // accepted.
            if let Some(at) = ex.removed_at {
                let wi = word_index_at(&ex.sql, at);
                let tail_of_word = at > 0
                    && !ex.sql.as_bytes()[at - 1].is_ascii_whitespace()
                    && wi == position + 1;
                if wi != position && !tail_of_word {
                    ctx.violation(
                        &name,
                        &ex.query_id,
                        "position-matches-splice",
                        format!("splice offset {at} is word {wi}, labeled position {position}"),
                    );
                }
            }
            if ty == TokenType::Predicate {
                // The paper's hard class: deleting a whole predicate often
                // yields a valid query, so no detectability is required.
                continue;
            }
            if report.is_clean() {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "positive-detectable",
                    format!("deleting {ty} token left an analyzably-clean query"),
                );
                continue;
            }
            // Any parse error must locate at (or within lookahead slack of)
            // the deletion site — the parser cannot reject an intact prefix.
            for d in report.errors() {
                if d.code != "SQU001" && d.code != "SQU002" {
                    continue; // binder errors point at uses, not the splice
                }
                let Some(span) = d.span else { continue };
                let wi = word_index_at(&ex.sql, span.start);
                if wi + PARSE_LOCATION_SLACK < position {
                    ctx.violation(
                        &name,
                        &ex.query_id,
                        "parse-error-near-site",
                        format!(
                            "{} reported at word {wi}, {} words before labeled position {position}",
                            d.code,
                            position - wi
                        ),
                    );
                }
            }
        }
    }
}

/// The query-equivalence task (§3.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct EquivTask;

impl Task for EquivTask {
    type Example = EquivExample;

    fn id(&self) -> TaskId {
        TaskId::Equiv
    }

    fn build(&self, ds: &Dataset, seed: u64) -> Vec<EquivExample> {
        build_equiv_dataset(ds, seed)
    }

    fn example_id<'a>(&self, e: &'a EquivExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &EquivExample) -> String {
        format!("Query 1: {}\nQuery 2: {}", e.sql1, e.sql2)
    }

    fn props<'a>(&self, e: &'a EquivExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &EquivExample) -> GroundTruth {
        GroundTruth::Equiv {
            equivalent: e.equivalent,
            transform: e.transform.clone(),
        }
    }

    /// Both sides of every pair must lint clean; equivalent pairs must have
    /// identical resolution signatures, non-equivalent pairs must differ.
    /// Every pair additionally runs through the `squ-sema` certifier, which
    /// must never contradict the label: an equivalent pair statically
    /// convicted, or a non-equivalent pair certified equivalent, is a
    /// violation. Certifier tallies (including the fraction of
    /// non-equivalence labels proven without execution) accumulate on the
    /// context.
    fn audit(&self, w: Workload, examples: &[EquivExample], ctx: &mut AuditCtx) {
        let name = format!("equiv/{}", w.name());
        for ex in examples {
            let r1 = ctx.lint(&ex.sql1, &ex.schema_name);
            let r2 = ctx.lint(&ex.sql2, &ex.schema_name);
            ctx.require_clean(&name, &ex.query_id, &r1, &ex.sql1);
            ctx.require_clean(&name, &ex.query_id, &r2, &ex.sql2);
            certify_example(&name, ex, ctx);
            if ex.equivalent {
                match (&r1.resolution, &r2.resolution) {
                    (Some(a), Some(b)) if a == b => {}
                    (Some(a), Some(b)) => ctx.violation(
                        &name,
                        &ex.query_id,
                        "equivalent-same-resolution",
                        format!(
                            "{} rewrite changed resolution: {} vs {}",
                            ex.transform,
                            a.render(),
                            b.render()
                        ),
                    ),
                    _ => ctx.violation(
                        &name,
                        &ex.query_id,
                        "equivalent-same-resolution",
                        format!("{} pair has an unanalyzable side", ex.transform),
                    ),
                }
            } else if ex.sql1 == ex.sql2 {
                ctx.violation(
                    &name,
                    &ex.query_id,
                    "non-equivalent-differs",
                    format!("{} pair is textually identical", ex.transform),
                );
            }
        }
    }
}

/// Run one equivalence pair through the static certifier, recording the
/// tally and any label contradiction. Unparseable sides (never produced by
/// the builder) simply count as undecided.
fn certify_example(dataset: &str, ex: &EquivExample, ctx: &mut AuditCtx) {
    use squ_sema::Certificate;

    ctx.certs.pairs += 1;
    if !ex.equivalent {
        ctx.certs.noneq_pairs += 1;
    }
    let (Ok(q1), Ok(q2)) = (
        squ_parser::parse_query(&ex.sql1),
        squ_parser::parse_query(&ex.sql2),
    ) else {
        ctx.certs.certified_unknown += 1;
        return;
    };
    let cert = {
        let schema = ctx.schema(&ex.schema_name);
        squ_sema::certify_pair(&q1, &q2, schema)
    };
    match cert {
        Certificate::Equivalent(reason) => {
            ctx.certs.certified_equivalent += 1;
            if !ex.equivalent {
                ctx.violation(
                    dataset,
                    &ex.query_id,
                    "non-equivalent-not-certified-equivalent",
                    format!(
                        "{} pair is labeled non-equivalent but certified equivalent ({reason})",
                        ex.transform
                    ),
                );
            }
        }
        Certificate::Inequivalent(reason) => {
            ctx.certs.certified_inequivalent += 1;
            if ex.equivalent {
                ctx.violation(
                    dataset,
                    &ex.query_id,
                    "equivalent-not-statically-convicted",
                    format!(
                        "{} pair is labeled equivalent but statically convicted ({reason})",
                        ex.transform
                    ),
                );
            } else {
                ctx.certs.noneq_convicted += 1;
            }
        }
        Certificate::Unknown => ctx.certs.certified_unknown += 1,
    }
}

/// The performance-prediction task (§3.2, SDSS only).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfTask;

impl Task for PerfTask {
    type Example = PerfExample;

    fn id(&self) -> TaskId {
        TaskId::Perf
    }

    fn build(&self, ds: &Dataset, _seed: u64) -> Vec<PerfExample> {
        build_perf_dataset(ds)
    }

    fn example_id<'a>(&self, e: &'a PerfExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &PerfExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a PerfExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &PerfExample) -> GroundTruth {
        GroundTruth::Perf {
            costly: e.is_costly,
        }
    }

    /// Performance examples (real SDSS queries) must lint clean.
    fn audit(&self, _w: Workload, examples: &[PerfExample], ctx: &mut AuditCtx) {
        for ex in examples {
            let report = ctx.lint(&ex.sql, "sdss");
            ctx.require_clean("perf/sdss", &ex.query_id, &report, &ex.sql);
        }
    }
}

/// The query-explanation task (§3.2, Spider only).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainTask;

impl Task for ExplainTask {
    type Example = ExplainExample;

    fn id(&self) -> TaskId {
        TaskId::Explain
    }

    fn build(&self, ds: &Dataset, _seed: u64) -> Vec<ExplainExample> {
        build_explain_dataset(ds)
    }

    fn example_id<'a>(&self, e: &'a ExplainExample) -> &'a str {
        &e.query_id
    }

    fn payload(&self, e: &ExplainExample) -> String {
        e.sql.clone()
    }

    fn props<'a>(&self, e: &'a ExplainExample) -> &'a QueryProps {
        &e.props
    }

    fn ground_truth(&self, e: &ExplainExample) -> GroundTruth {
        GroundTruth::Explain {
            reference: e.reference.clone(),
            facts: e.facts.clone(),
            sql: e.sql.clone(),
        }
    }

    /// Explanation examples (Spider queries) must lint clean.
    fn audit(&self, _w: Workload, examples: &[ExplainExample], ctx: &mut AuditCtx) {
        for ex in examples {
            let report = ctx.lint(&ex.sql, &ex.schema_name);
            ctx.require_clean("explain/spider", &ex.query_id, &report, &ex.sql);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_ids_enumerate_all_families() {
        let names: Vec<&str> = TaskId::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            [
                "syntax_error",
                "miss_token",
                "query_equiv",
                "performance_pred",
                "query_exp"
            ]
        );
    }

    #[test]
    fn workload_lists_match_paper() {
        assert_eq!(TaskId::Syntax.workloads().len(), 3);
        assert_eq!(TaskId::Perf.workloads(), &[Workload::Sdss]);
        assert_eq!(TaskId::Explain.workloads(), &[Workload::Spider]);
        assert!(!TaskId::Explain.reviewable());
        assert!(TaskId::Perf.reviewable());
    }

    #[test]
    fn equiv_schedules_first() {
        let mut order: Vec<TaskId> = TaskId::ALL.to_vec();
        order.sort_by_key(|t| t.schedule_class());
        assert_eq!(order[0], TaskId::Equiv);
    }
}
