//! Dialect-translation datasets (the sixth task family,
//! `dialect_translate`).
//!
//! Each example asks for a workload query, rendered in a *source* SQL
//! dialect, to be translated into a *target* dialect. The gold translation
//! is produced mechanically — the parsed AST is rewritten through the
//! [`squ_dialect`] catalog (function spellings, `CAST` type names) and
//! re-printed with the target dialect's quoting and row-bound conventions —
//! and then **differentially verified**: source and gold ASTs must execute
//! row-for-row identically on every witness database of the query's schema.
//! Both renderings must also round-trip through their own dialect's parser
//! and analyze clean, so every published pair is machine-checked end to
//! end.

use serde::{Deserialize, Serialize};
use squ_dialect::{translate_function, translate_type, Dialect};
use squ_engine::witness_batch_cached;
use squ_parser::ast::*;
use squ_parser::{parse_query, parse_query_dialect, print_query_dialect};
use squ_workload::{schema_for, Dataset, WorkloadQuery};

use crate::equiv::{differential_verdict, seed_of, Verdict};

/// One labeled translation example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TranslateExample {
    /// Source workload query id.
    pub query_id: String,
    /// Schema the query runs against.
    pub schema_name: String,
    /// Source dialect name (one of [`Dialect::NAMES`], never `squ`).
    pub source_dialect: String,
    /// Target dialect name (one of [`Dialect::NAMES`], never `squ`).
    pub target_dialect: String,
    /// The query rendered in the source dialect.
    pub source_sql: String,
    /// The verified gold translation, rendered in the target dialect.
    pub gold_sql: String,
    /// Syntactic properties of the source rendering.
    pub props: squ_workload::QueryProps,
}

/// The twelve ordered `(source, target)` pairs of concrete dialects
/// (every pair of [`Dialect::CONCRETE`] with source ≠ target).
pub fn dialect_pairs() -> Vec<(Dialect, Dialect)> {
    let mut pairs = Vec::new();
    for from in Dialect::CONCRETE {
        for to in Dialect::CONCRETE {
            if from != to {
                pairs.push((from, to));
            }
        }
    }
    pairs
}

/// Rewrite a query AST for a target dialect: function names take the
/// dialect's catalog spelling and `CAST` type names take the dialect's
/// type alias. The rewrite descends into every subquery (CTEs, derived
/// tables, `IN`/`EXISTS`/scalar subqueries), unlike the equivalence
/// transforms which deliberately stop at subquery boundaries. Quoting and
/// `LIMIT`/`TOP` are *printer* concerns — the AST keeps both fields and
/// [`print_query_dialect`] folds them.
pub fn translate_query(q: &Query, to: Dialect) -> Query {
    let mut out = q.clone();
    rewrite_query(&mut out, to);
    out
}

fn rewrite_query(q: &mut Query, to: Dialect) {
    for cte in &mut q.ctes {
        rewrite_query(&mut cte.query, to);
    }
    rewrite_set_expr(&mut q.body, to);
    for item in &mut q.order_by {
        rewrite_expr(&mut item.expr, to);
    }
}

fn rewrite_set_expr(body: &mut SetExpr, to: Dialect) {
    match body {
        SetExpr::Select(sel) => rewrite_select(sel, to),
        SetExpr::SetOp { left, right, .. } => {
            rewrite_set_expr(left, to);
            rewrite_set_expr(right, to);
        }
    }
}

fn rewrite_select(sel: &mut Select, to: Dialect) {
    for item in &mut sel.items {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite_expr(expr, to);
        }
    }
    for t in &mut sel.from {
        rewrite_table_ref(t, to);
    }
    if let Some(e) = &mut sel.selection {
        rewrite_expr(e, to);
    }
    for e in &mut sel.group_by {
        rewrite_expr(e, to);
    }
    if let Some(e) = &mut sel.having {
        rewrite_expr(e, to);
    }
}

fn rewrite_table_ref(t: &mut TableRef, to: Dialect) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => rewrite_query(query, to),
        TableRef::Join {
            left,
            right,
            constraint,
            ..
        } => {
            rewrite_table_ref(left, to);
            rewrite_table_ref(right, to);
            if let JoinConstraint::On(e) = constraint {
                rewrite_expr(e, to);
            }
        }
    }
}

fn rewrite_expr(e: &mut Expr, to: Dialect) {
    match e {
        Expr::Function { name, args, .. } => {
            *name = translate_function(name, to);
            for a in args {
                rewrite_expr(a, to);
            }
        }
        Expr::Cast { expr, type_name } => {
            *type_name = translate_type(type_name, to);
            rewrite_expr(expr, to);
        }
        Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
            rewrite_expr(left, to);
            rewrite_expr(right, to);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            rewrite_expr(a, to);
            rewrite_expr(b, to);
        }
        Expr::Not(x) | Expr::Neg(x) => rewrite_expr(x, to),
        Expr::IsNull { expr, .. } => rewrite_expr(expr, to),
        Expr::Between {
            expr, low, high, ..
        } => {
            rewrite_expr(expr, to);
            rewrite_expr(low, to);
            rewrite_expr(high, to);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_expr(expr, to);
            for x in list {
                rewrite_expr(x, to);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            rewrite_expr(expr, to);
            rewrite_query(subquery, to);
        }
        Expr::Exists { subquery, .. } => rewrite_query(subquery, to),
        Expr::ScalarSubquery(q) => rewrite_query(q, to),
        Expr::Like { expr, pattern, .. } => {
            rewrite_expr(expr, to);
            rewrite_expr(pattern, to);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                rewrite_expr(op, to);
            }
            for (w, t) in branches {
                rewrite_expr(w, to);
                rewrite_expr(t, to);
            }
            if let Some(x) = else_expr {
                rewrite_expr(x, to);
            }
        }
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// Build the dialect-translation dataset: one `(source, target)` rendering
/// per SELECT workload query, cycling through [`dialect_pairs`] (the cycle
/// phase is seeded, the pair advances only when a query yields a verified
/// example, so every pair stays represented). Labels are verified by
/// differential execution on the schema's cached witness batch — the same
/// batches the equivalence builder uses, so warm builds share the work.
pub fn build_translate_dataset(ds: &Dataset, seed: u64) -> Vec<TranslateExample> {
    let pairs = dialect_pairs();
    // The seed fixes the starting phase of the pair cycle; everything
    // after that is deterministic in the workload order.
    let mut pair_idx = ((seed ^ 0xD1A1) % pairs.len() as u64) as usize;
    let mut out = Vec::new();
    for wq in &ds.queries {
        if wq.props.query_type != "SELECT" {
            continue;
        }
        let (from, to) = pairs[pair_idx];
        if let Some(ex) = make_translation(wq, from, to) {
            out.push(ex);
            pair_idx = (pair_idx + 1) % pairs.len();
        }
    }
    out
}

/// Produce one verified translation example, or `None` when any gate
/// fails: the query must parse, both renderings must round-trip through
/// their own dialect's parser (e.g. `TOP` inside a set-operation branch
/// cannot be re-read by a `LIMIT`-only dialect), both ASTs must analyze
/// clean against the schema, and differential execution must agree on
/// every witness.
fn make_translation(wq: &WorkloadQuery, from: Dialect, to: Dialect) -> Option<TranslateExample> {
    let q = parse_query(&wq.sql).ok()?;
    let q_src = translate_query(&q, from);
    let q_gold = translate_query(&q, to);
    let source_sql = print_query_dialect(&q_src, from);
    let gold_sql = print_query_dialect(&q_gold, to);
    // Round-trip gate: the printed text must re-parse in its own dialect
    // to the same AST, otherwise the example's surface form would not
    // mean what the label claims.
    if parse_query_dialect(&source_sql, from).ok()? != q_src {
        return None;
    }
    if parse_query_dialect(&gold_sql, to).ok()? != q_gold {
        return None;
    }
    let schema = schema_for(wq.workload, &wq.schema_name);
    let analyzes_clean =
        |q: &Query| squ_schema::analyze(&Statement::Query(q.clone()), &schema).is_empty();
    if !analyzes_clean(&q_src) || !analyzes_clean(&q_gold) {
        return None;
    }
    // Same witness-seed key as the equivalence builder, so both task
    // families share one memoized batch per schema.
    let witnesses = witness_batch_cached(&schema, 0xBEE5 ^ seed_of(&wq.schema_name));
    if differential_verdict(&q_src, &q_gold, &witnesses) != Verdict::AgreedEverywhere {
        return None;
    }
    let props = squ_workload::query_props(&source_sql, &Statement::Query(q_src.clone()));
    Some(TranslateExample {
        query_id: wq.id.clone(),
        schema_name: wq.schema_name.clone(),
        source_dialect: from.name().to_string(),
        target_dialect: to.name().to_string(),
        source_sql,
        gold_sql,
        props,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_are_all_ordered_concrete_pairs() {
        let pairs = dialect_pairs();
        assert_eq!(pairs.len(), 12);
        assert!(pairs.iter().all(|(a, b)| a != b));
        assert!(pairs
            .iter()
            .all(|(a, b)| *a != Dialect::Squ && *b != Dialect::Squ));
    }

    #[test]
    fn translate_renames_functions_and_types() {
        let q = parse_query(
            "SELECT UPPER(class), LENGTH(class), CAST(z AS FLOAT) FROM SpecObj \
             WHERE SUBSTRING(class, 1, 1) = 'S'",
        )
        .unwrap();
        let my = print_query_dialect(&translate_query(&q, Dialect::Mysql), Dialect::Mysql);
        assert!(my.contains("UCASE("), "mysql spelling: {my}");
        assert!(my.contains("CAST(z AS DECIMAL)"), "mysql type: {my}");
        let ts = print_query_dialect(&translate_query(&q, Dialect::Tsql), Dialect::Tsql);
        assert!(ts.contains("LEN("), "tsql spelling: {ts}");
        let sq = print_query_dialect(&translate_query(&q, Dialect::Sqlite), Dialect::Sqlite);
        assert!(sq.contains("SUBSTR("), "sqlite spelling: {sq}");
    }

    #[test]
    fn translate_descends_into_subqueries() {
        let q = parse_query(
            "SELECT plate FROM SpecObj WHERE z IN (SELECT MAX(z) FROM SpecObj WHERE LENGTH(class) > 2)",
        )
        .unwrap();
        let ts = print_query_dialect(&translate_query(&q, Dialect::Tsql), Dialect::Tsql);
        assert!(ts.contains("LEN("), "subquery function renamed: {ts}");
    }

    #[test]
    fn translated_queries_round_trip_their_dialect() {
        let q =
            parse_query("SELECT TOP 5 plate, mjd FROM SpecObj WHERE z > 0.5 ORDER BY mjd").unwrap();
        for d in Dialect::CONCRETE {
            let t = translate_query(&q, d);
            let sql = print_query_dialect(&t, d);
            let back = parse_query_dialect(&sql, d)
                .unwrap_or_else(|e| panic!("{}: `{sql}` did not re-parse: {e:?}", d.name()));
            // Print → parse → print must be a fixed point (LIMIT-only
            // dialects fold TOP into LIMIT on the first print, after which
            // the rendering is stable).
            assert_eq!(
                print_query_dialect(&back, d),
                sql,
                "{}: unstable round-trip",
                d.name()
            );
        }
    }

    #[test]
    fn dataset_examples_are_verified_and_cycle_pairs() {
        let ds = squ_workload::build(squ_workload::Workload::JoinOrder, 2023);
        let examples = build_translate_dataset(&ds, 2023);
        assert!(!examples.is_empty());
        let mut seen_pairs = std::collections::HashSet::new();
        for ex in &examples {
            let from = Dialect::by_name(&ex.source_dialect).unwrap();
            let to = Dialect::by_name(&ex.target_dialect).unwrap();
            assert_ne!(from, to, "{}", ex.query_id);
            seen_pairs.insert((from, to));
            // The published surfaces re-parse in their own dialects.
            let q_src = parse_query_dialect(&ex.source_sql, from).unwrap();
            let q_gold = parse_query_dialect(&ex.gold_sql, to).unwrap();
            let schema = schema_for(squ_workload::Workload::JoinOrder, &ex.schema_name);
            let witnesses = witness_batch_cached(&schema, 0xBEE5 ^ seed_of(&ex.schema_name));
            assert_eq!(
                differential_verdict(&q_src, &q_gold, &witnesses),
                Verdict::AgreedEverywhere,
                "{}: {} -> {}",
                ex.query_id,
                ex.source_sql,
                ex.gold_sql
            );
        }
        assert!(
            seen_pairs.len() >= 6,
            "pair cycle stuck: only {:?}",
            seen_pairs
        );
    }

    #[test]
    fn build_is_deterministic() {
        let ds = squ_workload::build(squ_workload::Workload::JoinOrder, 2023);
        let a = build_translate_dataset(&ds, 7);
        let b = build_translate_dataset(&ds, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source_sql, y.source_sql);
            assert_eq!(x.gold_sql, y.gold_sql);
        }
    }
}
