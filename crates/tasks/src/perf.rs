//! Query-performance-prediction dataset (paper §3.1 `performance_pred`).
//!
//! Only SDSS carries elapsed-time ground truth (paper Figure 5). Queries
//! running longer than 200 ms are the positive ("costly") class.

use serde::{Deserialize, Serialize};
use squ_workload::{Dataset, Workload};

/// The paper's cost threshold in milliseconds.
pub const COST_THRESHOLD_MS: f64 = 200.0;

/// One labeled example of the `performance_pred` task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfExample {
    /// Source workload query id.
    pub query_id: String,
    /// The SQL shown to the model.
    pub sql: String,
    /// Recorded elapsed time in milliseconds.
    pub elapsed_ms: f64,
    /// Ground truth: does the query exceed the 200 ms threshold?
    pub is_costly: bool,
    /// Query properties (used for failure slicing).
    pub props: squ_workload::QueryProps,
}

/// Build the performance dataset from the SDSS workload.
///
/// # Panics
/// Panics if called with a non-SDSS dataset (no runtime ground truth).
pub fn build_perf_dataset(ds: &Dataset) -> Vec<PerfExample> {
    assert_eq!(
        ds.workload,
        Workload::Sdss,
        "performance_pred requires SDSS elapsed times"
    );
    ds.queries
        .iter()
        .map(|q| {
            let elapsed = q
                .elapsed_ms
                .expect("every SDSS query carries an elapsed time"); // lint:allow: workload construction sets it
            PerfExample {
                query_id: q.id.clone(),
                sql: q.sql.clone(),
                elapsed_ms: elapsed,
                is_costly: elapsed > COST_THRESHOLD_MS,
                props: q.props.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_workload::build;

    #[test]
    fn labels_follow_threshold() {
        let ds = build(Workload::Sdss, 2023);
        let examples = build_perf_dataset(&ds);
        assert_eq!(examples.len(), 285);
        for e in &examples {
            assert_eq!(e.is_costly, e.elapsed_ms > COST_THRESHOLD_MS);
        }
        let costly = examples.iter().filter(|e| e.is_costly).count();
        assert!(
            costly > 40 && costly < 245,
            "degenerate split: {costly}/285"
        );
    }

    #[test]
    #[should_panic(expected = "performance_pred requires SDSS")]
    fn non_sdss_panics() {
        let ds = build(Workload::SqlShare, 2023);
        let _ = build_perf_dataset(&ds);
    }
}
