//! Query-explanation dataset (paper §3.1.3 `query_exp`, §4.5 case study).
//!
//! Spider queries paired with their reference descriptions, plus the *key
//! facts* an explanation must mention to be judged complete — the
//! machine-checkable core of the paper's otherwise-qualitative rubric:
//! tables touched, aggregate phrases, filter values, the ordering
//! superlative (`ORDER BY … ASC LIMIT 1` = "least …"), and the projected
//! attributes.

use serde::{Deserialize, Serialize};
use squ_parser::ast::*;
use squ_parser::parse;
use squ_workload::{Dataset, Workload};

/// One query-explanation example.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainExample {
    /// Source workload query id.
    pub query_id: String,
    /// Schema name.
    pub schema_name: String,
    /// The SQL to explain.
    pub sql: String,
    /// Reference description (Spider ground truth).
    pub reference: String,
    /// Key facts a complete explanation must mention.
    pub facts: KeyFacts,
    /// Query properties.
    pub props: squ_workload::QueryProps,
}

/// The rubric's key facts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KeyFacts {
    /// Base tables referenced.
    pub tables: Vec<String>,
    /// Projected column names (the detail GPT4 dropped in the paper's Q17).
    pub projected_columns: Vec<String>,
    /// Aggregate phrases ("the number of rows", "the average z", …).
    pub aggregates: Vec<String>,
    /// Literal values appearing in filters ("'volvo'", "2014", …).
    pub filter_values: Vec<String>,
    /// Ordering superlative for `ORDER BY … LIMIT 1` queries:
    /// `Some(("least"|"greatest", column))`.
    pub superlative: Option<(String, String)>,
    /// Set-operation keyword if any ("both" for INTERSECT, etc.).
    pub set_op: Option<String>,
}

/// Extract the rubric facts from a statement.
pub fn key_facts(stmt: &Statement) -> KeyFacts {
    let mut facts = KeyFacts::default();
    squ_parser::visit::walk_table_refs(stmt, &mut |tr| {
        if let TableRef::Named { name, .. } = tr {
            let n = name.clone();
            if !facts.tables.iter().any(|t| t.eq_ignore_ascii_case(&n)) {
                facts.tables.push(n);
            }
        }
    });
    if let Some(q) = stmt.query() {
        collect_body_facts(&q.body, &mut facts);
        if let SetExpr::SetOp { op, .. } = &q.body {
            facts.set_op = Some(
                match op {
                    SetOp::Intersect => "both",
                    SetOp::Union => "combined",
                    SetOp::Except => "not",
                }
                .to_string(),
            );
        }
        if q.limit == Some(1) {
            if let Some(item) = q.order_by.first() {
                if let Expr::Column(c) = &item.expr {
                    let word = if item.desc { "greatest" } else { "least" };
                    facts.superlative = Some((word.to_string(), c.name.clone()));
                }
            }
        }
    }
    squ_parser::visit::walk_exprs(stmt, &mut |e| match e {
        Expr::Function { name, args, .. } if e.is_aggregate_call() => {
            let phrase = match name.to_ascii_uppercase().as_str() {
                "COUNT" => "number".to_string(),
                "AVG" => "average".to_string(),
                "SUM" => "total".to_string(),
                "MIN" => "minimum".to_string(),
                "MAX" => "maximum".to_string(),
                other => other.to_lowercase(),
            };
            let _ = args;
            if !facts.aggregates.contains(&phrase) {
                facts.aggregates.push(phrase);
            }
        }
        Expr::Compare { right, .. } => {
            if let Expr::Literal(l) = &**right {
                let v = match l {
                    Literal::Number(n) if n.fract() == 0.0 => format!("{}", *n as i64),
                    Literal::Number(n) => format!("{n}"),
                    Literal::String(s) => format!("'{s}'"),
                    Literal::Bool(b) => b.to_string(),
                    Literal::Null => "null".to_string(),
                };
                if !facts.filter_values.contains(&v) {
                    facts.filter_values.push(v);
                }
            }
        }
        _ => {}
    });
    facts
}

fn collect_body_facts(body: &SetExpr, facts: &mut KeyFacts) {
    match body {
        SetExpr::Select(s) => {
            for item in &s.items {
                if let SelectItem::Expr {
                    expr: Expr::Column(c),
                    ..
                } = item
                {
                    if !facts
                        .projected_columns
                        .iter()
                        .any(|p| p.eq_ignore_ascii_case(&c.name))
                    {
                        facts.projected_columns.push(c.name.clone());
                    }
                }
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            collect_body_facts(left, facts);
            collect_body_facts(right, facts);
        }
    }
}

/// Build the query-explanation dataset from the Spider workload.
pub fn build_explain_dataset(ds: &Dataset) -> Vec<ExplainExample> {
    assert_eq!(ds.workload, Workload::Spider, "query_exp uses Spider");
    ds.queries
        .iter()
        .map(|q| {
            let stmt = parse(&q.sql).expect("workload queries parse"); // lint:allow: generated/fixed SQL, parse covered by tests
            ExplainExample {
                query_id: q.id.clone(),
                schema_name: q.schema_name.clone(),
                sql: q.sql.clone(),
                reference: q
                    .description
                    .clone()
                    .expect("Spider queries carry descriptions"), // lint:allow: the Spider corpus always sets them
                facts: key_facts(&stmt),
                props: q.props.clone(),
            }
        })
        .collect()
}

/// The paper's four case-study queries (Listing 3), verbatim, with the
/// paper's ground-truth descriptions.
pub fn case_study_queries() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "Q15",
            "SELECT count(*), cName FROM tryout GROUP BY cName ORDER BY count(*) DESC",
            "The query finds the number of students who participate in the tryout for each college, ordered by descending count.",
        ),
        (
            "Q16",
            "SELECT count(*), student_course_id FROM Transcript_Cnt GROUP BY student_course_id ORDER BY count(*) DESC LIMIT 1",
            "The query identifies the maximum number of times a course enrollment result can appear in different transcripts and displays the course enrollment ID.",
        ),
        (
            "Q17",
            "SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2014 INTERSECT SELECT S.name, S.loc FROM concert AS C JOIN stadium AS S ON C.stadium_id = S.stadium_id WHERE C.Year = 2015",
            "The query finds the name and location of stadiums where concerts took place in both 2014 and 2015.",
        ),
        (
            "Q18",
            "SELECT C.cylinders FROM CARS_DATA AS C JOIN CAR_NAMES AS T ON C.Id = T.MakeId WHERE T.Model = 'volvo' ORDER BY C.accelerate ASC LIMIT 1",
            "The query retrieves the number of cylinders for the Volvo car with the least acceleration.",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_workload::build;

    #[test]
    fn facts_for_paper_q18() {
        let (_, sql, _) = case_study_queries()[3];
        let stmt = parse(sql).unwrap();
        let f = key_facts(&stmt);
        assert!(f.tables.iter().any(|t| t == "CARS_DATA"));
        assert!(f.projected_columns.iter().any(|c| c == "cylinders"));
        assert!(f.filter_values.contains(&"'volvo'".to_string()));
        assert_eq!(
            f.superlative,
            Some(("least".to_string(), "accelerate".to_string()))
        );
    }

    #[test]
    fn facts_for_paper_q17() {
        let (_, sql, _) = case_study_queries()[2];
        let stmt = parse(sql).unwrap();
        let f = key_facts(&stmt);
        assert_eq!(f.set_op.as_deref(), Some("both"));
        assert!(f.filter_values.contains(&"2014".to_string()));
        assert!(f.filter_values.contains(&"2015".to_string()));
        assert!(f.projected_columns.iter().any(|c| c == "name"));
        assert!(f.projected_columns.iter().any(|c| c == "loc"));
    }

    #[test]
    fn facts_for_paper_q15() {
        let (_, sql, _) = case_study_queries()[0];
        let stmt = parse(sql).unwrap();
        let f = key_facts(&stmt);
        assert!(f.aggregates.contains(&"number".to_string()));
        assert!(f.tables.iter().any(|t| t == "tryout"));
    }

    #[test]
    fn dataset_builds_with_facts() {
        let ds = build(Workload::Spider, 2023);
        let examples = build_explain_dataset(&ds);
        assert_eq!(examples.len(), 200);
        for e in &examples {
            assert!(!e.facts.tables.is_empty(), "{}: no tables", e.query_id);
            assert!(!e.reference.is_empty());
        }
    }

    #[test]
    fn case_study_queries_parse_against_their_schemas() {
        use squ_workload::schema_for;
        let schemas = [
            "soccer_tryouts",
            "student_transcripts",
            "concert_singer",
            "car_1",
        ];
        for ((_, sql, _), schema_name) in case_study_queries().iter().zip(schemas) {
            let stmt = parse(sql).unwrap();
            let schema = schema_for(Workload::Spider, schema_name);
            let diags = squ_schema::analyze(&stmt, &schema);
            assert!(diags.is_empty(), "{sql}: {diags:?}");
        }
    }
}
