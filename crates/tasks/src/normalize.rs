//! Canonical query normalization — a classical equivalence baseline.
//!
//! Rewrites a query into a canonical form such that two queries with equal
//! normal forms are equivalent (the converse does not hold). Canonicalized
//! aspects, mirroring the benchmark's equivalence-preserving transforms:
//!
//! * commutative `AND`/`OR` conjunct order (sorted by printed form);
//! * `BETWEEN` → closed-range conjunction;
//! * `IN (v1, …)` → sorted value list;
//! * mirrored comparisons (`5 < a` → `a > 5`);
//! * double negation and De Morgan (`NOT` pushed to the leaves);
//! * table aliases renamed positionally (`n1`, `n2`, …);
//! * pass-through CTEs and derived tables (`SELECT * FROM (q)`) unwrapped.
//!
//! Used by the `ext-baselines` study: a checker that answers "equivalent"
//! iff the normal forms match gets perfect precision on `query_equiv` and
//! recall equal to the share of transforms normalization covers — the
//! inverse error profile of the LLMs.

use squ_parser::ast::*;
use squ_parser::{print_expr, print_query, CompareOp};

/// Normalize a query to canonical form.
pub fn normalize(q: &Query) -> Query {
    let mut out = q.clone();
    // iterate to a fixpoint: unwrapping may expose more rewrites
    for _ in 0..4 {
        out = unwrap_passthrough(&out);
        normalize_query(&mut out);
        let again = unwrap_passthrough(&out);
        if again == out {
            break;
        }
        out = again;
    }
    rename_aliases(&mut out);
    normalize_query(&mut out);
    out
}

/// Are the two queries syntactically equivalent after normalization?
/// `true` is a sound equivalence verdict; `false` means "unknown".
pub fn normal_forms_equal(q1: &Query, q2: &Query) -> bool {
    normalize(q1) == normalize(q2)
}

// ---------------- pass-through unwrapping ----------------

/// Unwrap `WITH w AS (q) SELECT * FROM w` and `SELECT * FROM (q) AS d`
/// into `q` (hoisting outer ORDER BY / LIMIT back in when the inner has
/// none).
fn unwrap_passthrough(q: &Query) -> Query {
    let Some(select) = q.as_select() else {
        return q.clone();
    };
    // plain star projection, no filters/grouping at the outer level
    let is_plain = select.items.len() == 1
        && matches!(select.items[0], SelectItem::Wildcard)
        && select.selection.is_none()
        && select.group_by.is_empty()
        && select.having.is_none()
        && !select.distinct
        && select.top.is_none()
        && select.from.len() == 1;
    if !is_plain {
        return q.clone();
    }
    let inner: Option<Query> = match (&select.from[0], q.ctes.as_slice()) {
        // WITH w AS (inner) SELECT * FROM w
        (TableRef::Named { name, .. }, [cte]) if cte.name.eq_ignore_ascii_case(name) => {
            Some((*cte.query).clone())
        }
        // SELECT * FROM (inner) AS d
        (TableRef::Derived { query, .. }, []) => Some((**query).clone()),
        _ => None,
    };
    match inner {
        Some(mut inner) if inner.order_by.is_empty() && inner.limit.is_none() => {
            inner.order_by = q.order_by.clone();
            inner.limit = q.limit;
            inner
        }
        _ => q.clone(),
    }
}

// ---------------- expression canonicalization ----------------

fn normalize_query(q: &mut Query) {
    for cte in &mut q.ctes {
        normalize_query(&mut cte.query);
    }
    normalize_set_expr(&mut q.body);
    for o in &mut q.order_by {
        o.expr = normalize_expr(o.expr.clone());
    }
}

fn normalize_set_expr(body: &mut SetExpr) {
    match body {
        SetExpr::Select(s) => normalize_select(s),
        SetExpr::SetOp { left, right, .. } => {
            normalize_set_expr(left);
            normalize_set_expr(right);
        }
    }
}

fn normalize_select(s: &mut Select) {
    for item in &mut s.items {
        if let SelectItem::Expr { expr, .. } = item {
            *expr = normalize_expr(expr.clone());
        }
    }
    for tr in &mut s.from {
        normalize_table_ref(tr);
    }
    if let Some(w) = s.selection.take() {
        s.selection = Some(normalize_expr(w));
    }
    for g in &mut s.group_by {
        *g = normalize_expr(g.clone());
    }
    if let Some(h) = s.having.take() {
        s.having = Some(normalize_expr(h));
    }
}

fn normalize_table_ref(tr: &mut TableRef) {
    match tr {
        TableRef::Derived { query, .. } => normalize_query(query),
        TableRef::Join {
            left,
            right,
            constraint,
            ..
        } => {
            normalize_table_ref(left);
            normalize_table_ref(right);
            if let JoinConstraint::On(e) = constraint {
                *e = normalize_expr(e.clone());
            }
        }
        TableRef::Named { .. } => {}
    }
}

/// Canonicalize one expression tree.
fn normalize_expr(e: Expr) -> Expr {
    let e = push_not(e, false);
    canonical(e)
}

/// Push `NOT` down to the leaves (De Morgan + comparison negation).
fn push_not(e: Expr, negate: bool) -> Expr {
    match e {
        Expr::Not(inner) => push_not(*inner, !negate),
        Expr::And(a, b) => {
            let a = push_not(*a, negate);
            let b = push_not(*b, negate);
            if negate {
                Expr::Or(Box::new(a), Box::new(b))
            } else {
                Expr::And(Box::new(a), Box::new(b))
            }
        }
        Expr::Or(a, b) => {
            let a = push_not(*a, negate);
            let b = push_not(*b, negate);
            if negate {
                Expr::And(Box::new(a), Box::new(b))
            } else {
                Expr::Or(Box::new(a), Box::new(b))
            }
        }
        Expr::Compare { op, left, right } if negate => Expr::Compare {
            op: op.negated(),
            left,
            right,
        },
        Expr::IsNull { expr, negated } if negate => Expr::IsNull {
            expr,
            negated: !negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } if negate => Expr::InList {
            expr,
            list,
            negated: !negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } if negate => Expr::InSubquery {
            expr,
            subquery,
            negated: !negated,
        },
        Expr::Exists { subquery, negated } if negate => Expr::Exists {
            subquery,
            negated: !negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } if negate => Expr::Like {
            expr,
            pattern,
            negated: !negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } if negate => Expr::Between {
            expr,
            low,
            high,
            negated: !negated,
        },
        other if negate => Expr::Not(Box::new(other)),
        other => other,
    }
}

/// Structural canonicalization after NOT-pushing.
fn canonical(e: Expr) -> Expr {
    match e {
        // BETWEEN → range conjunction (handled before AND sorting)
        Expr::Between {
            expr,
            low,
            high,
            negated: false,
        } => {
            let lo = Expr::Compare {
                op: CompareOp::GtEq,
                left: expr.clone(),
                right: low,
            };
            let hi = Expr::Compare {
                op: CompareOp::LtEq,
                left: expr,
                right: high,
            };
            canonical(lo.and(hi))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: true,
        } => {
            let lo = Expr::Compare {
                op: CompareOp::Lt,
                left: expr.clone(),
                right: low,
            };
            let hi = Expr::Compare {
                op: CompareOp::Gt,
                left: expr,
                right: high,
            };
            canonical(lo.or(hi))
        }
        Expr::And(..) => {
            let mut parts = flatten(e, true);
            parts = parts.into_iter().map(canonical).collect();
            parts.sort_by_key(print_expr);
            parts.dedup();
            rebuild(parts, true)
        }
        Expr::Or(..) => {
            let mut parts = flatten(e, false);
            parts = parts.into_iter().map(canonical).collect();
            parts.sort_by_key(print_expr);
            parts.dedup();
            rebuild(parts, false)
        }
        Expr::Compare { op, left, right } => {
            let left = canonical(*left);
            let right = canonical(*right);
            // mirror so the lexically smaller operand is on the left for
            // symmetric ops, and literals go right for ordered ops
            let should_flip = match (&left, &right) {
                (Expr::Literal(_), Expr::Column(_)) => true,
                (Expr::Column(a), Expr::Column(b)) if op == CompareOp::Eq => {
                    print_expr(&Expr::Column(a.clone())) > print_expr(&Expr::Column(b.clone()))
                }
                _ => false,
            };
            if should_flip {
                Expr::Compare {
                    op: op.flipped(),
                    left: Box::new(right),
                    right: Box::new(left),
                }
            } else {
                Expr::Compare {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
        }
        Expr::InList {
            expr,
            mut list,
            negated,
        } => {
            list = list.into_iter().map(canonical).collect();
            list.sort_by_key(print_expr);
            list.dedup();
            if list.len() == 1 && !negated {
                // IN (v) ≡ = v
                return canonical(Expr::Compare {
                    op: CompareOp::Eq,
                    left: expr,
                    right: Box::new(list.pop().expect("len 1")), // lint:allow: length checked on the previous line
                });
            }
            Expr::InList {
                expr: Box::new(canonical(*expr)),
                list,
                negated,
            }
        }
        Expr::InSubquery {
            expr,
            mut subquery,
            negated,
        } => {
            normalize_query(&mut subquery);
            Expr::InSubquery {
                expr: Box::new(canonical(*expr)),
                subquery,
                negated,
            }
        }
        Expr::Exists {
            mut subquery,
            negated,
        } => {
            normalize_query(&mut subquery);
            Expr::Exists { subquery, negated }
        }
        Expr::ScalarSubquery(mut q) => {
            normalize_query(&mut q);
            Expr::ScalarSubquery(q)
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => Expr::Function {
            name: name.to_ascii_uppercase(),
            args: args.into_iter().map(canonical).collect(),
            distinct,
        },
        Expr::Arith { op, left, right } => Expr::Arith {
            op,
            left: Box::new(canonical(*left)),
            right: Box::new(canonical(*right)),
        },
        Expr::Neg(inner) => Expr::Neg(Box::new(canonical(*inner))),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(canonical(*expr)),
            pattern: Box::new(canonical(*pattern)),
            negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(canonical(*expr)),
            negated,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(canonical(*o))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (canonical(w), canonical(t)))
                .collect(),
            else_expr: else_expr.map(|x| Box::new(canonical(*x))),
        },
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(canonical(*expr)),
            type_name: type_name.to_ascii_uppercase(),
        },
        other => other,
    }
}

fn flatten(e: Expr, conj: bool) -> Vec<Expr> {
    match (e, conj) {
        (Expr::And(a, b), true) => {
            let mut out = flatten(*a, true);
            out.extend(flatten(*b, true));
            out
        }
        (Expr::Or(a, b), false) => {
            let mut out = flatten(*a, false);
            out.extend(flatten(*b, false));
            out
        }
        (other, _) => vec![other],
    }
}

fn rebuild(parts: Vec<Expr>, conj: bool) -> Expr {
    let mut it = parts.into_iter();
    let first = it.next().expect("flatten never yields empty"); // lint:allow: flatten of a non-empty input
    it.fold(first, |acc, p| if conj { acc.and(p) } else { acc.or(p) })
}

// ---------------- alias canonicalization ----------------

/// Rename every table alias positionally (`n1`, `n2`, … in FROM order),
/// rewriting all qualified references. Only the outer query's aliases are
/// renamed (subqueries in the benchmark's pairs use bare table names).
fn rename_aliases(q: &mut Query) {
    let Some(select) = q.as_select_mut() else {
        return;
    };
    let mut mapping: Vec<(String, String)> = Vec::new();
    fn collect(tr: &mut TableRef, mapping: &mut Vec<(String, String)>) {
        match tr {
            TableRef::Named { alias: Some(a), .. } | TableRef::Derived { alias: Some(a), .. } => {
                let new = format!("n{}", mapping.len() + 1);
                mapping.push((a.clone(), new.clone()));
                *a = new;
            }
            TableRef::Join { left, right, .. } => {
                collect(left, mapping);
                collect(right, mapping);
            }
            _ => {}
        }
    }
    for tr in &mut select.from {
        collect(tr, &mut mapping);
    }
    if mapping.is_empty() {
        return;
    }
    let rewrite = |e: &mut Expr| {
        rewrite_qualifiers(e, &mapping);
    };
    for tr in &mut select.from {
        rewrite_join_conditions(tr, &mapping);
    }
    for item in &mut select.items {
        if let SelectItem::Expr { expr, .. } = item {
            rewrite(expr);
        }
        if let SelectItem::QualifiedWildcard(qw) = item {
            if let Some((_, n)) = mapping.iter().find(|(o, _)| o.eq_ignore_ascii_case(qw)) {
                *qw = n.clone();
            }
        }
    }
    if let Some(w) = &mut select.selection {
        rewrite(w);
    }
    for g in &mut select.group_by {
        rewrite(g);
    }
    if let Some(h) = &mut select.having {
        rewrite(h);
    }
    for o in &mut q.order_by {
        rewrite_qualifiers(&mut o.expr, &mapping);
    }
}

fn rewrite_join_conditions(tr: &mut TableRef, mapping: &[(String, String)]) {
    if let TableRef::Join {
        left,
        right,
        constraint,
        ..
    } = tr
    {
        rewrite_join_conditions(left, mapping);
        rewrite_join_conditions(right, mapping);
        if let JoinConstraint::On(e) = constraint {
            rewrite_qualifiers(e, mapping);
        }
    }
}

fn rewrite_qualifiers(e: &mut Expr, mapping: &[(String, String)]) {
    if let Expr::Column(c) = e {
        if let Some(qual) = &c.qualifier {
            if let Some((_, n)) = mapping.iter().find(|(o, _)| o.eq_ignore_ascii_case(qual)) {
                c.qualifier = Some(n.clone());
            }
        }
    }
    // do not descend into subqueries: their scopes are independent
    match e {
        Expr::InSubquery { expr, .. } => rewrite_qualifiers(expr, mapping),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Compare { left, right, .. } | Expr::Arith { left, right, .. } => {
            rewrite_qualifiers(left, mapping);
            rewrite_qualifiers(right, mapping);
        }
        Expr::And(a, b) | Expr::Or(a, b) => {
            rewrite_qualifiers(a, mapping);
            rewrite_qualifiers(b, mapping);
        }
        Expr::Not(x) | Expr::Neg(x) | Expr::Cast { expr: x, .. } => rewrite_qualifiers(x, mapping),
        Expr::IsNull { expr, .. } => rewrite_qualifiers(expr, mapping),
        Expr::Between {
            expr, low, high, ..
        } => {
            rewrite_qualifiers(expr, mapping);
            rewrite_qualifiers(low, mapping);
            rewrite_qualifiers(high, mapping);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_qualifiers(expr, mapping);
            for x in list {
                rewrite_qualifiers(x, mapping);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            rewrite_qualifiers(expr, mapping);
            rewrite_qualifiers(pattern, mapping);
        }
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_qualifiers(a, mapping);
            }
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                rewrite_qualifiers(op, mapping);
            }
            for (w, t) in branches {
                rewrite_qualifiers(w, mapping);
                rewrite_qualifiers(t, mapping);
            }
            if let Some(x) = else_expr {
                rewrite_qualifiers(x, mapping);
            }
        }
        _ => {}
    }
}

/// Debug helper: canonical SQL of the normal form.
pub fn normal_form_sql(q: &Query) -> String {
    print_query(&normalize(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_parser::parse_query;

    fn eq(a: &str, b: &str) -> bool {
        normal_forms_equal(&parse_query(a).unwrap(), &parse_query(b).unwrap())
    }

    #[test]
    fn reordered_conditions_normalize_equal() {
        assert!(eq(
            "SELECT * FROM SpecObj WHERE plate = 1000 AND mjd > 55000",
            "SELECT * FROM SpecObj WHERE mjd > 55000 AND plate = 1000",
        ));
    }

    #[test]
    fn between_and_range_normalize_equal() {
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE z BETWEEN 1 AND 5",
            "SELECT plate FROM SpecObj WHERE z >= 1 AND z <= 5",
        ));
    }

    #[test]
    fn comparison_flip_normalizes_equal() {
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE z > 0.5",
            "SELECT plate FROM SpecObj WHERE 0.5 < z",
        ));
    }

    #[test]
    fn de_morgan_normalizes_equal() {
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE z > 1 AND ra < 2",
            "SELECT plate FROM SpecObj WHERE NOT (NOT z > 1 OR NOT ra < 2)",
        ));
    }

    #[test]
    fn in_list_sorted_and_or_chain() {
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE plate IN (3, 1, 2)",
            "SELECT plate FROM SpecObj WHERE plate IN (1, 2, 3)",
        ));
        // single-element IN = equality
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE plate IN (7)",
            "SELECT plate FROM SpecObj WHERE plate = 7",
        ));
    }

    #[test]
    fn cte_and_derived_wrappers_unwrap() {
        assert!(eq(
            "SELECT plate, mjd FROM SpecObj WHERE z > 0.5",
            "WITH w AS (SELECT plate, mjd FROM SpecObj WHERE z > 0.5) SELECT * FROM w",
        ));
        assert!(eq(
            "SELECT plate FROM SpecObj WHERE z > 0.5",
            "SELECT * FROM (SELECT plate FROM SpecObj WHERE z > 0.5) AS d",
        ));
    }

    #[test]
    fn alias_renaming_normalizes_equal() {
        assert!(eq(
            "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT a.plate FROM SpecObj AS a JOIN PhotoObj AS b ON a.bestobjid = b.objid",
        ));
    }

    #[test]
    fn non_equivalent_pairs_stay_distinct() {
        // value change
        assert!(!eq(
            "SELECT plate FROM SpecObj WHERE z > 0.5",
            "SELECT plate FROM SpecObj WHERE z > 5",
        ));
        // AND vs OR
        assert!(!eq(
            "SELECT plate FROM SpecObj WHERE z > 1 AND ra < 2",
            "SELECT plate FROM SpecObj WHERE z > 1 OR ra < 2",
        ));
        // aggregate swap
        assert!(!eq(
            "SELECT plate, AVG(z) FROM SpecObj GROUP BY plate",
            "SELECT plate, SUM(z) FROM SpecObj GROUP BY plate",
        ));
        // join kind
        assert!(!eq(
            "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid",
            "SELECT s.plate FROM SpecObj AS s LEFT JOIN PhotoObj AS p ON s.bestobjid = p.objid",
        ));
    }

    #[test]
    fn normalization_is_idempotent() {
        for sql in [
            "SELECT plate FROM SpecObj WHERE z BETWEEN 1 AND 5 AND plate IN (3, 1)",
            "SELECT s.plate FROM SpecObj AS s WHERE NOT (s.z > 1 AND s.ra < 2)",
            "WITH w AS (SELECT plate FROM SpecObj) SELECT * FROM w ORDER BY plate",
        ] {
            let q = parse_query(sql).unwrap();
            let n1 = normalize(&q);
            let n2 = normalize(&n1);
            assert_eq!(n1, n2, "{sql}");
        }
    }

    #[test]
    fn normal_form_is_executable_and_equivalent() {
        use squ_engine::{execute_query, witness_batch};
        let schema = squ_schema::schemas::sdss();
        let witnesses = witness_batch(&schema, 404);
        for sql in [
            "SELECT plate FROM SpecObj WHERE z BETWEEN 100 AND 600 AND plate IN (3, 1, 2)",
            "SELECT s.plate FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE NOT (p.ra > 500 OR s.z < 100)",
        ] {
            let q = parse_query(sql).unwrap();
            let n = normalize(&q);
            for db in &witnesses {
                let (r1, _) = execute_query(&q, db).unwrap();
                let (r2, _) = execute_query(&n, db).unwrap();
                assert!(r1.result_equal(&r2), "{sql} vs {}", print_query(&n));
            }
        }
    }
}
