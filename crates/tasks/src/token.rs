//! Missing-token datasets (paper §3.1 `miss_token`, `miss_token_type`,
//! `miss_token_loc`).
//!
//! Deletes one token (or one whole predicate) from a clean workload query
//! and records the deleted text, its type, and its *word position* — the
//! coordinate the paper's `miss_token_loc` task asks models to predict.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use squ_lexer::{tokenize, Keyword, Token, TokenKind};
use squ_parser::parse;
use squ_schema::Schema;
use squ_workload::{schema_for, Dataset, WorkloadQuery};

/// The paper's six missing-token categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenType {
    /// A SQL keyword (`SELECT`, `WHERE`, `JOIN`, …).
    Keyword,
    /// A table name.
    Table,
    /// A column name.
    Column,
    /// A literal value.
    Value,
    /// A table alias (definition or use).
    Alias,
    /// A whole comparison predicate.
    Predicate,
}

impl TokenType {
    /// All six types.
    pub const ALL: [TokenType; 6] = [
        TokenType::Keyword,
        TokenType::Table,
        TokenType::Column,
        TokenType::Value,
        TokenType::Alias,
        TokenType::Predicate,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            TokenType::Keyword => "keyword",
            TokenType::Table => "table",
            TokenType::Column => "column",
            TokenType::Value => "value",
            TokenType::Alias => "alias",
            TokenType::Predicate => "predicate",
        }
    }

    /// Parse a paper label.
    pub fn from_label(s: &str) -> Option<TokenType> {
        Self::ALL.iter().copied().find(|t| t.label() == s)
    }
}

impl std::fmt::Display for TokenType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One labeled example of the missing-token tasks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenExample {
    /// Source workload query id.
    pub query_id: String,
    /// Schema the query targets.
    pub schema_name: String,
    /// The (possibly token-deleted) SQL shown to the model.
    pub sql: String,
    /// Ground truth: is a token missing?
    pub has_missing: bool,
    /// Type of the missing token.
    pub token_type: Option<TokenType>,
    /// Exact text that was removed.
    pub removed_text: Option<String>,
    /// Word position (0-based index into the whitespace-word sequence of
    /// the *shown* query) where the token is missing.
    pub position: Option<usize>,
    /// Byte offset in the shown `sql` at which the removal happened (the
    /// splice point; text from here on shifted left).
    #[serde(default)]
    pub removed_at: Option<usize>,
    /// Properties of the shown query text.
    pub props: squ_workload::QueryProps,
}

/// Keywords whose deletion leaves the query obviously incomplete. Silent
/// removals (`AS`, `INNER`, `ASC`, `DISTINCT`, …) are excluded — deleting
/// them yields valid SQL, which would poison the binary labels.
fn is_removable_keyword(kw: Keyword) -> bool {
    matches!(
        kw,
        Keyword::Select
            | Keyword::From
            | Keyword::Where
            | Keyword::Group
            | Keyword::By
            | Keyword::Having
            | Keyword::Order
            | Keyword::Join
            | Keyword::On
            | Keyword::And
            | Keyword::Or
            | Keyword::In
            | Keyword::Between
            | Keyword::Like
            | Keyword::Exists
            | Keyword::With
            | Keyword::Create
            | Keyword::Table
            | Keyword::Limit
    )
}

/// Is the token a whole whitespace word (deletable without leaving a
/// fragment like `.plate` behind)?
fn is_whole_word(sql: &str, tok: &Token) -> bool {
    let before_ok = tok.span.start == 0
        || sql[..tok.span.start]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_whitespace());
    let after_ok = tok.span.end >= sql.len()
        || sql[tok.span.end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_whitespace());
    before_ok && after_ok
}

/// Classification context derived from the statement: which identifiers
/// are tables, aliases, and columns.
struct NameClasses {
    tables: Vec<String>,
    aliases: Vec<String>,
}

fn name_classes(sql: &str, schema: &Schema) -> NameClasses {
    let mut tables = Vec::new();
    let mut aliases = Vec::new();
    if let Ok(stmt) = parse(sql) {
        squ_parser::visit::walk_table_refs(&stmt, &mut |tr| {
            if let squ_parser::TableRef::Named { name, alias } = tr {
                if schema.has_table(name) {
                    tables.push(name.to_ascii_lowercase());
                }
                if let Some(a) = alias {
                    aliases.push(a.to_ascii_lowercase());
                }
            }
        });
    }
    NameClasses { tables, aliases }
}

/// Candidate token indices for a deletion type.
fn candidates(
    sql: &str,
    tokens: &[Token],
    classes: &NameClasses,
    schema: &Schema,
    ty: TokenType,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let whole = is_whole_word(sql, t);
        let hit = match ty {
            TokenType::Keyword => {
                whole && matches!(t.kind, TokenKind::Keyword(kw) if is_removable_keyword(kw))
            }
            TokenType::Table => {
                whole
                    && t.kind == TokenKind::Ident
                    && classes.tables.contains(&t.text.to_ascii_lowercase())
            }
            TokenType::Column => {
                t.kind == TokenKind::Ident
                    && !classes.tables.contains(&t.text.to_ascii_lowercase())
                    && !classes.aliases.contains(&t.text.to_ascii_lowercase())
                    && schema.tables.iter().any(|tb| tb.has_column(&t.text))
            }
            TokenType::Value => t.is_literal(),
            TokenType::Alias => {
                t.kind == TokenKind::Ident && classes.aliases.contains(&t.text.to_ascii_lowercase())
            }
            TokenType::Predicate => false, // handled structurally below
        };
        if hit {
            out.push(i);
        }
    }
    out
}

/// Delete the byte range `[start, end)` from the SQL, collapsing the
/// surrounding whitespace to a single space. Returns the spliced text and
/// the byte offset of the splice point in it.
fn splice_out(sql: &str, start: usize, end: usize) -> (String, usize) {
    let mut s = start;
    let mut e = end;
    while s > 0 && sql.as_bytes()[s - 1] == b' ' {
        s -= 1;
    }
    while e < sql.len() && sql.as_bytes()[e] == b' ' {
        e += 1;
    }
    let sep = if s > 0 && e < sql.len() { " " } else { "" };
    (format!("{}{sep}{}", &sql[..s], &sql[e..]), s)
}

/// Find a whole leaf comparison predicate in the token stream:
/// returns `(start_token, end_token_exclusive)` spanning
/// `<operand> <cmp> <operand>` where the operands are simple
/// (column/qualified column/literal).
fn find_predicate_range(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    // only inside WHERE … (up to GROUP/ORDER/HAVING or end)
    let mut in_where = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Keyword(Keyword::Where) => in_where = true,
            TokenKind::Keyword(
                Keyword::Group | Keyword::Order | Keyword::Having | Keyword::Limit,
            ) => in_where = false,
            TokenKind::CompareOp(_) if in_where => {
                // walk left: [ident] or [ident . ident] or literal
                let lhs_start = match i.checked_sub(1) {
                    Some(j) if tokens[j].is_ident() || tokens[j].is_literal() => {
                        if j >= 2
                            && tokens[j - 1].kind == TokenKind::Dot
                            && tokens[j - 2].is_ident()
                        {
                            Some(j - 2)
                        } else {
                            Some(j)
                        }
                    }
                    _ => None,
                };
                // walk right
                let rhs_end = match tokens.get(i + 1) {
                    Some(t) if t.is_ident() || t.is_literal() => {
                        if tokens.get(i + 2).map(|t| &t.kind) == Some(&TokenKind::Dot)
                            && tokens.get(i + 3).is_some_and(|t| t.is_ident())
                        {
                            Some(i + 4)
                        } else {
                            Some(i + 2)
                        }
                    }
                    _ => None,
                };
                if let (Some(s), Some(e)) = (lhs_start, rhs_end) {
                    // must be bracketed by AND/OR/WHERE on the left and
                    // AND/OR/end-of-clause on the right to be a whole leaf
                    let left_ok = s == 0
                        || matches!(
                            tokens[s - 1].kind,
                            TokenKind::Keyword(Keyword::Where)
                                | TokenKind::Keyword(Keyword::And)
                                | TokenKind::Keyword(Keyword::Or)
                        );
                    let right_ok = e >= tokens.len()
                        || matches!(
                            tokens[e].kind,
                            TokenKind::Keyword(Keyword::And)
                                | TokenKind::Keyword(Keyword::Or)
                                | TokenKind::Keyword(Keyword::Group)
                                | TokenKind::Keyword(Keyword::Order)
                                | TokenKind::Keyword(Keyword::Limit)
                                | TokenKind::Semicolon
                        );
                    if left_ok && right_ok {
                        out.push((s, e));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Delete a token of type `ty` from `sql`. Returns the corrupted SQL, the
/// removed text, the word position, and the byte offset of the splice
/// point in the corrupted text — or `None` if the query has no deletable
/// token of that type.
pub fn delete_token(
    sql: &str,
    schema: &Schema,
    ty: TokenType,
    rng: &mut StdRng,
) -> Option<(String, String, usize, usize)> {
    let tokens = tokenize(sql).ok()?;
    if ty == TokenType::Predicate {
        let ranges = find_predicate_range(&tokens);
        let &(s, e) = ranges.choose(rng)?;
        let byte_start = tokens[s].span.start;
        let byte_end = tokens[e - 1].span.end;
        // also remove a dangling AND/OR on one side
        let (byte_start, byte_end) = if e < tokens.len()
            && matches!(
                tokens[e].kind,
                TokenKind::Keyword(Keyword::And) | TokenKind::Keyword(Keyword::Or)
            ) {
            (byte_start, tokens[e].span.end)
        } else if s > 0
            && matches!(
                tokens[s - 1].kind,
                TokenKind::Keyword(Keyword::And) | TokenKind::Keyword(Keyword::Or)
            )
        {
            (tokens[s - 1].span.start, byte_end)
        } else {
            (byte_start, byte_end)
        };
        let removed = sql[byte_start..byte_end].to_string();
        // position = word index of the first removed byte (recomputed after
        // the range may have been extended to swallow a dangling AND/OR)
        let pos = squ_lexer::word_index_at(sql, byte_start);
        let (out, at) = splice_out(sql, byte_start, byte_end);
        return Some((out, removed, pos, at));
    }
    let classes = name_classes(sql, schema);
    let cand = candidates(sql, &tokens, &classes, schema, ty);
    let &i = cand.choose(rng)?;
    let t = &tokens[i];
    let removed = sql[t.span.start..t.span.end].to_string();
    let (out, at) = splice_out(sql, t.span.start, t.span.end);
    Some((out, removed, t.word_index, at))
}

/// Build the missing-token dataset: ~40% untouched (negative class), the
/// rest with one token of a uniformly chosen type removed.
pub fn build_token_dataset(ds: &Dataset, seed: u64) -> Vec<TokenExample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x70C3);
    let mut out = Vec::with_capacity(ds.queries.len());
    for wq in &ds.queries {
        out.push(make_example(wq, &mut rng));
    }
    out
}

/// Is a (non-predicate) deletion statically detectable? The corrupted text
/// must fail to parse — no earlier than just before the splice word, since
/// a recursive-descent parser cannot reject an unchanged prefix (a 2-word
/// margin covers its bounded lookahead) — or parse but fail the binder.
/// Predicate deletions are exempt: removing a whole leaf predicate usually
/// leaves a well-formed, well-typed query (the paper's hardest class).
pub fn deletion_detectable(sql: &str, schema: &Schema, position: usize) -> bool {
    match parse(sql) {
        Err(e) => e.word_index().map_or(true, |wi| wi + 2 >= position),
        Ok(stmt) => !squ_schema::analyze(&stmt, schema).is_empty(),
    }
}

fn make_example(wq: &WorkloadQuery, rng: &mut StdRng) -> TokenExample {
    let schema = schema_for(wq.workload, &wq.schema_name);
    let untouched = rng.gen_bool(0.4);
    if !untouched {
        let mut types = TokenType::ALL;
        types.shuffle(rng);
        for ty in types {
            if let Some((sql, removed, pos, at)) = delete_token(&wq.sql, &schema, ty, rng) {
                // a deletion that leaves valid, clean SQL would poison the
                // positive label; only predicate drops are allowed to
                if ty != TokenType::Predicate && !deletion_detectable(&sql, &schema, pos) {
                    continue;
                }
                // properties of the shown (corrupted) text; AST-derived
                // props fall back to the original when it no longer parses
                let props = match parse(&sql) {
                    Ok(stmt) => squ_workload::query_props(&sql, &stmt),
                    Err(_) => {
                        let mut p = wq.props.clone();
                        p.char_count = squ_lexer::char_count(&sql);
                        p.word_count = squ_lexer::word_count(&sql);
                        p
                    }
                };
                return TokenExample {
                    query_id: wq.id.clone(),
                    schema_name: wq.schema_name.clone(),
                    sql,
                    has_missing: true,
                    token_type: Some(ty),
                    removed_text: Some(removed),
                    position: Some(pos),
                    removed_at: Some(at),
                    props,
                };
            }
        }
    }
    TokenExample {
        query_id: wq.id.clone(),
        schema_name: wq.schema_name.clone(),
        sql: wq.sql.clone(),
        has_missing: false,
        token_type: None,
        removed_text: None,
        position: None,
        removed_at: None,
        props: wq.props.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squ_schema::schemas::sdss;
    use squ_workload::{build, Workload};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn delete_each_type() {
        let schema = sdss();
        let sql = "SELECT s.plate, s.mjd FROM SpecObj AS s WHERE s.z > 0.5 AND s.plate = 100";
        for ty in TokenType::ALL {
            let (out, removed, pos, at) = delete_token(sql, &schema, ty, &mut rng())
                .unwrap_or_else(|| panic!("{ty} not applicable"));
            assert!(at <= out.len(), "{ty}: splice offset out of range");
            assert!(out.len() < sql.len(), "{ty}: nothing removed");
            assert!(!removed.is_empty());
            assert!(
                pos < squ_lexer::word_count(sql),
                "{ty}: pos {pos} out of range"
            );
            // the removed text must actually be gone at that site
            assert_ne!(out, sql);
        }
    }

    #[test]
    fn keyword_deletion_prefers_breaking_keywords() {
        let schema = sdss();
        let sql = "SELECT plate FROM SpecObj WHERE z > 0.5";
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let (_, removed, _, _) =
                delete_token(sql, &schema, TokenType::Keyword, &mut r).unwrap();
            assert!(
                ["SELECT", "FROM", "WHERE"].contains(&removed.as_str()),
                "removed {removed}"
            );
        }
    }

    #[test]
    fn value_deletion_targets_literals() {
        let schema = sdss();
        let sql = "SELECT plate FROM SpecObj WHERE z > 0.5 AND class = 'QSO'";
        let (_, removed, _, _) = delete_token(sql, &schema, TokenType::Value, &mut rng()).unwrap();
        assert!(removed == "0.5" || removed == "'QSO'", "removed {removed}");
    }

    #[test]
    fn predicate_deletion_removes_whole_condition() {
        let schema = sdss();
        let sql = "SELECT plate FROM SpecObj WHERE z > 0.5 AND plate = 100";
        let (out, removed, _, _) =
            delete_token(sql, &schema, TokenType::Predicate, &mut rng()).unwrap();
        assert!(
            removed.contains('>') || removed.contains('='),
            "removed {removed:?}"
        );
        // remaining SQL still parses (one predicate left)
        assert!(parse(&out).is_ok(), "{out}");
    }

    #[test]
    fn alias_deletion_needs_alias() {
        let schema = sdss();
        assert!(delete_token(
            "SELECT plate FROM SpecObj",
            &schema,
            TokenType::Alias,
            &mut rng()
        )
        .is_none());
    }

    #[test]
    fn position_matches_removed_site() {
        let schema = sdss();
        let sql = "SELECT plate FROM SpecObj WHERE z > 0.5";
        // FROM is word 2
        for seed in 0..30 {
            let mut r = StdRng::seed_from_u64(seed);
            let (_, removed, pos, _) =
                delete_token(sql, &schema, TokenType::Keyword, &mut r).unwrap();
            let words: Vec<&str> = sql.split_whitespace().collect();
            assert_eq!(words[pos], removed, "pos {pos} for {removed}");
        }
    }

    #[test]
    fn dataset_labels_consistent() {
        let ds = build(Workload::SqlShare, 2023);
        let examples = build_token_dataset(&ds, 17);
        assert_eq!(examples.len(), ds.len());
        let missing = examples.iter().filter(|e| e.has_missing).count();
        assert!(missing > 100);
        for e in &examples {
            if e.has_missing {
                assert!(e.token_type.is_some() && e.position.is_some());
                assert!(e.removed_text.as_deref().is_some_and(|t| !t.is_empty()));
            } else {
                assert!(e.token_type.is_none() && e.position.is_none());
            }
        }
        for ty in TokenType::ALL {
            assert!(
                examples.iter().any(|e| e.token_type == Some(ty)),
                "type {ty} never used"
            );
        }
    }

    #[test]
    fn dataset_deterministic() {
        let ds = build(Workload::JoinOrder, 2023);
        let a = build_token_dataset(&ds, 9);
        let b = build_token_dataset(&ds, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.position, y.position);
        }
    }
}
