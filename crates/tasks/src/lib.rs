//! # squ-tasks — labeled task-dataset generation
//!
//! Derives the paper's five task datasets (§3.1–3.2) from the sampled
//! workloads, plus a sixth dialect-translation family:
//!
//! * [`syntax`] — six injected syntax-error types, binder-verified;
//! * [`token`] — six missing-token types with exact word positions;
//! * [`equiv`] — ten equivalence + eight non-equivalence transformations,
//!   differentially verified on witness databases;
//! * [`perf`] — the 200 ms SDSS runtime threshold labels;
//! * [`explain`] — Spider queries with reference descriptions and rubric
//!   key facts, incl. the paper's Q15–Q18 case study;
//! * [`translate`] — cross-dialect `(source, target)` query pairs whose
//!   gold translations are differentially verified row-for-row.

#![warn(missing_docs)]

pub mod audit;
pub mod equiv;
pub mod explain;
pub mod normalize;
pub mod perf;
pub mod syntax;
pub mod task;
pub mod token;
pub mod transforms;
pub mod translate;

pub use equiv::{
    apply_equiv, apply_non_equiv, build_equiv_dataset, differential_verdict, EquivExample,
    EquivType, NonEquivType, Verdict,
};
pub use explain::{build_explain_dataset, case_study_queries, key_facts, ExplainExample, KeyFacts};
pub use normalize::{normal_form_sql, normal_forms_equal, normalize};
pub use perf::{build_perf_dataset, PerfExample, COST_THRESHOLD_MS};
pub use syntax::{build_syntax_dataset, inject_error, SyntaxErrorType, SyntaxExample};
pub use token::{build_token_dataset, delete_token, TokenExample, TokenType};
pub use transforms::{transform_catalog, TransformFn, TransformInfo, TransformKind};
pub use translate::{build_translate_dataset, dialect_pairs, translate_query, TranslateExample};

pub use audit::{AuditCtx, CertStats, Violation};
pub use task::{
    EquivTask, ExplainTask, GroundTruth, PerfTask, SyntaxTask, Task, TaskId, TokenTask,
    TranslateTask,
};
