//! Pipeline benchmarks: dataset derivation and full model-evaluation runs
//! — the costs that dominate `repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use squ::pipeline::{dataset_id, run_syntax, run_token};
use squ::{Suite, PAPER_SEED};
use squ_llm::{ModelId, SimulatedModel};
use squ_workload::{build, Workload};
use std::sync::OnceLock;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new(PAPER_SEED))
}

fn bench_workload_build(c: &mut Criterion) {
    c.bench_function("datasets/build_sdss_285", |b| {
        b.iter(|| build(Workload::Sdss, 2023).len())
    });
    c.bench_function("datasets/build_joborder_157", |b| {
        b.iter(|| build(Workload::JoinOrder, 2023).len())
    });
}

fn bench_task_derivation(c: &mut Criterion) {
    let sdss = build(Workload::Sdss, 2023);
    c.bench_function("tasks/syntax_injection_sdss", |b| {
        b.iter(|| squ_tasks::build_syntax_dataset(&sdss, 99).len())
    });
    c.bench_function("tasks/token_deletion_sdss", |b| {
        b.iter(|| squ_tasks::build_token_dataset(&sdss, 99).len())
    });
    // equivalence derivation includes differential verification; sample a
    // slice so the bench stays in the milliseconds
    let slice = squ_workload::Dataset {
        workload: sdss.workload,
        queries: sdss.queries.iter().take(20).cloned().collect(),
    };
    c.bench_function("tasks/equiv_verified_20_queries", |b| {
        b.iter(|| squ_tasks::build_equiv_dataset(&slice, 99).len())
    });
}

fn bench_model_runs(c: &mut Criterion) {
    let s = suite();
    c.bench_function("pipeline/syntax_gpt4_sdss_285", |b| {
        b.iter(|| {
            run_syntax(
                &SimulatedModel::new(ModelId::Gpt4),
                dataset_id(Workload::Sdss),
                s.syntax_for(Workload::Sdss),
            )
            .len()
        })
    });
    c.bench_function("pipeline/token_gemini_sqlshare_250", |b| {
        b.iter(|| {
            run_token(
                &SimulatedModel::new(ModelId::Gemini),
                dataset_id(Workload::SqlShare),
                s.tokens_for(Workload::SqlShare),
            )
            .len()
        })
    });
}

fn bench_full_artifacts(c: &mut Criterion) {
    let s = suite();
    c.bench_function("artifacts/table6_perf_all_models", |b| {
        b.iter(|| squ::run_experiment(s, squ::ExperimentId::Table6).body.len())
    });
    c.bench_function("artifacts/fig4_correlations", |b| {
        b.iter(|| squ::run_experiment(s, squ::ExperimentId::Fig4).body.len())
    });
}

criterion_group!(
    benches,
    bench_workload_build,
    bench_task_derivation,
    bench_model_runs,
    bench_full_artifacts
);
criterion_main!(benches);
