//! Lexer microbenchmarks: tokenization throughput on real workload SQL.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squ_lexer::tokenize;
use squ_workload::{build, Workload};

fn bench_tokenize(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexer");
    for w in [Workload::Sdss, Workload::JoinOrder] {
        let ds = build(w, 2023);
        let corpus: Vec<String> = ds.queries.iter().map(|q| q.sql.clone()).collect();
        let bytes: usize = corpus.iter().map(|s| s.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("tokenize_corpus", w.name()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let mut tokens = 0usize;
                    for sql in corpus {
                        tokens += tokenize(sql).expect("workload SQL lexes").len();
                    }
                    tokens
                })
            },
        );
    }
    group.finish();
}

fn bench_word_accounting(c: &mut Criterion) {
    let ds = build(Workload::JoinOrder, 2023);
    let sql = ds
        .queries
        .iter()
        .max_by_key(|q| q.sql.len())
        .expect("non-empty")
        .sql
        .clone();
    c.bench_function("lexer/word_count_longest_job_query", |b| {
        b.iter(|| squ_lexer::word_count(&sql))
    });
}

criterion_group!(benches, bench_tokenize, bench_word_accounting);
criterion_main!(benches);
