//! Parser microbenchmarks: parse and print-round-trip throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squ_parser::{parse, print_statement};
use squ_workload::{build, Workload};

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    for w in [Workload::Sdss, Workload::SqlShare, Workload::JoinOrder] {
        let ds = build(w, 2023);
        let corpus: Vec<String> = ds.queries.iter().map(|q| q.sql.clone()).collect();
        let bytes: usize = corpus.iter().map(|s| s.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::new("parse_corpus", w.name()),
            &corpus,
            |b, corpus| {
                b.iter(|| {
                    let mut nodes = 0usize;
                    for sql in corpus {
                        let stmt = parse(sql).expect("workload SQL parses");
                        nodes += matches!(stmt, squ_parser::Statement::Query(_)) as usize;
                    }
                    nodes
                })
            },
        );
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    let ds = build(Workload::JoinOrder, 2023);
    let stmts: Vec<_> = ds
        .queries
        .iter()
        .map(|q| parse(&q.sql).expect("parses"))
        .collect();
    c.bench_function("parser/print_job_corpus", |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| print_statement(s).len())
                .sum::<usize>()
        })
    });
}

fn bench_binder(c: &mut Criterion) {
    let ds = build(Workload::Sdss, 2023);
    let schema = squ_schema::schemas::sdss();
    let stmts: Vec<_> = ds
        .queries
        .iter()
        .map(|q| parse(&q.sql).expect("parses"))
        .collect();
    c.bench_function("binder/analyze_sdss_corpus", |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| squ_schema::analyze(s, &schema).len())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_parse, bench_round_trip, bench_binder);
criterion_main!(benches);
