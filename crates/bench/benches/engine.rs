//! Executor microbenchmarks: joins, aggregation, correlated subqueries,
//! witness generation, and the cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use squ_engine::{execute_query, witness_database, CostModel};
use squ_parser::parse_query;
use squ_schema::schemas::{imdb, sdss};

fn bench_executor(c: &mut Criterion) {
    let schema = sdss();
    let db = witness_database(&schema, 42, 15, 25);

    let cases = [
        (
            "filter_scan",
            "SELECT plate, mjd FROM SpecObj WHERE z > 300 AND ra < 700",
        ),
        (
            "two_way_join",
            "SELECT s.plate, p.ra FROM SpecObj AS s JOIN PhotoObj AS p ON s.bestobjid = p.objid WHERE p.ra > 100",
        ),
        (
            "group_aggregate",
            "SELECT class, COUNT(*), AVG(z) FROM SpecObj GROUP BY class HAVING COUNT(*) > 1",
        ),
        (
            "correlated_exists",
            "SELECT s.plate FROM SpecObj AS s WHERE EXISTS (SELECT 1 FROM PhotoObj AS p WHERE p.objid = s.bestobjid AND p.ra > 200)",
        ),
        (
            "in_subquery",
            "SELECT fiberid FROM SpecObj WHERE bestobjid IN (SELECT objid FROM PhotoObj WHERE ra > 180)",
        ),
        (
            "set_op",
            "SELECT plate FROM SpecObj WHERE z > 400 INTERSECT SELECT plate FROM SpecObj WHERE ra > 300",
        ),
    ];
    let mut group = c.benchmark_group("executor");
    for (name, sql) in cases {
        let q = parse_query(sql).expect("bench SQL parses");
        group.bench_function(name, |b| {
            b.iter(|| execute_query(&q, &db).expect("executes").0.len())
        });
    }
    group.finish();
}

fn bench_hash_vs_nested_join(c: &mut Criterion) {
    // a join big enough (120×120 pairs) to take the hash fast path,
    // contrasted with a non-equi join of the same size that cannot
    use squ_engine::{Database, Relation, Value};
    let mut d = Database::new("hj");
    let rows = |k: usize| -> Vec<Vec<Value>> {
        (0..120)
            .map(|i| vec![Value::num((i % k) as f64), Value::num(i as f64)])
            .collect()
    };
    d.insert_table("L", Relation::new(vec!["k".into(), "x".into()], rows(17)));
    d.insert_table("R", Relation::new(vec!["k".into(), "y".into()], rows(17)));
    let equi = parse_query("SELECT l.x, r.y FROM L AS l JOIN R AS r ON l.k = r.k").unwrap();
    let theta = parse_query("SELECT l.x, r.y FROM L AS l JOIN R AS r ON l.k < r.k").unwrap();
    c.bench_function("executor/hash_equi_join_120x120", |b| {
        b.iter(|| execute_query(&equi, &d).expect("executes").0.len())
    });
    c.bench_function("executor/nested_theta_join_120x120", |b| {
        b.iter(|| execute_query(&theta, &d).expect("executes").0.len())
    });
}

fn bench_wide_implicit_join(c: &mut Criterion) {
    // the Join-Order stress shape: many comma-joined tables, pushdown
    // keeps intermediates small
    let schema = imdb();
    let db = witness_database(&schema, 7, 10, 18);
    let sql = "SELECT t1.title FROM title AS t1, movie_companies AS t2, company_name AS t3, movie_info AS t4, info_type AS t5 WHERE t2.movie_id = t1.id AND t2.company_id = t3.id AND t4.movie_id = t1.id AND t4.info_type_id = t5.id AND t1.production_year > 200";
    let q = parse_query(sql).expect("parses");
    c.bench_function("executor/five_way_implicit_join", |b| {
        b.iter(|| execute_query(&q, &db).expect("executes").0.len())
    });
}

fn bench_witness_generation(c: &mut Criterion) {
    let schema = imdb();
    c.bench_function("witness/imdb_21_tables", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            witness_database(&schema, seed, 10, 20).table_count()
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let schema = sdss();
    let ds = squ_workload::build(squ_workload::Workload::Sdss, 2023);
    let stmts: Vec<_> = ds
        .queries
        .iter()
        .map(|q| squ_parser::parse(&q.sql).expect("parses"))
        .collect();
    let model = CostModel::default();
    c.bench_function("cost_model/estimate_sdss_corpus", |b| {
        b.iter(|| {
            stmts
                .iter()
                .map(|s| model.estimate_ms(s, &schema))
                .sum::<f64>()
        })
    });
}

criterion_group!(
    benches,
    bench_executor,
    bench_hash_vs_nested_join,
    bench_wide_implicit_join,
    bench_witness_generation,
    bench_cost_model
);
criterion_main!(benches);
