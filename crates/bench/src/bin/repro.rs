//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro                    # run all 20 paper artifacts
//! repro --only table3      # run one artifact (also accepts ablation slugs)
//! repro --ablations        # run the ablation / extension studies
//! repro --export [DIR]     # export every labeled dataset as JSONL
//! repro --seed 7           # different master seed
//! repro --list             # list artifact slugs
//! ```
//!
//! Output goes to stdout and to `target/repro/<slug>.txt` (+ `.csv` for
//! tabular artifacts).

use squ::{run_ablation, run_experiment, AblationId, ExperimentId, Suite, PAPER_SEED};
use std::fs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Option<String> = None;
    let mut seed = PAPER_SEED;
    let mut ablations = false;
    let mut export: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in ExperimentId::ALL {
                    println!("{}", id.slug());
                }
                for id in AblationId::ALL {
                    println!("{}", id.slug());
                }
                return;
            }
            "--ablations" => ablations = true,
            "--export" => {
                export = Some(
                    args.get(i + 1)
                        .filter(|a| !a.starts_with("--"))
                        .cloned()
                        .unwrap_or_else(|| "target/benchmark-export".to_string()),
                );
                if args.get(i + 1).is_some_and(|a| !a.starts_with("--")) {
                    i += 1;
                }
            }
            "--only" => {
                i += 1;
                only = args.get(i).cloned();
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            other => die(&format!("unknown argument {other:?} (try --list)")),
        }
        i += 1;
    }

    enum Job {
        Paper(ExperimentId),
        Ablation(AblationId),
    }
    let jobs: Vec<Job> = match only {
        Some(slug) => match ExperimentId::from_slug(&slug) {
            Some(id) => vec![Job::Paper(id)],
            None => vec![Job::Ablation(AblationId::from_slug(&slug).unwrap_or_else(
                || die(&format!("unknown artifact {slug:?} (try --list)")),
            ))],
        },
        None if ablations => AblationId::ALL.iter().map(|a| Job::Ablation(*a)).collect(),
        None => ExperimentId::ALL.iter().map(|e| Job::Paper(*e)).collect(),
    };

    eprintln!("building benchmark suite (seed {seed})…");
    let t0 = std::time::Instant::now();
    let suite = Suite::new(seed);
    eprintln!("suite ready in {:.1?}", t0.elapsed());

    let out_dir = PathBuf::from("target/repro");
    fs::create_dir_all(&out_dir).expect("create target/repro");

    if let Some(dir) = export {
        let dir = std::path::PathBuf::from(dir);
        let manifest =
            squ::export_suite(&suite, &dir).unwrap_or_else(|e| die(&format!("export failed: {e}")));
        println!(
            "exported {} files / {} records to {}",
            manifest.files.len(),
            manifest.files.iter().map(|f| f.records).sum::<usize>(),
            dir.display()
        );
        return;
    }

    for job in jobs {
        let t = std::time::Instant::now();
        let artifact = match job {
            Job::Paper(id) => run_experiment(&suite, id),
            Job::Ablation(id) => run_ablation(&suite, id),
        };
        println!("\n================================================================");
        println!("{}  ({:.1?})", artifact.title, t.elapsed());
        println!("================================================================");
        println!("{}", artifact.body);
        fs::write(
            out_dir.join(format!("{}.txt", artifact.id)),
            format!("{}\n\n{}", artifact.title, artifact.body),
        )
        .expect("write artifact text");
        if let Some(csv) = &artifact.csv {
            fs::write(out_dir.join(format!("{}.csv", artifact.id)), csv)
                .expect("write artifact csv");
        }
    }
    eprintln!("\nartifacts written to {}", out_dir.display());
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
